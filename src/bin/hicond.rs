//! `hicond` — command-line front end.
//!
//! ```text
//! hicond decompose <graph-file> [--k K] [--method fixed|planar|tree] [--validate PHI RHO]
//! hicond solve <graph-file> <rhs-file|--demo> [--tol T] [--cached]
//! hicond serve <graph-file> [--tol T]
//! hicond top [--check] [--trace ID]
//! hicond cache ls|verify|gc [--all]
//! hicond cluster <graph-file> --k K [--method eigen|walk]
//! hicond info <graph-file>
//! ```
//!
//! Graph files use the native edge-list format (`n m` header, `u v w`
//! lines) or METIS (detected by extension `.metis` / `.graph`). Every
//! graph-loading subcommand accepts `--weight-scale S` (default 1000):
//! METIS integer weights are divided by `S` on read and multiplied back on
//! write.
//!
//! `solve --cached` and `serve` persist the built preconditioner in the
//! artifact cache (`HICOND_CACHE_DIR`, default `.hicond-cache`) keyed by
//! graph content + build options, so repeat invocations skip the build.

use hicond::artifact::{Cache, GcReport};
use hicond::core::{
    decompose_fixed_degree, decompose_forest, decompose_planar, validate_phi_rho,
    FixedDegreeOptions, PlanarOptions,
};
use hicond::graph::{io, Graph};
use hicond::precond::{load_or_build, LaplacianSolver, SolverOptions, SolverSource};
use hicond::spectral::{
    spectral_clustering, walk_mixture_clustering, SpectralClusteringOptions, WalkClusteringOptions,
};
use std::fs::File;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// Default METIS weight scale: integer weights on disk are `w * 1000`.
const DEFAULT_WEIGHT_SCALE: f64 = 1000.0;

fn load_graph(path: &str, weight_scale: f64) -> Result<Graph, String> {
    let f = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    if path.ends_with(".metis") || path.ends_with(".graph") {
        io::read_metis(f, weight_scale).map_err(|e| format!("metis parse error: {e}"))
    } else if path.ends_with(".dimacs") || path.ends_with(".col") {
        io::read_dimacs(f).map_err(|e| format!("dimacs parse error: {e}"))
    } else {
        io::read_edge_list(f).map_err(|e| format!("edge-list parse error: {e}"))
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses `--weight-scale S` (default 1000, must be positive and finite).
fn weight_scale(args: &[String]) -> Result<f64, String> {
    match arg_value(args, "--weight-scale") {
        None => Ok(DEFAULT_WEIGHT_SCALE),
        Some(s) => {
            let v: f64 = s.parse().map_err(|_| "bad --weight-scale".to_string())?;
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!(
                    "--weight-scale must be positive and finite, got {v}"
                ))
            }
        }
    }
}

fn parse_tol(args: &[String]) -> Result<f64, String> {
    arg_value(args, "--tol")
        .map(|s| s.parse().map_err(|_| "bad --tol".to_string()))
        .transpose()
        .map(|t| t.unwrap_or(1e-8))
}

fn cmd_info(path: &str, args: &[String]) -> Result<(), String> {
    let g = load_graph(path, weight_scale(args)?)?;
    let (_, comps) = hicond::graph::connectivity::connected_components(&g);
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for e in g.edges() {
        lo = lo.min(e.w);
        hi = hi.max(e.w);
    }
    println!("vertices:        {}", g.num_vertices());
    println!("edges:           {}", g.num_edges());
    println!("components:      {comps}");
    println!("max degree:      {}", g.max_degree());
    println!("total weight:    {:.6e}", g.total_weight());
    if g.num_edges() > 0 {
        println!("weight range:    [{lo:.3e}, {hi:.3e}]");
    }
    println!(
        "fingerprint:     {:016x}",
        hicond::graph::graph_fingerprint(&g)
    );
    Ok(())
}

fn cmd_decompose(path: &str, args: &[String]) -> Result<(), String> {
    let g = load_graph(path, weight_scale(args)?)?;
    let k: usize = arg_value(args, "--k")
        .map(|s| s.parse().map_err(|_| "bad --k".to_string()))
        .transpose()?
        .unwrap_or(8);
    let method = arg_value(args, "--method").unwrap_or_else(|| "fixed".into());
    let p = match method.as_str() {
        "fixed" => decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                k,
                ..Default::default()
            },
        ),
        "planar" => decompose_planar(&g, &PlanarOptions::default()).partition,
        "tree" => decompose_forest(&g),
        other => return Err(format!("unknown method '{other}' (fixed|planar|tree)")),
    };
    let q = p.quality(&g, 18);
    println!("method:          {method}");
    println!("clusters:        {}", p.num_clusters());
    println!("reduction rho:   {:.3}", q.rho);
    println!(
        "min phi:         {:.5} ({})",
        q.phi,
        if q.phi_exact { "exact" } else { "lower bound" }
    );
    println!("min gamma:       {:.4}", q.gamma);
    println!("cut fraction:    {:.4}", q.cut_fraction);
    println!("max cluster:     {}", q.max_cluster_size);
    if let Some(phi_s) = arg_value(args, "--validate") {
        let phi: f64 = phi_s
            .parse()
            .map_err(|_| "bad --validate PHI".to_string())?;
        let rho: f64 = args
            .iter()
            .position(|a| a == "--validate")
            .and_then(|i| args.get(i + 2))
            .and_then(|s| s.parse().ok())
            .ok_or("missing RHO after --validate PHI")?;
        let cert = validate_phi_rho(&g, &p, phi, rho, 18);
        println!(
            "validation:      {}",
            if cert.certified() {
                "CERTIFIED"
            } else if cert.plausible() {
                "plausible (some clusters too large for exact check)"
            } else {
                "FAILED"
            }
        );
        for v in cert.violations.iter().take(10) {
            println!("  violation in cluster {}: {:?}", v.cluster, v.kind);
        }
    }
    Ok(())
}

/// Builds the solver directly, or through the artifact cache with
/// `--cached` (build once, load on every later run).
fn obtain_solver(g: &Graph, opts: &SolverOptions, cached: bool) -> Result<LaplacianSolver, String> {
    if !cached {
        return Ok(LaplacianSolver::new(g, opts));
    }
    let cache = Cache::from_env();
    let (solver, source) = load_or_build(&cache, g, opts).map_err(|e| format!("cache: {e}"))?;
    eprintln!(
        "preconditioner {} (cache dir {})",
        match source {
            SolverSource::Loaded => "loaded from cache",
            SolverSource::Built => "built and cached",
        },
        cache.dir().display()
    );
    Ok(solver)
}

fn cmd_solve(path: &str, args: &[String]) -> Result<(), String> {
    let g = load_graph(path, weight_scale(args)?)?;
    let n = g.num_vertices();
    let tol = parse_tol(args)?;
    let b: Vec<f64> = if args.iter().any(|a| a == "--demo") {
        // Unit dipole between the first and last vertex.
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        b
    } else {
        let rhs_path = args
            .iter()
            .find(|a| !a.starts_with("--") && a.as_str() != path)
            .ok_or("need an rhs file or --demo")?;
        let text =
            std::fs::read_to_string(rhs_path).map_err(|e| format!("cannot read rhs: {e}"))?;
        let vals: Result<Vec<f64>, _> = text.split_whitespace().map(|t| t.parse()).collect();
        vals.map_err(|e| format!("bad rhs value: {e}"))?
    };
    let opts = SolverOptions {
        rel_tol: tol,
        ..Default::default()
    };
    let solver = obtain_solver(&g, &opts, args.iter().any(|a| a == "--cached"))?;
    println!("hierarchy levels: {}", solver.num_levels());
    match solver.solve(&b) {
        Ok(sol) => {
            println!(
                "converged in {} iterations (relative residual {:.2e})",
                sol.iterations, sol.rel_residual
            );
            let mut preview = String::new();
            for (i, x) in sol.x.iter().take(8).enumerate() {
                preview.push_str(&format!("x[{i}] = {x:.6e}  "));
            }
            println!("{preview}...");
            Ok(())
        }
        Err(e) => Err(format!("solve failed: {e}")),
    }
}

/// `hicond serve <graph>`: build-or-load the preconditioner once, then
/// answer solves over a line protocol — on stdin/stdout by default, or
/// as a concurrent TCP service with `--listen ADDR`.
///
/// Protocol (one request per line, see [`hicond::serve`]):
/// - `n` whitespace-separated f64 values — a right-hand side; the reply is
///   `ok <iterations> <rel_residual> <x_0> ... <x_{n-1}>` on one line, or
///   `ERR <code>: <detail>` — the session stays alive after an error.
/// - `stats` — session counters, solve-latency quantiles, and live
///   queue/batch gauges on one line.
/// - `metrics` — one line of delta-snapshot JSON (registry + flight
///   events since the last scrape); pipe to `hicond top` to render.
/// - `quit` — exit cleanly. EOF also ends the session.
///
/// `--listen ADDR` (e.g. `127.0.0.1:0`) accepts concurrent clients,
/// one thread each, and coalesces their pending right-hand sides into
/// block solves (`HICOND_SERVE_BATCH` / `HICOND_SERVE_BATCH_WINDOW_MS`
/// / `HICOND_SERVE_MAX_INFLIGHT`); the resolved address is printed as
/// `listening <addr>` on stdout. `--conns N` exits after `N`
/// connections have been served (CI smoke); without it the server runs
/// until killed. Both transports enforce the request-line byte limit;
/// TCP connections additionally get an idle read timeout.
fn cmd_serve(path: &str, args: &[String]) -> Result<(), String> {
    let g = load_graph(path, weight_scale(args)?)?;
    let tol = parse_tol(args)?;
    let opts = SolverOptions {
        rel_tol: tol,
        ..Default::default()
    };
    let solver = obtain_solver(&g, &opts, true)?;
    let n = g.num_vertices();
    eprintln!(
        "serving {n} vertices, {} hierarchy levels; send {n} rhs values per line, 'quit' to exit",
        solver.num_levels()
    );
    if let Some(addr) = arg_value(args, "--listen") {
        return serve_listen(&addr, solver, n, args);
    }
    let max_line = hicond::serve::max_line_bytes(n);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    let mut served = 0u64;
    let stats = hicond::serve::ServeStats::new();
    loop {
        let line = match hicond::serve::read_bounded_line(&mut input, max_line) {
            hicond::serve::LineEvent::Line(line) => line,
            hicond::serve::LineEvent::Eof => break,
            hicond::serve::LineEvent::TooLong { limit } => {
                let reply = format!("ERR bad-length: request line exceeds {limit} bytes");
                out.write_all(reply.as_bytes())
                    .and_then(|_| out.write_all(b"\n"))
                    .and_then(|_| out.flush())
                    .map_err(|e| format!("stdout: {e}"))?;
                served += 1;
                continue;
            }
            // stdin has no read deadline; TimedOut cannot happen here.
            hicond::serve::LineEvent::TimedOut => break,
            hicond::serve::LineEvent::Err(e) => return Err(format!("stdin: {e}")),
        };
        let reply = match hicond::serve::respond(&solver, n, &line, &stats) {
            hicond::serve::Action::Reply(r) => r,
            hicond::serve::Action::Ignore => continue,
            hicond::serve::Action::Quit => break,
        };
        out.write_all(reply.as_bytes())
            .and_then(|_| out.write_all(b"\n"))
            .and_then(|_| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
        served += 1;
    }
    eprintln!("served {served} requests");
    Ok(())
}

/// The `--listen` arm of `cmd_serve`: TCP front end over the shared
/// batch queue.
fn serve_listen(
    addr: &str,
    solver: hicond::precond::LaplacianSolver,
    n: usize,
    args: &[String],
) -> Result<(), String> {
    let max_conns: Option<u64> = match arg_value(args, "--conns") {
        Some(s) => Some(s.parse().map_err(|_| "bad --conns count".to_string())?),
        None => None,
    };
    let batch_cfg = hicond::serve::BatchConfig::from_env()?;
    let (listener, local) = hicond::serve::server::bind(addr)?;
    // The resolved address goes to *stdout* so scripts binding port 0
    // can read it back; diagnostics stay on stderr.
    println!("listening {local}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "batching up to {} rhs per block solve, {:?} window, {} inflight cap",
        batch_cfg.max_batch, batch_cfg.window, batch_cfg.max_inflight
    );
    let solver = std::sync::Arc::new(solver);
    let stats = std::sync::Arc::new(hicond::serve::ServeStats::new());
    let queue = hicond::serve::BatchQueue::new(batch_cfg);
    let dispatcher = queue.start(
        std::sync::Arc::clone(&solver),
        std::sync::Arc::clone(&stats),
    );
    let cfg = hicond::serve::ServeConfig {
        n,
        max_line: hicond::serve::max_line_bytes(n),
        read_timeout: std::time::Duration::from_secs(30),
    };
    let stop = std::sync::atomic::AtomicBool::new(false);
    let summary =
        hicond::serve::serve_tcp(listener, &queue, dispatcher, &stats, &cfg, max_conns, &stop)?;
    eprintln!(
        "served {} connections, {} replies; drained {} queued request(s) at shutdown",
        summary.connections, summary.replies, summary.drain.queued_at_shutdown
    );
    Ok(())
}

/// `hicond client <addr>`: minimal protocol client for scripts and CI —
/// forwards stdin lines to a `hicond serve --listen` endpoint and
/// prints each reply line to stdout. Exits on stdin EOF (after a final
/// `quit`) or when the server closes the connection.
fn cmd_client(addr: &str) -> Result<(), String> {
    use std::io::BufRead;
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("socket: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    // Lock order stdin → stdout, same as the serve loop: the workspace
    // lock-order graph must stay acyclic.
    let input = stdin.lock();
    let mut out = stdout.lock();
    for line in input.lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let quitting = line.trim() == "quit";
        writer
            .write_all(line.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        if quitting {
            break;
        }
        if line.trim().is_empty() {
            continue; // the server ignores blank lines: no reply to wait for
        }
        let mut reply = String::new();
        let got = reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        if got == 0 {
            break; // server closed (timeout or shutdown)
        }
        out.write_all(reply.as_bytes())
            .and_then(|_| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
    }
    Ok(())
}

fn cmd_cache(args: &[String]) -> Result<(), String> {
    let cache = Cache::from_env();
    let action = args.first().map(|s| s.as_str()).unwrap_or("ls");
    match action {
        "ls" => {
            let entries = cache.entries().map_err(|e| e.to_string())?;
            println!("cache dir: {}", cache.dir().display());
            if entries.is_empty() {
                println!("(empty)");
                return Ok(());
            }
            let mut total = 0u64;
            for e in &entries {
                println!(
                    "  {:<14} {:016x}  {:>12} bytes  {}",
                    hicond::artifact::kinds::name(e.kind),
                    e.key,
                    e.bytes,
                    e.path.display()
                );
                total += e.bytes;
            }
            println!("{} entries, {total} bytes", entries.len());
            Ok(())
        }
        "verify" => {
            let report = cache.verify().map_err(|e| e.to_string())?;
            println!("ok: {}", report.ok);
            for (path, err) in &report.bad {
                println!("BAD {}: {err}", path.display());
            }
            if report.bad.is_empty() {
                Ok(())
            } else {
                Err(format!("{} corrupt entries", report.bad.len()))
            }
        }
        "gc" => {
            let all = args.iter().any(|a| a == "--all");
            let GcReport {
                removed,
                bytes,
                tmp_removed,
                corrupt_removed,
            } = cache.gc(all).map_err(|e| e.to_string())?;
            println!(
                "removed {removed} entries ({corrupt_removed} corrupt), {tmp_removed} tmp files, {bytes} bytes"
            );
            Ok(())
        }
        other => Err(format!("unknown cache action '{other}' (ls|verify|gc)")),
    }
}

fn cmd_cluster(path: &str, args: &[String]) -> Result<(), String> {
    let g = load_graph(path, weight_scale(args)?)?;
    let k: usize = arg_value(args, "--k")
        .map(|s| s.parse().map_err(|_| "bad --k".to_string()))
        .transpose()?
        .ok_or("cluster needs --k K")?;
    let method = arg_value(args, "--method").unwrap_or_else(|| "walk".into());
    let p = match method.as_str() {
        "eigen" => spectral_clustering(
            &g,
            &SpectralClusteringOptions {
                k,
                ..Default::default()
            },
        ),
        "walk" => walk_mixture_clustering(
            &g,
            &WalkClusteringOptions {
                k,
                ..Default::default()
            },
        ),
        other => return Err(format!("unknown method '{other}' (eigen|walk)")),
    };
    let q = p.quality(&g, 18);
    println!(
        "clusters: {} (cut fraction {:.4}, gamma {:.4})",
        p.num_clusters(),
        q.cut_fraction,
        q.gamma
    );
    for (i, c) in p.clusters().iter().enumerate().take(20) {
        let head: Vec<usize> = c.iter().copied().take(12).collect();
        println!(
            "  cluster {i} ({} vertices): {head:?}{}",
            c.len(),
            if c.len() > 12 { " ..." } else { "" }
        );
    }
    Ok(())
}

/// `hicond top`: live telemetry viewer. Reads a serve session's output
/// from stdin, ignores `ok`/`ERR` reply lines, and renders every
/// `metrics`-verb JSON line (a delta scrape) as a compact dashboard:
/// counter deltas, span activity, anomalies, and per-trace span trees
/// reassembled from the flight events. `--check` parses silently and
/// fails on malformed scrapes (the CI telemetry smoke step); `--trace ID`
/// restricts the event tree to one request.
///
/// Composes with any transport the serve loop is wired to:
/// `printf '…\nmetrics\nquit\n' | hicond serve g.txt | hicond top`.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let check = args.iter().any(|a| a == "--check");
    let trace_filter: Option<u64> = match arg_value(args, "--trace") {
        Some(s) => Some(s.parse().map_err(|_| "bad --trace id".to_string())?),
        None => None,
    };
    let stdin = std::io::stdin();
    let mut scrapes = 0u64;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let t = line.trim();
        if !t.starts_with('{') {
            continue; // solve replies and banners pass through silently
        }
        let v = hicond::obs::json::parse(t).map_err(|e| format!("bad metrics JSON: {e}"))?;
        if let Some(dump) = v.get("flight_recorder") {
            // A panic-hook black-box dump (piped from a crashed process's
            // stderr): validate its shape, render its events.
            let events = dump
                .get("events")
                .and_then(hicond::obs::json::Value::as_array)
                .ok_or("flight_recorder dump lacks events")?;
            scrapes += 1;
            if !check {
                println!(
                    "── flight-recorder panic dump: {} event(s) ──",
                    events.len()
                );
                render_scrape(&v, scrapes, trace_filter);
            }
            continue;
        }
        v.get("delta")
            .and_then(|d| d.get("counters"))
            .ok_or("metrics line lacks delta.counters")?;
        scrapes += 1;
        if !check {
            render_scrape(&v, scrapes, trace_filter);
        }
    }
    if check {
        if scrapes == 0 {
            return Err("no metrics scrape lines seen on stdin".into());
        }
        println!("ok: {scrapes} metrics scrape(s) parsed");
    }
    Ok(())
}

/// Renders one parsed `metrics` scrape for `hicond top`.
fn render_scrape(v: &hicond::obs::json::Value, n: u64, trace_filter: Option<u64>) {
    use hicond::obs::json::Value;
    println!("── scrape {n} ──");
    if let Some(counters) = v
        .get("delta")
        .and_then(|d| d.get("counters"))
        .and_then(Value::as_object)
    {
        for (name, val) in counters {
            let mark = if name.starts_with("anomaly/") {
                "  !! "
            } else {
                "    "
            };
            println!("{mark}{name:<32} +{}", val.as_f64().unwrap_or(0.0));
        }
    }
    if let Some(spans) = v
        .get("delta")
        .and_then(|d| d.get("spans"))
        .and_then(Value::as_object)
    {
        for (name, t) in spans {
            let count = t.get("count").and_then(Value::as_f64).unwrap_or(0.0);
            let total = t.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0);
            println!("    span {name:<27} x{count} {:.3}ms", total / 1e6);
        }
    }
    let events = v
        .get("flight")
        .or_else(|| v.get("flight_recorder"))
        .and_then(|f| f.get("events"))
        .and_then(Value::as_array)
        .unwrap_or(&[]);
    if events.is_empty() {
        return;
    }
    println!("    flight events: {}", events.len());
    // Reassemble span trees: per (trace, thread) nesting depth, indent by
    // enter/exit pairing in sequence order (events arrive seq-sorted).
    let mut depth: std::collections::BTreeMap<(u64, u64), usize> =
        std::collections::BTreeMap::new();
    for e in events {
        let trace = e.get("trace").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        if let Some(want) = trace_filter {
            if trace != want {
                continue;
            }
        }
        let thread = e.get("thread").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let kind = e.get("kind").and_then(Value::as_str).unwrap_or("?");
        let name = e.get("name").and_then(Value::as_str).unwrap_or("?");
        let d = depth.entry((trace, thread)).or_insert(0);
        match kind {
            "span_enter" => {
                println!(
                    "    [t{trace}/th{thread}] {:indent$}▶ {name}",
                    "",
                    indent = *d * 2
                );
                *d += 1;
            }
            "span_exit" => {
                *d = d.saturating_sub(1);
                let ns = e.get("dur_ns").and_then(Value::as_f64).unwrap_or(0.0);
                println!(
                    "    [t{trace}/th{thread}] {:indent$}◀ {name} {:.3}ms",
                    "",
                    ns / 1e6,
                    indent = *d * 2
                );
            }
            "anomaly" => {
                let iter = e.get("iter").and_then(Value::as_f64).unwrap_or(0.0);
                println!("    [t{trace}/th{thread}] !! {name} at iter {iter}");
            }
            _ => {
                println!(
                    "    [t{trace}/th{thread}] {:indent$}· {kind} {name}",
                    "",
                    indent = *d * 2
                );
            }
        }
    }
}

/// Hidden selftest: records a few flight events, then panics, so CI can
/// assert the panic hook dumps a parseable flight record to stderr.
fn cmd_flight_panic() -> Result<(), String> {
    hicond::obs::set_mode(hicond::obs::Mode::Json);
    let _span = hicond::obs::span("flight_panic_selftest");
    hicond::obs::counter_add("selftest/flight_panic", 1);
    panic!("flight-panic selftest: intentional panic to exercise the flight-recorder dump");
}

fn usage() -> &'static str {
    "usage:\n  hicond info <graph>\n  hicond decompose <graph> [--k K] [--method fixed|planar|tree] [--validate PHI RHO]\n  hicond solve <graph> <rhs|--demo> [--tol T] [--cached]\n  hicond serve <graph> [--tol T] [--listen ADDR [--conns N]]\n  hicond client <addr>                (stdin lines -> a --listen server, replies -> stdout)\n  hicond top [--check] [--trace ID]   (reads a serve session's output on stdin)\n  hicond cache ls|verify|gc [--all]\n  hicond cluster <graph> --k K [--method eigen|walk]\n\nserve --listen batches concurrent clients into block solves; tune with\nHICOND_SERVE_BATCH, HICOND_SERVE_BATCH_WINDOW_MS, HICOND_SERVE_MAX_INFLIGHT\nall graph-loading commands accept --weight-scale S (default 1000, METIS weight divisor)\ngraph files: native edge list ('n m' header + 'u v w' lines) or METIS (.metis/.graph)\ncache dir: $HICOND_CACHE_DIR (default .hicond-cache)"
}

fn main() -> ExitCode {
    // Fail fast on garbled scheduler env (HICOND_THREADS / HICOND_SCHED_JITTER)
    // with an orderly diagnostic instead of a panic mid-solve: a set-but-
    // invalid variable is an operator error, never a silent fallback.
    if let Err(e) = rayon::pool::validate_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    // Every crash ships its own black box: the hook dumps the last flight
    // events as one JSON line on stderr (no-op when nothing was recorded).
    hicond::obs::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match (args.first().map(|s| s.as_str()), args.get(1)) {
        (Some("info"), Some(path)) => cmd_info(path, &args[2..]),
        (Some("decompose"), Some(path)) => cmd_decompose(path, &args[2..]),
        (Some("solve"), Some(path)) => cmd_solve(path, &args[2..]),
        (Some("serve"), Some(path)) => cmd_serve(path, &args[2..]),
        (Some("client"), Some(addr)) => cmd_client(addr),
        (Some("top"), _) => cmd_top(&args[1..]),
        (Some("cache"), _) => cmd_cache(&args[1..]),
        (Some("cluster"), Some(path)) => cmd_cluster(path, &args[2..]),
        // Hidden: exercises the panic-hook flight dump for CI.
        (Some("flight-panic"), _) => cmd_flight_panic(),
        _ => {
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    // With HICOND_OBS=text|json the accumulated metrics snapshot (phase
    // tree, solver counters, histograms) lands on stderr; off is silent.
    hicond::obs::report();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
