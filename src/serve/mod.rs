//! The `hicond serve` request protocol: one request per line, one reply
//! per line, structured errors, bounded allocation.
//!
//! A serve session reads lines from an untrusted peer, so this module is
//! a declared entry point of the `xtask reach` panic-reachability pass
//! (see `REACHABILITY.md`): nothing here may panic or allocate
//! proportionally to anything but the solver dimension, no matter what
//! bytes arrive.
//!
//! ## Protocol
//!
//! - request: `n` whitespace-separated `f64` right-hand-side values,
//!   where `n` is the vertex count announced at startup
//! - success reply: `ok <iterations> <rel_residual> <x_0> … <x_{n-1}>`
//! - error reply: `ERR <code>: <detail>` — the session **stays alive**
//!   (except after `timeout`); codes are `bad-value` (unparseable or
//!   non-finite number), `bad-length` (wrong number of values, or a
//!   request line over the byte limit), `solve-failed` (the solver did
//!   not converge), `busy` (admission control shed the request — retry
//!   later), and `timeout` (the connection idled past the read deadline
//!   and is being closed)
//! - `stats` replies with the session's request counters, solve-latency
//!   quantiles (`ok stats requests=… errors=… p50_us=… p95_us=… p99_us=…
//!   cache_hits=… cache_misses=…`) linearly interpolated inside the log₂
//!   latency buckets, plus the process's artifact-cache hit/miss counts;
//!   the session keeps going
//! - `metrics` replies one line of JSON — a *delta* snapshot of the obs
//!   registry since the previous `metrics` call this session, plus the
//!   flight-recorder events recorded since then — consumed by
//!   `hicond top` and the CI telemetry smoke test; the line always starts
//!   with `{` so scrapers can tell it from `ok`/`ERR` replies
//! - `quit` or EOF ends the session; empty lines are ignored
//!
//! Every solve request runs under a fresh u64 trace id (flight-recorder
//! `req_open`/`req_close` events bracket it), which the pool forwards to
//! worker threads, so one request's full span tree is reassemblable from
//! a `metrics` scrape. Malformed requests bump the `serve/bad_request`
//! obs counter so a fleet operator can see a misbehaving client without
//! scraping replies. A convergence watchdog inside PCG plus a serve-level
//! preconditioner-staleness rule raise `anomaly/*` events (see
//! `hicond_obs::watchdog`).
//!
//! ## Module layout
//!
//! - this module: the protocol itself — [`respond`] (direct, one solve
//!   per request; the stdin transport) and [`respond_batched`] (routes
//!   solve requests through a shared [`batch::BatchQueue`] so concurrent
//!   clients coalesce into one block solve; the TCP transport)
//! - [`batch`]: the coalescing queue + dispatcher thread (size trigger
//!   `HICOND_SERVE_BATCH`, time window `HICOND_SERVE_BATCH_WINDOW_MS`,
//!   admission cap `HICOND_SERVE_MAX_INFLIGHT`)
//! - [`server`]: the byte-level transports — a bounded line reader
//!   (max-line + idle-timeout guard, shared by stdin and TCP) and the
//!   thread-per-connection TCP front end

pub mod batch;
pub mod server;

pub use batch::{BatchConfig, BatchQueue, SubmitError};
pub use server::{max_line_bytes, read_bounded_line, serve_tcp, LineEvent, ServeConfig};

use hicond_precond::{LaplacianSolver, Solution};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-session serve statistics: request/error counts plus log₂
/// histograms of solve latencies (µs) and per-solve iteration counts,
/// and the `metrics`-verb scrape baseline.
///
/// Lives outside the global obs registry so the `stats` verb works even
/// when `HICOND_OBS` is off, and so concurrent sessions (if a caller ever
/// runs them) do not mix their numbers. Recording touches only atomics;
/// the baseline mutex is taken by the `metrics` verb alone.
#[derive(Debug, Default)]
pub struct ServeStats {
    latency_us: hicond_obs::Histogram,
    /// Iteration counts of converged solves; feeds the running median
    /// for the preconditioner-staleness watchdog rule.
    iterations: hicond_obs::Histogram,
    /// Sizes of the block solves the batch dispatcher formed; empty
    /// until a [`batch::BatchQueue`] is wired to this session.
    batch_size: hicond_obs::Histogram,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Right-hand sides currently queued, waiting for the dispatcher
    /// (live gauge, maintained by the batch queue).
    queue_depth: AtomicU64,
    /// Right-hand sides currently inside a block solve (live gauge).
    inflight: AtomicU64,
    /// Session-ordinal of the request (stamped into `req_open` events).
    seq: AtomicU64,
    /// Previous `metrics` scrape: registry snapshot + flight watermark.
    /// Lock discipline: this is a leaf taken *after* the registry
    /// snapshot and flight drain complete, never around them — the lock
    /// graph stays flat.
    baseline: Mutex<(hicond_obs::Snapshot, u64)>,
}

impl ServeStats {
    /// Fresh all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of solve requests seen (excluding `stats`/`quit`/blank).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of requests answered with an `ERR` reply.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Current number of queued right-hand sides (live gauge set by the
    /// batch dispatcher; 0 on an unbatched session).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Current number of right-hand sides inside a block solve.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Records one dispatched batch of `k` right-hand sides (histogram +
    /// obs mirror); called by the batch dispatcher.
    pub(crate) fn record_batch(&self, k: u64) {
        self.batch_size.record_u64(k);
        hicond_obs::hist_record("serve/batch_size", k as f64);
    }

    /// Publishes the live queue-depth / inflight gauges (session-local
    /// atomics plus the obs registry); called by the batch dispatcher.
    pub(crate) fn set_queue_gauges(&self, queue_depth: u64, inflight: u64) {
        // ordering: Relaxed stores — these are monitoring gauges read by
        // the `stats` verb; they publish no other memory and a stale
        // read merely lags the dashboard by one scrape.
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        // ordering: Relaxed store — same monitoring-gauge rationale.
        self.inflight.store(inflight, Ordering::Relaxed);
        hicond_obs::gauge_set("serve/queue_depth", queue_depth as f64);
        hicond_obs::gauge_set("serve/inflight", inflight as f64);
    }

    /// One-line report for the `stats` verb. Quantiles interpolate
    /// linearly inside the containing log₂ bucket
    /// (`hicond_obs::Histogram::quantile_interpolated`) instead of
    /// answering the bucket's lower bound; `-` when nothing was
    /// recorded. Cache hit/miss counts come from the process-wide
    /// artifact counters, which record unconditionally (the report is
    /// meaningful with `HICOND_OBS=off`).
    fn report(&self) -> String {
        let q = |p: f64| match self.latency_us.quantile_interpolated(p) {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        };
        let bq = |p: f64| match self.batch_size.quantile_interpolated(p) {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        let reg = hicond_obs::global();
        // New keys append after `cache_misses=`: scrapers pin the prefix.
        format!(
            "ok stats requests={} errors={} p50_us={} p95_us={} p99_us={} cache_hits={} cache_misses={} queue_depth={} inflight={} batch_p50={} batch_p95={}",
            self.requests(),
            self.errors(),
            q(0.50),
            q(0.95),
            q(0.99),
            reg.counter("artifact/cache_hit").get(),
            reg.counter("artifact/cache_miss").get(),
            self.queue_depth(),
            self.inflight(),
            bq(0.50),
            bq(0.95),
        )
    }

    /// One-line JSON for the `metrics` verb: the registry delta since the
    /// previous scrape plus the flight events recorded since then.
    fn metrics_report(&self) -> String {
        // Gather first, lock last: the registry snapshot takes the
        // registry mutex and the flight drain takes the intern mutex
        // (via rendering) — both must be released before the baseline
        // lock so no edge registry→baseline or baseline→registry exists.
        let cur = hicond_obs::snapshot();
        let head = hicond_obs::flight::recorder().head();
        let (prev, prev_head) = {
            let mut base = match self.baseline.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::replace(&mut *base, (cur.clone(), head))
        };
        let delta = hicond_obs::delta_snapshot(&prev, &cur);
        // Trim to the [prev_head, head) window so an event racing the
        // scrape lands in exactly one report, not two.
        let mut events = hicond_obs::flight::recorder().drain_since(prev_head);
        events.retain(|e| e.seq < head);
        format!(
            "{{\"delta\":{},\"flight\":{{\"since\":{prev_head},\"head\":{head},\"events\":{}}}}}",
            hicond_obs::render_json(&delta),
            hicond_obs::flight::render_events_json(&events),
        )
    }
}

/// What the serve loop should do with one input line.
#[derive(Debug, PartialEq)]
pub enum Action {
    /// Write this reply line (either `ok …` or `ERR …`) and keep going.
    Reply(String),
    /// Blank input: write nothing, keep going.
    Ignore,
    /// `quit`: end the session cleanly.
    Quit,
}

/// Handles one request line against a ready solver. Infallible by
/// design: every malformed input becomes a structured `ERR` reply and
/// the connection survives. `n` is the solver dimension (trusted — it
/// comes from the operator's own graph, not from the peer); `stats`
/// accumulates this session's counters and latency histogram.
pub fn respond(solver: &LaplacianSolver, n: usize, line: &str, stats: &ServeStats) -> Action {
    let trimmed = line.trim();
    if let Some(meta) = meta_action(trimmed, stats) {
        return meta;
    }
    // Every solve request runs under a fresh trace id: the span stack,
    // the PCG milestones, and (via the pool's ActiveJob capture) the
    // worker-thread batch events all stamp it, so a `metrics` scrape can
    // reassemble this request's full event tree. Telemetry only — the
    // guard is a thread-local swap, the id never reaches the numerics.
    let trace = hicond_obs::next_trace_id();
    let _trace = hicond_obs::trace_scope(trace);
    let req_seq = stats.seq.fetch_add(1, Ordering::Relaxed);
    hicond_obs::flight::event_named(
        hicond_obs::flight::EventKind::RequestOpen,
        "serve/request",
        req_seq,
        0,
    );
    let _span = hicond_obs::span("serve_request");
    hicond_obs::counter_add("serve/requests", 1);
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let b = match parse_rhs(n, trimmed) {
        Ok(b) => b,
        Err(reply) => {
            hicond_obs::counter_add("serve/bad_request", 1);
            stats.errors.fetch_add(1, Ordering::Relaxed);
            hicond_obs::flight::event_named(
                hicond_obs::flight::EventKind::RequestClose,
                "serve/request",
                1,
                f64::to_bits(0.0),
            );
            return Action::Reply(reply);
        }
    };
    // audit: allow(instant-now) — wall-clock latency measurement for the
    // stats report; the duration never feeds back into solver numerics.
    let t0 = std::time::Instant::now();
    // reach: trusted(b holds exactly n finite f64 values — parse_rhs
    // rejected everything else, so the solver numerics never see raw
    // peer input)
    let outcome = solver.solve(&b);
    let us = t0.elapsed().as_secs_f64() * 1e6;
    stats.latency_us.record(us);
    hicond_obs::hist_record("serve/latency_us", us);
    let (action, err) = match outcome {
        Ok(sol) => (Action::Reply(ok_reply(&sol, stats)), 0u64),
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            (Action::Reply(format!("ERR solve-failed: {e}")), 1u64)
        }
    };
    hicond_obs::flight::event_named(
        hicond_obs::flight::EventKind::RequestClose,
        "serve/request",
        err,
        us.to_bits(),
    );
    action
}

/// Handles one request line against a shared [`BatchQueue`] instead of a
/// private solver: solve requests park on the queue until the dispatcher
/// folds them (with every other client's pending rhs) into one block
/// solve. Meta verbs, parse errors, and replies are identical to
/// [`respond`]; the only new outcome is `ERR busy` when admission
/// control sheds the request. Infallible by design, like `respond`: the
/// connection survives every malformed or shed input.
pub fn respond_batched(queue: &BatchQueue, n: usize, line: &str, stats: &ServeStats) -> Action {
    let trimmed = line.trim();
    if let Some(meta) = meta_action(trimmed, stats) {
        return meta;
    }
    // Same per-request tracing contract as `respond`: the id survives
    // batching because the dispatcher links it to the shared block
    // solve's trace with a `batch_join` event.
    let trace = hicond_obs::next_trace_id();
    let _trace = hicond_obs::trace_scope(trace);
    let req_seq = stats.seq.fetch_add(1, Ordering::Relaxed);
    hicond_obs::flight::event_named(
        hicond_obs::flight::EventKind::RequestOpen,
        "serve/request",
        req_seq,
        0,
    );
    let _span = hicond_obs::span("serve_request");
    hicond_obs::counter_add("serve/requests", 1);
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let b = match parse_rhs(n, trimmed) {
        Ok(b) => b,
        Err(reply) => {
            hicond_obs::counter_add("serve/bad_request", 1);
            stats.errors.fetch_add(1, Ordering::Relaxed);
            hicond_obs::flight::event_named(
                hicond_obs::flight::EventKind::RequestClose,
                "serve/request",
                1,
                f64::to_bits(0.0),
            );
            return Action::Reply(reply);
        }
    };
    // audit: allow(instant-now) — wall-clock latency (queue wait + block
    // solve) for the stats report; never feeds back into the numerics.
    let t0 = std::time::Instant::now();
    let outcome = match queue.submit(b, trace) {
        Ok(rx) => match rx.recv() {
            Ok(res) => res,
            // The dispatcher is gone (drain finished without us or it
            // panicked): answer structurally, never hang or crash.
            Err(_) => {
                let us = t0.elapsed().as_secs_f64() * 1e6;
                return shed_reply(stats, us, "service is shutting down".to_string());
            }
        },
        Err(SubmitError::Busy { depth, limit }) => {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            hicond_obs::counter_add("serve/shed", 1);
            return shed_reply(
                stats,
                us,
                format!("{depth} requests pending or solving (limit {limit}); retry later"),
            );
        }
        Err(SubmitError::ShuttingDown) => {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            return shed_reply(stats, us, "service is shutting down".to_string());
        }
    };
    let us = t0.elapsed().as_secs_f64() * 1e6;
    stats.latency_us.record(us);
    hicond_obs::hist_record("serve/latency_us", us);
    let (action, err) = match outcome {
        Ok(sol) => (Action::Reply(ok_reply(&sol, stats)), 0u64),
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            (Action::Reply(format!("ERR solve-failed: {e}")), 1u64)
        }
    };
    hicond_obs::flight::event_named(
        hicond_obs::flight::EventKind::RequestClose,
        "serve/request",
        err,
        us.to_bits(),
    );
    action
}

/// Meta verbs shared by the direct and batched handlers: blank lines,
/// `quit`, `stats`, `metrics`. `None` means the line is a solve request.
fn meta_action(trimmed: &str, stats: &ServeStats) -> Option<Action> {
    if trimmed.is_empty() {
        return Some(Action::Ignore);
    }
    match trimmed {
        "quit" => Some(Action::Quit),
        "stats" => Some(Action::Reply(stats.report())),
        "metrics" => Some(Action::Reply(stats.metrics_report())),
        _ => None,
    }
}

/// Formats the `ok …` reply for a converged solve and feeds the
/// iteration histogram + preconditioner-staleness watchdog: a converged
/// solve that needed far more iterations than this session's running
/// median suggests the preconditioner no longer matches the operator.
fn ok_reply(sol: &Solution, stats: &ServeStats) -> String {
    hicond_obs::hist_record("serve/iterations", sol.iterations as f64);
    let iters = sol.iterations as u64;
    stats.iterations.record_u64(iters);
    if let Some(median) = stats.iterations.quantile_interpolated(0.5) {
        hicond_obs::watchdog::check_staleness(iters, median, stats.iterations.count());
    }
    let mut reply = format!("ok {} {:.3e}", sol.iterations, sol.rel_residual);
    for x in &sol.x {
        reply.push(' ');
        reply.push_str(&format!("{x:.17e}"));
    }
    reply
}

/// Books one shed/shutdown rejection (error counters + `req_close`
/// event) and builds the structured `ERR busy` reply.
fn shed_reply(stats: &ServeStats, us: f64, detail: String) -> Action {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    hicond_obs::flight::event_named(
        hicond_obs::flight::EventKind::RequestClose,
        "serve/request",
        1,
        us.to_bits(),
    );
    Action::Reply(format!("ERR busy: {detail}"))
}

/// Parses the right-hand side, enforcing exactly `n` finite values. The
/// reply growth is bounded: the vector never exceeds `n` entries and the
/// capacity hint is clamped by the line length (a k-value request needs
/// at least 2k−1 bytes of input).
fn parse_rhs(n: usize, line: &str) -> Result<Vec<f64>, String> {
    let mut b: Vec<f64> = Vec::with_capacity(n.min(line.len()));
    for tok in line.split_whitespace() {
        if b.len() == n {
            return Err(format!("ERR bad-length: more than {n} rhs values"));
        }
        match tok.parse::<f64>() {
            Ok(v) if v.is_finite() => b.push(v),
            Ok(v) => return Err(format!("ERR bad-value: non-finite rhs value {v}")),
            Err(e) => {
                // Echo at most a prefix of the offending token: the line
                // is peer-controlled and may be arbitrarily long.
                let shown: String = tok.chars().take(20).collect();
                return Err(format!("ERR bad-value: `{shown}`: {e}"));
            }
        }
    }
    if b.len() != n {
        return Err(format!(
            "ERR bad-length: rhs has {} values, expected {n}",
            b.len()
        ));
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_precond::SolverOptions;

    fn tiny_solver() -> (LaplacianSolver, usize) {
        let g = generators::path(8, |_| 1.0);
        let n = g.num_vertices();
        (LaplacianSolver::new(&g, &SolverOptions::default()), n)
    }

    #[test]
    fn well_formed_request_gets_ok_reply() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0); // orthogonal to the constant vector
        let line: Vec<String> = b.iter().map(|v| v.to_string()).collect();
        match respond(&solver, n, &line.join(" "), &stats) {
            Action::Reply(r) => assert!(r.starts_with("ok "), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(stats.requests(), 1);
        assert_eq!(stats.errors(), 0);
    }

    #[test]
    fn quit_and_blank_lines() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        assert_eq!(respond(&solver, n, "  quit  ", &stats), Action::Quit);
        assert_eq!(respond(&solver, n, "   ", &stats), Action::Ignore);
        assert_eq!(stats.requests(), 0, "meta lines are not solve requests");
    }

    #[test]
    fn wrong_length_is_structured_error() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        match respond(&solver, n, "1 2 3", &stats) {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn excess_values_rejected_before_materializing() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        let line = vec!["1"; n + 100].join(" ");
        match respond(&solver, n, &line, &stats) {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_non_finite_values_rejected() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        for bad in [
            "1 2 pancake",
            "NaN 1 2",
            "inf 0 0",
            &format!("{}", "9".repeat(400)),
        ] {
            match respond(&solver, n, bad, &stats) {
                Action::Reply(r) => {
                    assert!(r.starts_with("ERR bad-"), "input {bad:.40}: reply {r}");
                    assert!(r.len() < 120, "reply echoes too much input: {r}");
                }
                other => panic!("expected reply, got {other:?}"),
            }
        }
        assert_eq!(stats.errors(), 4);
    }

    #[test]
    fn stats_verb_reports_counts_and_latency_quantiles() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        // Empty session: counts are zero, quantiles are dashes. Cache
        // counters are process-global, so only their presence is asserted.
        match respond(&solver, n, "stats", &stats) {
            Action::Reply(r) => {
                assert!(
                    r.starts_with("ok stats requests=0 errors=0 p50_us=- p95_us=- p99_us=-"),
                    "reply: {r}"
                );
                assert!(r.contains(" cache_hits="), "reply: {r}");
                assert!(r.contains(" cache_misses="), "reply: {r}");
            }
            other => panic!("expected reply, got {other:?}"),
        }
        // One good solve and one error, then stats reflects both and the
        // latency histogram has data.
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0);
        let line: Vec<String> = b.iter().map(|v| v.to_string()).collect();
        respond(&solver, n, &line.join(" "), &stats);
        respond(&solver, n, "garbage", &stats);
        match respond(&solver, n, "stats", &stats) {
            Action::Reply(r) => {
                assert!(r.starts_with("ok stats requests=2 errors=1 "), "reply: {r}");
                assert!(!r.contains("p50_us=-"), "latency recorded: {r}");
                for key in ["p50_us=", "p95_us=", "p99_us="] {
                    assert!(r.contains(key), "missing {key} in {r}");
                }
            }
            other => panic!("expected reply, got {other:?}"),
        }
        // The stats verb itself never counts as a request.
        assert_eq!(stats.requests(), 2);
    }

    #[test]
    fn stats_quantiles_interpolate_inside_the_bucket() {
        let stats = ServeStats::new();
        // 100 identical latencies inside [1024, 2048): the plain quantile
        // would answer the lower bound 1024 for every percentile; the
        // interpolated report must sit strictly inside the bucket and
        // order p50 < p99.
        for _ in 0..100 {
            stats.latency_us.record(1500.0);
        }
        let r = stats.report();
        let pick = |key: &str| -> f64 {
            let tail = r.split(key).nth(1).unwrap_or("");
            tail.split_whitespace()
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or(f64::NAN)
        };
        let p50 = pick("p50_us=");
        let p99 = pick("p99_us=");
        assert!(p50 > 1024.0 && p50 < 2048.0, "p50 interpolated: {r}");
        assert!(p99 > p50 && p99 < 2048.0, "p99 above p50, in bucket: {r}");
    }

    #[test]
    fn metrics_verb_replies_one_line_of_valid_delta_json() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        let scrape = |stats: &ServeStats| -> String {
            match respond(&solver, n, "metrics", stats) {
                Action::Reply(r) => r,
                other => panic!("expected reply, got {other:?}"),
            }
        };
        let first = scrape(&stats);
        assert!(first.starts_with('{'), "metrics replies JSON: {first}");
        assert!(!first.contains('\n'), "single line");
        let v = hicond_obs::json::parse(&first).expect("metrics JSON parses");
        assert!(v.get("delta").is_some());
        let head0 = v
            .get("flight")
            .and_then(|f| f.get("head"))
            .and_then(hicond_obs::json::Value::as_f64)
            .expect("flight.head present");
        // A second scrape's window starts at the first scrape's head.
        let second = scrape(&stats);
        let v2 = hicond_obs::json::parse(&second).expect("second scrape parses");
        let since = v2
            .get("flight")
            .and_then(|f| f.get("since"))
            .and_then(hicond_obs::json::Value::as_f64)
            .expect("flight.since present");
        assert_eq!(since, head0, "delta windows tile: {second}");
        // The metrics verb never counts as a solve request.
        assert_eq!(stats.requests(), 0);
    }
}
