//! Byte-level transports for the serve protocol: a bounded line reader
//! shared by the stdin and TCP paths, and the thread-per-connection TCP
//! front end.
//!
//! The reader is the first thing untrusted bytes touch, so it is a
//! declared `xtask reach` entry point: it must never panic and never
//! buffer more than the configured line limit no matter what arrives —
//! a peer streaming gigabytes without a newline costs one limit-sized
//! buffer, not unbounded memory. Read timeouts surface as
//! [`LineEvent::TimedOut`] so a connection that goes quiet mid-session
//! is closed with a structured `ERR timeout` reply instead of pinning a
//! thread forever.

use super::batch::{BatchQueue, DrainReport};
use super::{respond_batched, Action, ServeStats};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Byte slack added on top of the per-value budget in
/// [`max_line_bytes`]: verbs, separators, and leading/trailing blanks.
const LINE_SLACK_BYTES: usize = 4096;

/// Per-value byte budget for a request line: a shortest-round-trip f64
/// prints in well under 25 bytes + 1 separator; 32 leaves headroom for
/// clients that print maximal `-1.7976931348623157e308`-style tokens.
const LINE_BYTES_PER_VALUE: usize = 32;

/// The request-line byte limit for an `n`-dimensional solver:
/// `32·n + 4096`, overridable with `HICOND_SERVE_MAX_LINE` (absolute
/// bytes). The limit bounds reader memory per connection — it is a
/// robustness guard, not a protocol parameter.
pub fn max_line_bytes(n: usize) -> usize {
    match std::env::var("HICOND_SERVE_MAX_LINE") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v >= 16 => v,
            _ => n.saturating_mul(LINE_BYTES_PER_VALUE) + LINE_SLACK_BYTES,
        },
        Err(_) => n.saturating_mul(LINE_BYTES_PER_VALUE) + LINE_SLACK_BYTES,
    }
}

/// One read attempt's outcome. Oversized lines are consumed up to their
/// newline, so the protocol stays line-synchronized after a `TooLong`.
#[derive(Debug, PartialEq)]
pub enum LineEvent {
    /// A complete line (newline stripped, lossy UTF-8).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded `limit` bytes; its content was discarded.
    TooLong {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The transport's read deadline passed with the peer silent.
    TimedOut,
    /// Unrecoverable transport error (connection reset, …).
    Err(String),
}

/// Reads one newline-terminated line from `r`, buffering at most
/// `limit` bytes. Overlong content is discarded while scanning for the
/// terminating newline, so memory stays bounded by `limit` plus the
/// transport's own buffer. Interrupted reads retry; timeout-flavored
/// errors (`WouldBlock`/`TimedOut`, per platform) become
/// [`LineEvent::TimedOut`].
pub fn read_bounded_line(r: &mut impl BufRead, limit: usize) -> LineEvent {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let (consumed, done) = {
            let chunk = match r.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return LineEvent::TimedOut;
                }
                Err(e) => return LineEvent::Err(e.to_string()),
            };
            if chunk.is_empty() {
                // EOF. A buffered partial line without a newline still
                // counts as a line (matches `BufRead::lines`).
                if overflowed {
                    return LineEvent::TooLong { limit };
                }
                if buf.is_empty() {
                    return LineEvent::Eof;
                }
                return LineEvent::Line(finish_line(buf));
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    // Room check before copying: an oversized line is
                    // dropped, never buffered.
                    if !overflowed && buf.len() + pos <= limit {
                        buf.extend(chunk.iter().take(pos));
                    } else {
                        overflowed = true;
                    }
                    (pos + 1, true)
                }
                None => {
                    if !overflowed && buf.len() + chunk.len() <= limit {
                        buf.extend(chunk.iter());
                    } else {
                        overflowed = true;
                        buf.clear();
                    }
                    (chunk.len(), false)
                }
            }
        };
        r.consume(consumed);
        if done {
            if overflowed {
                return LineEvent::TooLong { limit };
            }
            return LineEvent::Line(finish_line(buf));
        }
    }
}

/// Strips one trailing `\r` (CRLF peers) and decodes lossily: the
/// protocol is ASCII, so invalid UTF-8 can only appear in garbage that
/// the parser rejects anyway — but it must not panic the reader.
fn finish_line(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Everything a connection handler needs, shared across the server.
pub struct ServeConfig {
    /// Solver dimension (trusted; from the operator's graph).
    pub n: usize,
    /// Request-line byte limit (see [`max_line_bytes`]).
    pub max_line: usize,
    /// Per-connection idle read deadline; an exceeded deadline closes
    /// the connection with `ERR timeout`.
    pub read_timeout: Duration,
}

/// Summary of one TCP serve run, for the operator banner.
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    /// Connections accepted over the run.
    pub connections: u64,
    /// Reply lines written across all connections.
    pub replies: u64,
    /// The batch queue's drain report.
    pub drain: DrainReport,
}

/// Runs the TCP front end on an already-bound listener: accepts
/// connections until `max_conns` (when given) have been accepted or
/// `stop` flips, handles each on its own OS thread against the shared
/// [`BatchQueue`], then drains the queue and joins every handler.
///
/// The listener is polled in non-blocking mode so a `stop` request (or
/// the `max_conns` budget) takes effect without a wake-up connection.
/// Solve compute itself runs on the vendored rayon pool inside
/// `solve_block` — connection threads only parse, park, and reply.
pub fn serve_tcp(
    listener: TcpListener,
    queue: &Arc<BatchQueue>,
    dispatcher: super::batch::Dispatcher,
    stats: &Arc<ServeStats>,
    cfg: &ServeConfig,
    max_conns: Option<u64>,
    stop: &AtomicBool,
) -> Result<ServeSummary, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let replies = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut connections = 0u64;
    while !stop.load(Ordering::Relaxed) && max_conns.map_or(true, |m| connections < m) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connections += 1;
                hicond_obs::counter_add("serve/connections", 1);
                let queue = Arc::clone(queue);
                let stats = Arc::clone(stats);
                let replies = Arc::clone(&replies);
                let conn_cfg = ServeConfig {
                    n: cfg.n,
                    max_line: cfg.max_line,
                    read_timeout: cfg.read_timeout,
                };
                let spawned = std::thread::Builder::new()
                    .name(format!("serve-conn-{connections}"))
                    .spawn(move || {
                        let served = handle_connection(stream, &queue, &stats, &conn_cfg);
                        replies.fetch_add(served, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(h) => handlers.push(h),
                    Err(e) => return Err(format!("spawn connection handler: {e}")),
                }
                // Reap finished handlers so a long-running server does
                // not accumulate handles.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    // Connections first (their submits must all have landed), then the
    // queue drain: every admitted rhs is answered before we report.
    for h in handlers {
        let _ = h.join();
    }
    let drain = queue.shutdown();
    dispatcher.join();
    Ok(ServeSummary {
        connections,
        replies: replies.load(Ordering::Relaxed),
        drain,
    })
}

/// One connection's session loop: bounded reads, batched responds,
/// structured errors. Returns the number of reply lines written.
fn handle_connection(
    stream: TcpStream,
    queue: &Arc<BatchQueue>,
    stats: &Arc<ServeStats>,
    cfg: &ServeConfig,
) -> u64 {
    // A failed deadline set is a dead socket; the first read will
    // surface the real error.
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return 0,
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0u64;
    loop {
        let action = match read_bounded_line(&mut reader, cfg.max_line) {
            LineEvent::Line(line) => respond_batched(queue, cfg.n, &line, stats),
            LineEvent::Eof | LineEvent::Err(_) => break,
            LineEvent::TooLong { limit } => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                hicond_obs::counter_add("serve/bad_request", 1);
                Action::Reply(format!(
                    "ERR bad-length: request line exceeds {limit} bytes"
                ))
            }
            LineEvent::TimedOut => {
                // Structured goodbye, then close: an idle peer must not
                // pin a thread (or its batch-queue admission) forever.
                hicond_obs::counter_add("serve/idle_timeout", 1);
                let _ = write_reply(
                    &mut writer,
                    &format!(
                        "ERR timeout: idle for {:.0}s, closing connection",
                        cfg.read_timeout.as_secs_f64()
                    ),
                );
                break;
            }
        };
        match action {
            Action::Reply(reply) => {
                if write_reply(&mut writer, &reply).is_err() {
                    break; // peer went away; nothing left to do
                }
                served += 1;
            }
            Action::Ignore => {}
            Action::Quit => break,
        }
    }
    served
}

fn write_reply(w: &mut impl Write, reply: &str) -> std::io::Result<()> {
    w.write_all(reply.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and returns
/// the listener with its resolved local address.
pub fn bind(addr: &str) -> Result<(TcpListener, SocketAddr), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    Ok((listener, local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_round_trips_normal_lines() {
        let mut r = Cursor::new(b"hello\nworld\r\n\nlast".to_vec());
        assert_eq!(
            read_bounded_line(&mut r, 64),
            LineEvent::Line("hello".into())
        );
        assert_eq!(
            read_bounded_line(&mut r, 64),
            LineEvent::Line("world".into())
        );
        assert_eq!(
            read_bounded_line(&mut r, 64),
            LineEvent::Line(String::new())
        );
        assert_eq!(
            read_bounded_line(&mut r, 64),
            LineEvent::Line("last".into())
        );
        assert_eq!(read_bounded_line(&mut r, 64), LineEvent::Eof);
    }

    #[test]
    fn oversized_line_is_dropped_and_stream_resyncs() {
        let mut data = vec![b'x'; 1000];
        data.push(b'\n');
        data.extend_from_slice(b"ok-line\n");
        let mut r = Cursor::new(data);
        assert_eq!(
            read_bounded_line(&mut r, 100),
            LineEvent::TooLong { limit: 100 }
        );
        assert_eq!(
            read_bounded_line(&mut r, 100),
            LineEvent::Line("ok-line".into()),
            "the reader resynchronizes at the newline"
        );
    }

    #[test]
    fn unterminated_flood_reports_too_long_at_eof() {
        let mut r = Cursor::new(vec![b'9'; 100_000]);
        assert_eq!(
            read_bounded_line(&mut r, 256),
            LineEvent::TooLong { limit: 256 }
        );
        assert_eq!(read_bounded_line(&mut r, 256), LineEvent::Eof);
    }

    #[test]
    fn exact_limit_line_is_accepted() {
        let mut data = vec![b'a'; 8];
        data.push(b'\n');
        let mut r = Cursor::new(data);
        assert_eq!(
            read_bounded_line(&mut r, 8),
            LineEvent::Line("aaaaaaaa".into())
        );
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let mut r = Cursor::new(b"\xff\xfe\xfd\n".to_vec());
        match read_bounded_line(&mut r, 64) {
            LineEvent::Line(s) => assert!(!s.is_empty(), "lossy decode keeps placeholders"),
            other => panic!("expected a line, got {other:?}"),
        }
    }

    #[test]
    fn max_line_bytes_scales_with_dimension() {
        assert!(max_line_bytes(1000) >= 32 * 1000);
        assert!(max_line_bytes(0) >= 16);
    }
}
