//! Request coalescing for the concurrent serve front end: a bounded
//! queue of parsed right-hand sides plus one dispatcher thread that
//! folds whatever is pending into a single block solve
//! ([`hicond_precond::LaplacianSolver::solve_block`]).
//!
//! ## Dispatch policy
//!
//! A batch closes on whichever trigger fires first:
//!
//! - **size** — `HICOND_SERVE_BATCH` right-hand sides are pending
//!   (default 8), or
//! - **time** — `HICOND_SERVE_BATCH_WINDOW_MS` elapsed since the
//!   dispatcher first saw the oldest pending request (default 2 ms), so
//!   a lone client never waits longer than one window.
//!
//! Admission control is a hard cap, not a queue: when
//! `HICOND_SERVE_MAX_INFLIGHT` right-hand sides are already pending or
//! inside a block solve (default 4× the batch size), [`BatchQueue::submit`]
//! refuses with [`SubmitError::Busy`] and the connection replies a
//! structured `ERR busy` — bounded memory under any client behavior.
//!
//! ## Tracing through the block
//!
//! Each request keeps its own trace id across the shared solve: the
//! dispatcher mints one *batch* trace, emits a `batch_join` flight event
//! under every member's request trace pointing at the batch trace (and
//! the member's slot), then runs the block solve under the batch trace.
//! A `metrics` scrape can therefore reassemble per-request timelines:
//! request events under the request trace, shared solve spans under the
//! batch trace, joined by the `batch_join` edges.
//!
//! ## Shutdown
//!
//! [`BatchQueue::shutdown`] flips the queue into drain mode: new submits
//! are refused, everything already admitted is still solved and
//! answered, and the final [`DrainReport`] says how deep the queue was
//! when the drain began.

use super::ServeStats;
use hicond_precond::{LaplacianSolver, Solution, SolveError};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Dispatch-policy knobs, normally read from the environment once at
/// startup ([`BatchConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Maximum right-hand sides folded into one block solve
    /// (`HICOND_SERVE_BATCH`, default 8, minimum 1).
    pub max_batch: usize,
    /// How long the dispatcher holds an underfull batch open waiting
    /// for company (`HICOND_SERVE_BATCH_WINDOW_MS`, default 2 ms).
    pub window: Duration,
    /// Admission cap across queued + solving right-hand sides
    /// (`HICOND_SERVE_MAX_INFLIGHT`, default `4 * max_batch`).
    pub max_inflight: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        let max_batch = 8;
        BatchConfig {
            max_batch,
            window: Duration::from_millis(2),
            max_inflight: 4 * max_batch,
        }
    }
}

impl BatchConfig {
    /// Reads the three knobs from the environment, failing fast (like
    /// `rayon::pool::validate_env`) on set-but-garbled values: an
    /// operator typo must be a startup error, never a silent default.
    pub fn from_env() -> Result<Self, String> {
        let mut cfg = BatchConfig::default();
        if let Some(v) = read_env_usize("HICOND_SERVE_BATCH", 1)? {
            cfg.max_batch = v;
            cfg.max_inflight = 4 * v;
        }
        if let Some(v) = read_env_usize("HICOND_SERVE_BATCH_WINDOW_MS", 0)? {
            cfg.window = Duration::from_millis(v as u64);
        }
        if let Some(v) = read_env_usize("HICOND_SERVE_MAX_INFLIGHT", 1)? {
            cfg.max_inflight = v;
        }
        if cfg.max_inflight < cfg.max_batch {
            return Err(format!(
                "HICOND_SERVE_MAX_INFLIGHT ({}) must be at least HICOND_SERVE_BATCH ({})",
                cfg.max_inflight, cfg.max_batch
            ));
        }
        Ok(cfg)
    }
}

fn read_env_usize(name: &str, min: usize) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) if v >= min => Ok(Some(v)),
            Ok(v) => Err(format!("{name}={v} is below the minimum of {min}")),
            Err(_) => Err(format!("{name}={raw:?} is not a non-negative integer")),
        },
        Err(_) => Ok(None),
    }
}

/// Why [`BatchQueue::submit`] refused a right-hand side.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: `depth` right-hand sides are already pending
    /// or solving against a cap of `limit`.
    Busy { depth: usize, limit: usize },
    /// The queue is draining; no new work is admitted.
    ShuttingDown,
}

/// What [`BatchQueue::shutdown`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Queue depth (pending, not yet solving) when the drain began.
    pub queued_at_shutdown: usize,
    /// Right-hand sides answered over the queue's whole lifetime.
    pub completed: u64,
}

/// One admitted solve request parked on the queue.
struct Pending {
    rhs: Vec<f64>,
    /// The request's own flight-recorder trace id (survives batching).
    trace: u64,
    tx: mpsc::SyncSender<Result<Solution, SolveError>>,
}

struct QueueState {
    pending: VecDeque<Pending>,
    /// Right-hand sides checked out by the dispatcher, not yet answered.
    solving: usize,
    shutdown: bool,
    completed: u64,
}

/// The shared coalescing queue. Connections [`submit`](BatchQueue::submit)
/// parsed right-hand sides; the dispatcher thread (started by
/// [`BatchQueue::start`]) forms batches and answers through per-request
/// channels. Plain `Mutex` + `Condvar`: the queue is a control-plane
/// structure — the data plane (the block solve) runs outside the lock.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived or shutdown was requested.
    work: Condvar,
    cfg: BatchConfig,
}

/// Recovers the guard from a poisoned queue lock: the state is a plain
/// collection with no invariant a panicking dispatcher could half-apply
/// (drain pops are single calls), so continuing is sound and keeps the
/// serve surface panic-free.
fn lock_state<'a>(m: &'a Mutex<QueueState>) -> MutexGuard<'a, QueueState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl BatchQueue {
    /// Creates an idle queue; call [`start`](BatchQueue::start) to spawn
    /// the dispatcher that actually solves.
    pub fn new(cfg: BatchConfig) -> Arc<BatchQueue> {
        Arc::new(BatchQueue {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                solving: 0,
                shutdown: false,
                completed: 0,
            }),
            work: Condvar::new(),
            cfg,
        })
    }

    /// The dispatch policy this queue was built with.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Spawns the dispatcher thread. Returns a handle whose
    /// [`Dispatcher::join`] blocks until [`shutdown`](BatchQueue::shutdown)
    /// has been called and the drain finished.
    pub fn start(
        self: &Arc<BatchQueue>,
        solver: Arc<LaplacianSolver>,
        stats: Arc<ServeStats>,
    ) -> Dispatcher {
        let queue = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("serve-batch-dispatcher".into())
            .spawn(move || queue.dispatch_loop(&solver, &stats));
        Dispatcher {
            handle: handle.ok(),
        }
    }

    /// Admits one parsed right-hand side, returning the channel its
    /// solution will arrive on, or a structured refusal. Never blocks
    /// beyond the mutex.
    pub fn submit(
        &self,
        rhs: Vec<f64>,
        trace: u64,
    ) -> Result<mpsc::Receiver<Result<Solution, SolveError>>, SubmitError> {
        let mut st = lock_state(&self.state);
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let depth = st.pending.len() + st.solving;
        if depth >= self.cfg.max_inflight {
            return Err(SubmitError::Busy {
                depth,
                limit: self.cfg.max_inflight,
            });
        }
        // Rendezvous-with-buffer-1: the dispatcher's send never blocks,
        // even if the submitting connection died before receiving.
        let (tx, rx) = mpsc::sync_channel(1);
        st.pending.push_back(Pending { rhs, trace, tx });
        self.work.notify_one();
        Ok(rx)
    }

    /// Current queue depth (pending + solving); used by shed messages
    /// and the drain report.
    pub fn depth(&self) -> usize {
        let st = lock_state(&self.state);
        st.pending.len() + st.solving
    }

    /// Flips the queue into drain mode and reports the depth at that
    /// instant. Admitted requests are still solved and answered; the
    /// dispatcher exits once the queue is empty (wait on
    /// [`Dispatcher::join`] for that). Idempotent.
    pub fn shutdown(&self) -> DrainReport {
        let mut st = lock_state(&self.state);
        st.shutdown = true;
        let report = DrainReport {
            queued_at_shutdown: st.pending.len(),
            completed: st.completed,
        };
        self.work.notify_one();
        report
    }

    /// Dispatcher body: collect → solve → answer, until shutdown drains
    /// the queue dry.
    fn dispatch_loop(&self, solver: &LaplacianSolver, stats: &ServeStats) {
        loop {
            let batch = match self.collect_batch(stats) {
                Some(batch) => batch,
                None => return, // shutdown and nothing left to drain
            };
            let k = batch.len();
            self.solve_batch(batch, solver, stats);
            let mut st = lock_state(&self.state);
            st.solving -= k;
            st.completed += k as u64;
            stats.set_queue_gauges(st.pending.len() as u64, st.solving as u64);
        }
    }

    /// Blocks until a batch is ready per the size/time triggers (or the
    /// queue is shut down and drained). Checked-out requests are counted
    /// in `solving` until `dispatch_loop` returns them.
    fn collect_batch(&self, stats: &ServeStats) -> Option<Vec<Pending>> {
        let mut st = lock_state(&self.state);
        // Phase 1: wait for any work at all.
        while st.pending.is_empty() {
            if st.shutdown {
                return None;
            }
            st = match self.work.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        // Phase 2: hold the batch open for the time window unless the
        // size trigger (or shutdown, which drains immediately) fires
        // first. The window measures from when the dispatcher saw the
        // batch's first member — one lone request waits at most one
        // window.
        //
        // audit: allow(instant-now) — dispatch-deadline bookkeeping;
        // wall time never reaches the solver numerics.
        let deadline = Instant::now() + self.cfg.window;
        while st.pending.len() < self.cfg.max_batch && !st.shutdown {
            // audit: allow(instant-now) — see the deadline note above.
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _timeout) = match self.work.wait_timeout(st, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            st = guard;
        }
        let k = st.pending.len().min(self.cfg.max_batch);
        let batch: Vec<Pending> = st.pending.drain(..k).collect();
        st.solving += k;
        stats.set_queue_gauges(st.pending.len() as u64, st.solving as u64);
        Some(batch)
    }

    /// Runs one block solve outside the lock and answers every member.
    fn solve_batch(&self, batch: Vec<Pending>, solver: &LaplacianSolver, stats: &ServeStats) {
        let k = batch.len() as u64;
        stats.record_batch(k);
        hicond_obs::counter_add("serve/batches", 1);
        // One trace for the shared solve; every member's own trace gets
        // a `batch_join` edge pointing at it (and the member's slot), so
        // scrapes can walk request → batch → solve spans.
        let batch_trace = hicond_obs::next_trace_id();
        for (slot, p) in batch.iter().enumerate() {
            let _member = hicond_obs::trace_scope(p.trace);
            hicond_obs::flight::event_named(
                hicond_obs::flight::EventKind::BatchJoin,
                "serve/batch_join",
                batch_trace,
                slot as u64,
            );
        }
        let _trace = hicond_obs::trace_scope(batch_trace);
        hicond_obs::flight::event_named(
            hicond_obs::flight::EventKind::BatchOpen,
            "serve/batch",
            k,
            0,
        );
        let mut rhss: Vec<Vec<f64>> = Vec::with_capacity(batch.len());
        let mut txs = Vec::with_capacity(batch.len());
        for p in batch {
            rhss.push(p.rhs);
            txs.push(p.tx);
        }
        let results = solver.solve_block(&rhss);
        for (tx, res) in txs.into_iter().zip(results) {
            // A member whose connection died mid-solve has dropped its
            // receiver; that is its problem, not the batch's.
            let _ = tx.send(res);
        }
    }
}

/// Join handle for the dispatcher thread.
pub struct Dispatcher {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Dispatcher {
    /// Waits for the dispatcher to finish draining (call
    /// [`BatchQueue::shutdown`] first or this blocks forever).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_precond::SolverOptions;

    fn solver_and_rhs() -> (Arc<LaplacianSolver>, Vec<f64>) {
        let g = generators::path(8, |_| 1.0);
        let n = g.num_vertices();
        let solver = Arc::new(LaplacianSolver::new(&g, &SolverOptions::default()));
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0);
        (solver, b)
    }

    #[test]
    fn size_trigger_forms_one_batch_of_k() {
        let (solver, b) = solver_and_rhs();
        let stats = Arc::new(ServeStats::new());
        // Huge window: only the size trigger can close the batch, so the
        // coalescing below is deterministic, not timing-lucky.
        let cfg = BatchConfig {
            max_batch: 3,
            window: Duration::from_secs(600),
            max_inflight: 12,
        };
        let queue = BatchQueue::new(cfg);
        let dispatcher = queue.start(Arc::clone(&solver), Arc::clone(&stats));
        let rxs: Vec<_> = (0..3)
            .map(|i| queue.submit(b.clone(), 100 + i).expect("admitted"))
            .collect();
        for rx in rxs {
            let sol = rx.recv().expect("answered").expect("converged");
            let solo = solver.solve(&b).expect("solo converges");
            assert_eq!(
                sol.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                solo.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "batched member bitwise equals the solo solve"
            );
        }
        assert_eq!(stats.batch_size.count(), 1, "one batch formed");
        assert_eq!(
            stats
                .batch_size
                .quantile_interpolated(0.5)
                .map(|v| v.round()),
            Some(3.0),
            "the batch held all three members"
        );
        let report = queue.shutdown();
        dispatcher.join();
        assert_eq!(report.queued_at_shutdown, 0);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn window_trigger_answers_a_lone_request() {
        let (solver, b) = solver_and_rhs();
        let stats = Arc::new(ServeStats::new());
        let cfg = BatchConfig {
            max_batch: 8,
            window: Duration::from_millis(1),
            max_inflight: 32,
        };
        let queue = BatchQueue::new(cfg);
        let dispatcher = queue.start(solver, Arc::clone(&stats));
        let rx = queue.submit(b, 7).expect("admitted");
        let sol = rx.recv().expect("answered");
        assert!(sol.is_ok(), "lone request solved after the window");
        queue.shutdown();
        dispatcher.join();
    }

    #[test]
    fn admission_cap_sheds_with_busy() {
        let (_, b) = solver_and_rhs();
        let stats = Arc::new(ServeStats::new());
        let cfg = BatchConfig {
            max_batch: 2,
            window: Duration::from_secs(600),
            max_inflight: 2,
        };
        // No dispatcher: submissions pile up against the cap.
        let queue = BatchQueue::new(cfg);
        let _rx0 = queue.submit(b.clone(), 0).expect("first admitted");
        let _rx1 = queue.submit(b.clone(), 1).expect("second admitted");
        match queue.submit(b.clone(), 2) {
            Err(SubmitError::Busy { depth, limit }) => {
                assert_eq!((depth, limit), (2, 2));
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(queue.depth(), 2);
        let _ = stats;
    }

    #[test]
    fn shutdown_drains_admitted_work_and_refuses_new() {
        let (solver, b) = solver_and_rhs();
        let stats = Arc::new(ServeStats::new());
        let cfg = BatchConfig {
            max_batch: 2,
            window: Duration::from_secs(600),
            max_inflight: 8,
        };
        let queue = BatchQueue::new(cfg);
        // Submit BEFORE starting the dispatcher, then shut down: the
        // drain must still answer all three pending requests.
        let rxs: Vec<_> = (0..3)
            .map(|i| queue.submit(b.clone(), i).expect("admitted"))
            .collect();
        let report = queue.shutdown();
        assert_eq!(report.queued_at_shutdown, 3);
        match queue.submit(b.clone(), 9) {
            Err(SubmitError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|_| "rx")),
        }
        let dispatcher = queue.start(solver, stats);
        for rx in rxs {
            assert!(rx.recv().expect("drained").is_ok(), "drain answers");
        }
        dispatcher.join();
        assert_eq!(queue.depth(), 0, "drain left nothing behind");
    }

    #[test]
    fn batch_config_env_defaults_and_bounds() {
        let cfg = BatchConfig::default();
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.max_inflight, 32);
        assert!(read_env_usize("HICOND_NO_SUCH_VAR_XYZ", 1)
            .expect("unset is None")
            .is_none());
    }
}
