//! # hicond
//!
//! Graph partitioning into **isolated, high-conductance clusters**, with
//! applications to combinatorial preconditioning — a from-scratch Rust
//! implementation of Koutis & Miller (SPAA 2008).
//!
//! A `[φ, ρ]`-decomposition splits a weighted graph into vertex-disjoint
//! clusters such that every cluster's *closure graph* (induced subgraph
//! plus a pendant per boundary edge) has conductance at least `φ`, while
//! shrinking the vertex count by a factor `ρ`. Such decompositions yield
//! *Steiner preconditioners* with provably bounded support
//! (`σ(S_P, A) ≤ 3(1 + 2/φ³)`, Theorem 3.5) whose application is
//! embarrassingly parallel.
//!
//! ## Quick start
//!
//! ```
//! use hicond::prelude::*;
//!
//! // An "OCT-scan-like" weighted 3D grid (the paper's stress workload).
//! let g = generators::oct_like_grid3d(8, 8, 8, 7, generators::OctParams::default());
//!
//! // The Section 3.1 three-pass clustering: [1/(2d²k), 2] decomposition.
//! let p = decompose_fixed_degree(&g, &FixedDegreeOptions { k: 8, ..Default::default() });
//! assert!(p.reduction_factor() >= 2.0);
//!
//! // Solve a Laplacian system with the Steiner preconditioner.
//! let a = laplacian(&g);
//! let pre = SteinerPreconditioner::new(&g, &p, 2000);
//! let mut b: Vec<f64> = (0..g.num_vertices()).map(|i| (i % 10) as f64 - 4.5).collect();
//! hicond::linalg::vector::deflate_constant(&mut b);
//! let result = pcg_solve(&a, &pre, &b, &CgOptions::default());
//! assert!(result.converged);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`graph`] | weighted CSR graphs, conductance, closures, quotients, generators |
//! | [`linalg`] | CSR/dense kernels, CG/PCG, Lanczos, Schur complements, pencils |
//! | [`treecontract`] | list ranking, Euler tours, 3-critical vertices, bridges |
//! | [`core`] | the `[φ, ρ]` decompositions (Thms 2.1–2.3, Sec 3.1) and hierarchies |
//! | [`support`] | support theory: σ(A,B), splitting lemma, star complements |
//! | [`precond`] | Steiner + multilevel + subgraph preconditioners |
//! | [`spectral`] | normalized Laplacians, random walks, Theorem 4.1 portraits |
//! | [`artifact`] | binary persistence: versioned containers, CRC32, content-addressed cache |

pub mod serve;

pub use hicond_artifact as artifact;
pub use hicond_core as core;
pub use hicond_graph as graph;
pub use hicond_linalg as linalg;
pub use hicond_obs as obs;
pub use hicond_precond as precond;
pub use hicond_spectral as spectral;
pub use hicond_support as support;
pub use hicond_treecontract as treecontract;

/// One-stop imports for applications.
pub mod prelude {
    pub use hicond_core::{
        build_hierarchy, decompose_fixed_degree, decompose_forest, decompose_minor_free,
        decompose_planar, decompose_recursive_bisection, refine_gamma, sparsify_by_stretch,
        validate_phi_rho, FixedDegreeOptions, Hierarchy, HierarchyOptions, PlanarOptions,
        RecursiveBisectionOptions, RefineOptions, SpanningTreeKind, SparsifyOptions,
    };
    pub use hicond_graph::{generators, laplacian, Graph, Partition};
    pub use hicond_linalg::{
        cg_solve, pcg_solve, CgOptions, CsrMatrix, LinearOperator, Preconditioner,
    };
    pub use hicond_precond::{
        load_or_build, solver_cache_key, LaplacianSolver, MultilevelOptions, MultilevelSteiner,
        SolverOptions, SolverSource, SteinerPreconditioner, SubgraphOptions,
        SubgraphPreconditioner,
    };
    pub use hicond_spectral::{
        local_cluster, portrait_check, spectral_clustering, walk_mixture_clustering,
        LocalClusterOptions, SpectralClusteringOptions, WalkClusteringOptions,
    };
    pub use hicond_support::{condition_number_dense, support_dense};
}
