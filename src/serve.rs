//! The `hicond serve` request protocol: one request per line, one reply
//! per line, structured errors, bounded allocation.
//!
//! A serve session reads lines from an untrusted peer, so this module is
//! a declared entry point of the `xtask reach` panic-reachability pass
//! (see `REACHABILITY.md`): nothing here may panic or allocate
//! proportionally to anything but the solver dimension, no matter what
//! bytes arrive.
//!
//! ## Protocol
//!
//! - request: `n` whitespace-separated `f64` right-hand-side values,
//!   where `n` is the vertex count announced at startup
//! - success reply: `ok <iterations> <rel_residual> <x_0> … <x_{n-1}>`
//! - error reply: `ERR <code>: <detail>` — the session **stays alive**;
//!   codes are `bad-value` (unparseable or non-finite number),
//!   `bad-length` (wrong number of values), and `solve-failed` (the
//!   solver did not converge)
//! - `stats` replies with the session's request counters and solve-latency
//!   quantiles (`ok stats requests=… errors=… p50_us=… p95_us=… p99_us=…`)
//!   drawn from a log₂ latency histogram; the session keeps going
//! - `quit` or EOF ends the session; empty lines are ignored
//!
//! Malformed requests bump the `serve/bad_request` obs counter so a
//! fleet operator can see a misbehaving client without scraping replies.

use hicond_precond::LaplacianSolver;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-session serve statistics: request/error counts plus a log₂
/// histogram of solve latencies in microseconds.
///
/// Lives outside the global obs registry so the `stats` verb works even
/// when `HICOND_OBS` is off, and so concurrent sessions (if a caller ever
/// runs them) do not mix their numbers. All fields are atomics — recording
/// needs only `&self`.
#[derive(Debug, Default)]
pub struct ServeStats {
    latency_us: hicond_obs::Histogram,
    requests: AtomicU64,
    errors: AtomicU64,
}

impl ServeStats {
    /// Fresh all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of solve requests seen (excluding `stats`/`quit`/blank).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of requests answered with an `ERR` reply.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// One-line report for the `stats` verb. Quantiles are lower bucket
    /// bounds of the log₂ histogram (order-of-magnitude resolution, see
    /// `hicond_obs::Histogram::quantile`); `-` when nothing was recorded.
    fn report(&self) -> String {
        let q = |p: f64| match self.latency_us.quantile(p) {
            Some(v) => format!("{v:.0}"),
            None => "-".to_string(),
        };
        format!(
            "ok stats requests={} errors={} p50_us={} p95_us={} p99_us={}",
            self.requests(),
            self.errors(),
            q(0.50),
            q(0.95),
            q(0.99),
        )
    }
}

/// What the serve loop should do with one input line.
#[derive(Debug, PartialEq)]
pub enum Action {
    /// Write this reply line (either `ok …` or `ERR …`) and keep going.
    Reply(String),
    /// Blank input: write nothing, keep going.
    Ignore,
    /// `quit`: end the session cleanly.
    Quit,
}

/// Handles one request line against a ready solver. Infallible by
/// design: every malformed input becomes a structured `ERR` reply and
/// the connection survives. `n` is the solver dimension (trusted — it
/// comes from the operator's own graph, not from the peer); `stats`
/// accumulates this session's counters and latency histogram.
pub fn respond(solver: &LaplacianSolver, n: usize, line: &str, stats: &ServeStats) -> Action {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Action::Ignore;
    }
    if trimmed == "quit" {
        return Action::Quit;
    }
    if trimmed == "stats" {
        return Action::Reply(stats.report());
    }
    let _span = hicond_obs::span("serve_request");
    hicond_obs::counter_add("serve/requests", 1);
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let b = match parse_rhs(n, trimmed) {
        Ok(b) => b,
        Err(reply) => {
            hicond_obs::counter_add("serve/bad_request", 1);
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return Action::Reply(reply);
        }
    };
    // audit: allow(instant-now) — wall-clock latency measurement for the
    // stats report; the duration never feeds back into solver numerics.
    let t0 = std::time::Instant::now();
    // reach: trusted(b holds exactly n finite f64 values — parse_rhs
    // rejected everything else, so the solver numerics never see raw
    // peer input)
    let outcome = solver.solve(&b);
    let us = t0.elapsed().as_secs_f64() * 1e6;
    stats.latency_us.record(us);
    hicond_obs::hist_record("serve/latency_us", us);
    match outcome {
        Ok(sol) => {
            hicond_obs::hist_record("serve/iterations", sol.iterations as f64);
            let mut reply = format!("ok {} {:.3e}", sol.iterations, sol.rel_residual);
            for x in &sol.x {
                reply.push(' ');
                reply.push_str(&format!("{x:.17e}"));
            }
            Action::Reply(reply)
        }
        Err(e) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            Action::Reply(format!("ERR solve-failed: {e}"))
        }
    }
}

/// Parses the right-hand side, enforcing exactly `n` finite values. The
/// reply growth is bounded: the vector never exceeds `n` entries and the
/// capacity hint is clamped by the line length (a k-value request needs
/// at least 2k−1 bytes of input).
fn parse_rhs(n: usize, line: &str) -> Result<Vec<f64>, String> {
    let mut b: Vec<f64> = Vec::with_capacity(n.min(line.len()));
    for tok in line.split_whitespace() {
        if b.len() == n {
            return Err(format!("ERR bad-length: more than {n} rhs values"));
        }
        match tok.parse::<f64>() {
            Ok(v) if v.is_finite() => b.push(v),
            Ok(v) => return Err(format!("ERR bad-value: non-finite rhs value {v}")),
            Err(e) => {
                // Echo at most a prefix of the offending token: the line
                // is peer-controlled and may be arbitrarily long.
                let shown: String = tok.chars().take(20).collect();
                return Err(format!("ERR bad-value: `{shown}`: {e}"));
            }
        }
    }
    if b.len() != n {
        return Err(format!(
            "ERR bad-length: rhs has {} values, expected {n}",
            b.len()
        ));
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_precond::SolverOptions;

    fn tiny_solver() -> (LaplacianSolver, usize) {
        let g = generators::path(8, |_| 1.0);
        let n = g.num_vertices();
        (LaplacianSolver::new(&g, &SolverOptions::default()), n)
    }

    #[test]
    fn well_formed_request_gets_ok_reply() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0); // orthogonal to the constant vector
        let line: Vec<String> = b.iter().map(|v| v.to_string()).collect();
        match respond(&solver, n, &line.join(" "), &stats) {
            Action::Reply(r) => assert!(r.starts_with("ok "), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(stats.requests(), 1);
        assert_eq!(stats.errors(), 0);
    }

    #[test]
    fn quit_and_blank_lines() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        assert_eq!(respond(&solver, n, "  quit  ", &stats), Action::Quit);
        assert_eq!(respond(&solver, n, "   ", &stats), Action::Ignore);
        assert_eq!(stats.requests(), 0, "meta lines are not solve requests");
    }

    #[test]
    fn wrong_length_is_structured_error() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        match respond(&solver, n, "1 2 3", &stats) {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn excess_values_rejected_before_materializing() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        let line = vec!["1"; n + 100].join(" ");
        match respond(&solver, n, &line, &stats) {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_non_finite_values_rejected() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        for bad in [
            "1 2 pancake",
            "NaN 1 2",
            "inf 0 0",
            &format!("{}", "9".repeat(400)),
        ] {
            match respond(&solver, n, bad, &stats) {
                Action::Reply(r) => {
                    assert!(r.starts_with("ERR bad-"), "input {bad:.40}: reply {r}");
                    assert!(r.len() < 120, "reply echoes too much input: {r}");
                }
                other => panic!("expected reply, got {other:?}"),
            }
        }
        assert_eq!(stats.errors(), 4);
    }

    #[test]
    fn stats_verb_reports_counts_and_latency_quantiles() {
        let (solver, n) = tiny_solver();
        let stats = ServeStats::new();
        // Empty session: counts are zero, quantiles are dashes.
        match respond(&solver, n, "stats", &stats) {
            Action::Reply(r) => {
                assert_eq!(r, "ok stats requests=0 errors=0 p50_us=- p95_us=- p99_us=-");
            }
            other => panic!("expected reply, got {other:?}"),
        }
        // One good solve and one error, then stats reflects both and the
        // latency histogram has data.
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0);
        let line: Vec<String> = b.iter().map(|v| v.to_string()).collect();
        respond(&solver, n, &line.join(" "), &stats);
        respond(&solver, n, "garbage", &stats);
        match respond(&solver, n, "stats", &stats) {
            Action::Reply(r) => {
                assert!(r.starts_with("ok stats requests=2 errors=1 "), "reply: {r}");
                assert!(!r.contains("p50_us=-"), "latency recorded: {r}");
                for key in ["p50_us=", "p95_us=", "p99_us="] {
                    assert!(r.contains(key), "missing {key} in {r}");
                }
            }
            other => panic!("expected reply, got {other:?}"),
        }
        // The stats verb itself never counts as a request.
        assert_eq!(stats.requests(), 2);
    }
}
