//! The `hicond serve` request protocol: one request per line, one reply
//! per line, structured errors, bounded allocation.
//!
//! A serve session reads lines from an untrusted peer, so this module is
//! a declared entry point of the `xtask reach` panic-reachability pass
//! (see `REACHABILITY.md`): nothing here may panic or allocate
//! proportionally to anything but the solver dimension, no matter what
//! bytes arrive.
//!
//! ## Protocol
//!
//! - request: `n` whitespace-separated `f64` right-hand-side values,
//!   where `n` is the vertex count announced at startup
//! - success reply: `ok <iterations> <rel_residual> <x_0> … <x_{n-1}>`
//! - error reply: `ERR <code>: <detail>` — the session **stays alive**;
//!   codes are `bad-value` (unparseable or non-finite number),
//!   `bad-length` (wrong number of values), and `solve-failed` (the
//!   solver did not converge)
//! - `quit` or EOF ends the session; empty lines are ignored
//!
//! Malformed requests bump the `serve/bad_request` obs counter so a
//! fleet operator can see a misbehaving client without scraping replies.

use hicond_precond::LaplacianSolver;

/// What the serve loop should do with one input line.
#[derive(Debug, PartialEq)]
pub enum Action {
    /// Write this reply line (either `ok …` or `ERR …`) and keep going.
    Reply(String),
    /// Blank input: write nothing, keep going.
    Ignore,
    /// `quit`: end the session cleanly.
    Quit,
}

/// Handles one request line against a ready solver. Infallible by
/// design: every malformed input becomes a structured `ERR` reply and
/// the connection survives. `n` is the solver dimension (trusted — it
/// comes from the operator's own graph, not from the peer).
pub fn respond(solver: &LaplacianSolver, n: usize, line: &str) -> Action {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Action::Ignore;
    }
    if trimmed == "quit" {
        return Action::Quit;
    }
    let _span = hicond_obs::span("serve_request");
    hicond_obs::counter_add("serve/requests", 1);
    let b = match parse_rhs(n, trimmed) {
        Ok(b) => b,
        Err(reply) => {
            hicond_obs::counter_add("serve/bad_request", 1);
            return Action::Reply(reply);
        }
    };
    // reach: trusted(b holds exactly n finite f64 values — parse_rhs
    // rejected everything else, so the solver numerics never see raw
    // peer input)
    match solver.solve(&b) {
        Ok(sol) => {
            hicond_obs::hist_record("serve/iterations", sol.iterations as f64);
            let mut reply = format!("ok {} {:.3e}", sol.iterations, sol.rel_residual);
            for x in &sol.x {
                reply.push(' ');
                reply.push_str(&format!("{x:.17e}"));
            }
            Action::Reply(reply)
        }
        Err(e) => Action::Reply(format!("ERR solve-failed: {e}")),
    }
}

/// Parses the right-hand side, enforcing exactly `n` finite values. The
/// reply growth is bounded: the vector never exceeds `n` entries and the
/// capacity hint is clamped by the line length (a k-value request needs
/// at least 2k−1 bytes of input).
fn parse_rhs(n: usize, line: &str) -> Result<Vec<f64>, String> {
    let mut b: Vec<f64> = Vec::with_capacity(n.min(line.len()));
    for tok in line.split_whitespace() {
        if b.len() == n {
            return Err(format!("ERR bad-length: more than {n} rhs values"));
        }
        match tok.parse::<f64>() {
            Ok(v) if v.is_finite() => b.push(v),
            Ok(v) => return Err(format!("ERR bad-value: non-finite rhs value {v}")),
            Err(e) => {
                // Echo at most a prefix of the offending token: the line
                // is peer-controlled and may be arbitrarily long.
                let shown: String = tok.chars().take(20).collect();
                return Err(format!("ERR bad-value: `{shown}`: {e}"));
            }
        }
    }
    if b.len() != n {
        return Err(format!(
            "ERR bad-length: rhs has {} values, expected {n}",
            b.len()
        ));
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_precond::SolverOptions;

    fn tiny_solver() -> (LaplacianSolver, usize) {
        let g = generators::path(8, |_| 1.0);
        let n = g.num_vertices();
        (LaplacianSolver::new(&g, &SolverOptions::default()), n)
    }

    #[test]
    fn well_formed_request_gets_ok_reply() {
        let (solver, n) = tiny_solver();
        let mut b = vec![1.0; n];
        b[0] = -(n as f64 - 1.0); // orthogonal to the constant vector
        let line: Vec<String> = b.iter().map(|v| v.to_string()).collect();
        match respond(&solver, n, &line.join(" ")) {
            Action::Reply(r) => assert!(r.starts_with("ok "), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn quit_and_blank_lines() {
        let (solver, n) = tiny_solver();
        assert_eq!(respond(&solver, n, "  quit  "), Action::Quit);
        assert_eq!(respond(&solver, n, "   "), Action::Ignore);
    }

    #[test]
    fn wrong_length_is_structured_error() {
        let (solver, n) = tiny_solver();
        match respond(&solver, n, "1 2 3") {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn excess_values_rejected_before_materializing() {
        let (solver, n) = tiny_solver();
        let line = vec!["1"; n + 100].join(" ");
        match respond(&solver, n, &line) {
            Action::Reply(r) => assert!(r.starts_with("ERR bad-length:"), "reply: {r}"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn garbage_and_non_finite_values_rejected() {
        let (solver, n) = tiny_solver();
        for bad in [
            "1 2 pancake",
            "NaN 1 2",
            "inf 0 0",
            &format!("{}", "9".repeat(400)),
        ] {
            match respond(&solver, n, bad) {
                Action::Reply(r) => {
                    assert!(r.starts_with("ERR bad-"), "input {bad:.40}: reply {r}");
                    assert!(r.len() < 120, "reply echoes too much input: {r}");
                }
                other => panic!("expected reply, got {other:?}"),
            }
        }
    }
}
