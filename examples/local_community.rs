//! Local community detection via truncated random walks — the paper's
//! introduction motivates (φ, γ) decompositions with web clustering, and
//! Section 4 opens with the "trapped particle" intuition this example
//! makes concrete on a social-like preferential-attachment graph with
//! planted communities.
//!
//! ```text
//! cargo run --release --example local_community
//! ```

use hicond::graph::{generators, Graph, GraphBuilder};
use hicond::spectral::{local_cluster, LocalClusterOptions};

/// Three Barabási–Albert communities joined by a handful of weak ties.
fn social_graph(seed: u64) -> (Graph, Vec<usize>) {
    let communities = 3usize;
    let size = 120usize;
    let mut b = GraphBuilder::new(communities * size);
    let mut boundaries = Vec::new();
    for c in 0..communities {
        let g = generators::barabasi_albert(size, 3, seed + c as u64);
        for e in g.edges() {
            b.add_edge(c * size + e.u as usize, c * size + e.v as usize, e.w);
        }
        boundaries.push(c * size);
    }
    // Weak inter-community ties.
    for c in 0..communities {
        for t in 0..4 {
            let u = c * size + t * 17 % size;
            let v = ((c + 1) % communities) * size + (t * 31 + 5) % size;
            b.add_edge(u, v, 0.05);
        }
    }
    (b.build(), boundaries)
}

fn main() {
    let (g, starts) = social_graph(42);
    println!(
        "social-like graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    for (c, &start) in starts.iter().enumerate() {
        let seed = start + 7; // an arbitrary member of community c
        let cluster = local_cluster(
            &g,
            seed,
            &LocalClusterOptions {
                steps: 15,
                truncate_eps: 1e-6,
                max_vol_fraction: 0.4,
            },
        );
        let inside = cluster.vertices.iter().filter(|&&v| v / 120 == c).count();
        println!(
            "seed {seed} (community {c}): found {} vertices, {:.1}% in the right community, \
             conductance {:.4}, walk touched {} vertices",
            cluster.vertices.len(),
            100.0 * inside as f64 / cluster.vertices.len() as f64,
            cluster.conductance,
            cluster.support_size
        );
        assert!(inside * 10 >= cluster.vertices.len() * 9, "poor recovery");
    }
    println!("\nEach community was recovered exactly from a single seed by a short");
    println!("truncated walk — the 'trapped particle' picture of the paper's Section 4.");
}
