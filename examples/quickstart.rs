//! Quick start: decompose a weighted grid into high-conductance clusters
//! and solve a Laplacian system with the resulting Steiner preconditioner.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hicond::prelude::*;

fn main() {
    // A 2D grid with mildly varying weights.
    let g = generators::grid2d(40, 40, |u, v| 1.0 + ((u * 7 + v * 13) % 10) as f64 * 0.3);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // Section 3.1 clustering: three embarrassingly parallel passes.
    let p = decompose_fixed_degree(
        &g,
        &FixedDegreeOptions {
            k: 8,
            ..Default::default()
        },
    );
    let q = p.quality(&g, 20);
    println!(
        "decomposition: {} clusters, rho = {:.2}, phi >= {:.4} (exact: {}), gamma = {:.3}",
        p.num_clusters(),
        q.rho,
        q.phi,
        q.phi_exact,
        q.gamma
    );

    // Solve A x = b with the Steiner preconditioner vs plain CG.
    let a = laplacian(&g);
    let n = g.num_vertices();
    let mut b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    hicond::linalg::vector::deflate_constant(&mut b);

    let plain = cg_solve(&a, &b, &CgOptions::default());
    let pre = SteinerPreconditioner::new(&g, &p, 2000);
    let fast = pcg_solve(&a, &pre, &b, &CgOptions::default());

    println!(
        "plain CG:   {} iterations (rel residual {:.2e})",
        plain.iterations, plain.final_rel_residual
    );
    println!(
        "Steiner PCG: {} iterations (rel residual {:.2e}, {} Steiner vertices)",
        fast.iterations,
        fast.final_rel_residual,
        pre.num_steiner_vertices()
    );
    assert!(fast.converged);
}
