//! Spectral clustering seeded by the Section 4 portrait — the paper's
//! anticipated application to computing (φ, γ) decompositions of general
//! graphs.
//!
//! Generates a noisy planted-community graph, recovers the communities by
//! [`spectral_clustering`], and reports the quality of the recovered
//! decomposition against the planted one.
//!
//! ```text
//! cargo run --release --example walk_clustering
//! ```

use hicond::graph::Graph;
use hicond::prelude::*;
use rand::{Rng, SeedableRng};

fn noisy_blocks(k: usize, size: usize, p_in: f64, p_out: f64, seed: u64) -> (Graph, Vec<u32>) {
    let n = k * size;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let same = i / size == j / size;
            let p = if same { p_in } else { p_out };
            if rng.random::<f64>() < p {
                edges.push((i, j, 1.0));
            }
        }
    }
    let truth: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
    (Graph::from_edges(n, &edges), truth)
}

fn main() {
    let (g, truth) = noisy_blocks(3, 30, 0.5, 0.01, 11);
    println!(
        "noisy planted graph: {} vertices, {} edges, 3 communities",
        g.num_vertices(),
        g.num_edges()
    );

    let p = spectral_clustering(
        &g,
        &SpectralClusteringOptions {
            k: 3,
            ..Default::default()
        },
    );

    // Confusion summary.
    let mut confusion = [[0usize; 3]; 3];
    for v in 0..g.num_vertices() {
        confusion[truth[v] as usize][p.cluster_of(v)] += 1;
    }
    println!("confusion matrix (rows = truth, cols = recovered):");
    for row in confusion {
        println!("  {row:?}");
    }

    let q = p.quality(&g, 16);
    println!(
        "recovered decomposition: phi >= {:.3} (exact: {}), gamma = {:.3}, cut fraction = {:.3}",
        q.phi, q.phi_exact, q.gamma, q.cut_fraction
    );

    // A good recovery has low cut fraction and positive gamma.
    assert!(q.cut_fraction < 0.2, "clustering failed to isolate blocks");
}
