//! The paper's motivating application (Section 3.2): solving Laplacians of
//! 3D medical-scan-like grids "exhibiting large edge weight variations both
//! at a global and a local scale (due to noise)".
//!
//! Compares plain CG, the subgraph preconditioner, the two-level Steiner
//! preconditioner, and the multilevel Steiner hierarchy on a synthetic OCT
//! volume, printing iteration counts and timings.
//!
//! ```text
//! cargo run --release --example oct_scan_solver [side]
//! ```

use hicond::prelude::*;
use std::time::Instant;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let g = generators::oct_like_grid3d(side, side, side, 42, generators::OctParams::default());
    let n = g.num_vertices();
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for e in g.edges() {
        lo = lo.min(e.w);
        hi = hi.max(e.w);
    }
    println!(
        "OCT-like volume {side}³: {n} vertices, {} edges, weight dynamic range {:.1e}",
        g.num_edges(),
        hi / lo
    );

    let a = laplacian(&g);
    let mut b: Vec<f64> = (0..n).map(|i| ((i * 31 % 101) as f64) - 50.0).collect();
    hicond::linalg::vector::deflate_constant(&mut b);
    let opts = CgOptions {
        rel_tol: 1e-8,
        max_iter: 20_000,
        record_residuals: false,
    };

    let t = Instant::now();
    let plain = cg_solve(&a, &b, &opts);
    println!(
        "plain CG          : {:>6} iterations, {:>8.1} ms (converged: {})",
        plain.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        plain.converged
    );

    let t = Instant::now();
    let sub = SubgraphPreconditioner::new(&g, &SubgraphOptions::default());
    let setup_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let r = pcg_solve(&a, &sub, &b, &opts);
    println!(
        "subgraph PCG      : {:>6} iterations, {:>8.1} ms (+{:.1} ms setup, core {})",
        r.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        setup_ms,
        sub.core_size
    );

    let t = Instant::now();
    let p = decompose_fixed_degree(
        &g,
        &FixedDegreeOptions {
            k: 8,
            ..Default::default()
        },
    );
    let ml = MultilevelSteiner::new(&g, &MultilevelOptions::default());
    let setup_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let r = pcg_solve(&a, &ml, &b, &opts);
    println!(
        "multilevel Steiner: {:>6} iterations, {:>8.1} ms (+{:.1} ms setup, {} levels, rho/level {:.2})",
        r.iterations,
        t.elapsed().as_secs_f64() * 1e3,
        setup_ms,
        ml.num_levels(),
        p.reduction_factor()
    );
    assert!(r.converged, "multilevel Steiner PCG must converge");
}
