//! Planar mesh partitioning (Theorem 2.2): decompose a triangulated mesh
//! into isolated high-conductance clusters and report the structure of the
//! decomposition, including the spanning-subgraph core and measured
//! support σ(A, B).
//!
//! ```text
//! cargo run --release --example mesh_partition [side]
//! ```

use hicond::core::PlanarDecomposition;
use hicond::prelude::*;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let g = generators::triangulated_grid(side, side, 7);
    println!(
        "triangulated mesh {side}×{side}: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let d: PlanarDecomposition = decompose_planar(
        &g,
        &PlanarOptions {
            tree: SpanningTreeKind::MaxWeight,
            extra_fraction: 0.05,
            seed: 7,
            measure_support: true,
        },
    );
    let p = &d.partition;
    let q = p.quality(&g, 18);
    println!(
        "spanning subgraph B: +{} extra edges, pruned core |W| = {}",
        d.extra_edges, d.core_size
    );
    if let Some(k) = d.support_estimate {
        println!("measured support k = σ(A,B) = {k:.2} (φ_A ≥ φ_B / k)");
    }
    println!(
        "decomposition: {} clusters, rho = {:.2}, phi >= {:.4}, cut fraction = {:.3}",
        p.num_clusters(),
        q.rho,
        q.phi,
        q.cut_fraction
    );

    // Cluster size histogram.
    let mut hist = std::collections::BTreeMap::new();
    for c in p.clusters() {
        *hist.entry(c.len()).or_insert(0usize) += 1;
    }
    println!("cluster size histogram:");
    for (size, count) in hist {
        println!("  size {size:>3}: {count:>6} clusters");
    }

    // Second level: contract and decompose again (Remark 3's recursion).
    let q2 = p.quotient_graph(&g);
    let d2 = decompose_planar(&q2, &PlanarOptions::default());
    println!(
        "level 2: {} -> {} clusters (rho = {:.2})",
        q2.num_vertices(),
        d2.partition.num_clusters(),
        d2.partition.reduction_factor()
    );
}
