//! Artifact store walkthrough: build a preconditioner, persist it in the
//! content-addressed cache, reload it, and show that the loaded solver
//! replays the exact PCG trajectory of the built one.
//!
//! Run with `cargo run --release --example artifact_cache`.

use hicond::artifact::Cache;
use hicond::graph::generators;
use hicond::precond::{load_or_build, solver_cache_key, SolverOptions, SolverSource};
use std::time::Instant;

fn main() {
    let g = generators::grid2d(96, 96, |u, v| 1.0 + ((u * 7 + v * 13) % 5) as f64);
    let opts = SolverOptions::default();
    let cache = Cache::at(std::env::temp_dir().join("hicond-example-cache"));
    println!("cache dir : {}", cache.dir().display());
    println!("cache key : {:016x}", solver_cache_key(&g, &opts));

    // First call: miss → build → publish.
    let t = Instant::now();
    let (first, src1) = load_or_build(&cache, &g, &opts).expect("build");
    println!("first call : {src1:?} in {:?}", t.elapsed());

    // Second call: hit → checksum-verify → decode.
    let t = Instant::now();
    let (second, src2) = load_or_build(&cache, &g, &opts).expect("load");
    println!("second call: {src2:?} in {:?}", t.elapsed());
    assert_eq!(src1, SolverSource::Built);
    assert_eq!(src2, SolverSource::Loaded);

    // Bitwise-identical residual trajectories.
    let n = g.num_vertices();
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    let (s1, t1) = first.solve_recording(&b).expect("solve");
    let (s2, t2) = second.solve_recording(&b).expect("solve");
    assert_eq!(s1.iterations, s2.iterations);
    assert!(t1.iter().zip(&t2).all(|(a, c)| a.to_bits() == c.to_bits()));
    println!(
        "both solvers: {} PCG iterations, trajectories bitwise identical",
        s1.iterations
    );

    let _ = std::fs::remove_dir_all(cache.dir());
}
