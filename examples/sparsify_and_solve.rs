//! Sparsify-then-solve: build a stretch-sampled spectral sparsifier of a
//! dense-ish mesh, validate it as a preconditioner source, and solve the
//! original system through it — the workflow this paper's line of work
//! grew into (combinatorial multigrid / KMP solvers).
//!
//! ```text
//! cargo run --release --example sparsify_and_solve
//! ```

use hicond::core::{sparsify_by_stretch, SparsifyOptions};
use hicond::prelude::*;

fn main() {
    // A mesh with heavy weight variation and extra random chords.
    let base = generators::triangulated_grid(30, 30, 5);
    let n = base.num_vertices();
    let mut edges: Vec<(usize, usize, f64)> = base
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| {
            // Deterministic multi-scale weight noise (OCT-like stress).
            let scale = (((i * 2654435761) % 997) as f64 / 997.0 * 8.0 - 4.0).exp();
            (e.u as usize, e.v as usize, e.w * scale)
        })
        .collect();
    // Chords make the graph denser and better-connected.
    for i in 0..n / 2 {
        let u = (i * 37) % n;
        let v = (i * 101 + 13) % n;
        if u != v {
            edges.push((u, v, 0.3));
        }
    }
    let g = hicond::graph::Graph::from_edges(n, &edges);
    println!("input: {} vertices, {} edges", n, g.num_edges());

    let s = sparsify_by_stretch(
        &g,
        &SparsifyOptions {
            factor: 300.0,
            seed: 9,
        },
    );
    println!(
        "sparsifier: {} edges ({} of {} off-tree kept, {:.0}% of input size)",
        s.graph.num_edges(),
        s.sampled_edges,
        s.off_tree_edges,
        100.0 * s.graph.num_edges() as f64 / g.num_edges() as f64
    );
    let kappa = hicond::support::condition_number_iterative(
        &g,
        &s.graph,
        &hicond::linalg::pencil::PencilOptions::default(),
    );
    println!("measured kappa(G, H) = {kappa:.1}");

    // Solve G's system using a multilevel Steiner preconditioner built on H.
    let a = laplacian(&g);
    let mut b: Vec<f64> = (0..n).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
    hicond::linalg::vector::deflate_constant(&mut b);
    let plain = cg_solve(&a, &b, &CgOptions::default());
    let ml = MultilevelSteiner::new(&s.graph, &MultilevelOptions::default());
    let via_h = pcg_solve(&a, &ml, &b, &CgOptions::default());
    println!(
        "plain CG: {} iterations; PCG through the sparsifier: {} iterations (converged: {})",
        plain.iterations, via_h.iterations, via_h.converged
    );
    assert!(via_h.converged);
}
