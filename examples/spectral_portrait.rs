//! Theorem 4.1 in action: the low-frequency eigenvectors of the normalized
//! Laplacian live near the cluster subspace `Range(D^{1/2} R)` of a
//! (φ, γ) decomposition.
//!
//! Builds a graph with planted communities, decomposes it, and prints one
//! row per eigenvector: eigenvalue, measured alignment `(xᵀz)²`, and the
//! theorem's lower bound `1 − 3λ(1 + 2/(γφ²))`.
//!
//! ```text
//! cargo run --release --example spectral_portrait
//! ```

use hicond::graph::Graph;
use hicond::prelude::*;
use hicond::spectral::normalized::normalized_eigenpairs_dense;
use hicond::spectral::randwalk::random_walk_mixture;

fn planted(k: usize, size: usize, bridge: f64) -> (Graph, Partition) {
    let n = k * size;
    let mut edges = Vec::new();
    for b in 0..k {
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((b * size + i, b * size + j, 1.0));
            }
        }
    }
    for b in 0..k - 1 {
        edges.push((b * size, (b + 1) * size, bridge));
    }
    let assignment: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
    (
        Graph::from_edges(n, &edges),
        Partition::from_assignment(assignment, k),
    )
}

fn main() {
    let (g, p) = planted(4, 10, 0.02);
    let q = p.quality(&g, 20);
    println!(
        "planted graph: {} vertices, 4 communities; phi = {:.3}, gamma = {:.3}",
        g.num_vertices(),
        q.phi,
        q.gamma
    );

    let (vals, vecs) = normalized_eigenpairs_dense(&g);
    let rows = portrait_check(&g, &p, &vals[..8], &vecs[..8], q.phi, q.gamma);
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "k", "lambda", "(x'z)^2", "bound"
    );
    for (k, r) in rows.iter().enumerate() {
        println!(
            "{k:>4} {:>12.6} {:>12.6} {:>12.6}{}",
            r.lambda,
            r.alignment,
            r.bound,
            if r.alignment >= r.bound {
                ""
            } else {
                "  VIOLATION"
            }
        );
    }

    // The random-walk view: a short walk's distribution mixture is already
    // nearly cluster-wise constant (scaled by volume).
    let n = g.num_vertices();
    let mut w = vec![0.0; n];
    w[3] = 1.0;
    let dist = random_walk_mixture(&g, &w, 12);
    let in_cluster: f64 = (0..10).map(|v| dist[v]).sum();
    println!(
        "\nrandom walk from vertex 3 after 12 steps: {:.1}% of mass still in its community",
        in_cluster * 100.0
    );
}
