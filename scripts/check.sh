#!/usr/bin/env bash
# Tier-1 gate: formatting, static analysis, release build, tests.
# Mirrors .github/workflows/ci.yml so a green local run predicts green CI.
# Everything runs --offline: the workspace vendors its dependencies and
# must build without crates.io access.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "xtask audit (ratcheted static analysis)"
cargo run -p xtask --offline -q -- audit

step "xtask analyze (concurrency soundness: unsafe inventory, atomics, lock order)"
cargo run -p xtask --offline -q -- analyze

step "cargo build --release --offline"
cargo build --release --offline --workspace

step "cargo test --offline"
cargo test --offline --workspace -q

step "cargo test --offline (HICOND_THREADS=4, parallel engine path)"
HICOND_THREADS=4 cargo test --offline --workspace -q

step "schedule-perturbation stress (HICOND_THREADS=4, seeded jitter)"
HICOND_THREADS=4 cargo test --offline -q --test sched_stress --test obs_stress

step "bench_suite --smoke (engine + workload smoke, JSON shape)"
cargo run --release --offline -p hicond-bench --bin bench_suite -- --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

step "all checks passed"
