#!/usr/bin/env bash
# Tier-1 gate: formatting, static analysis, release build, tests.
# Mirrors .github/workflows/ci.yml so a green local run predicts green CI.
# Everything runs --offline: the workspace vendors its dependencies and
# must build without crates.io access.
set -euo pipefail

cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "xtask audit (ratcheted static analysis)"
cargo run -p xtask --offline -q -- audit

step "xtask analyze (concurrency soundness: unsafe inventory, atomics, lock order)"
cargo run -p xtask --offline -q -- analyze

step "xtask reach (panic reachability of the untrusted decode/serve surface)"
cargo run -p xtask --offline -q -- reach

step "xtask model (bounded exhaustive-interleaving checks of the lock-free protocols)"
# Fails on any counterexample, an uncaught seeded mutation, or a stale
# MODELS.md certificate; `--full` removes the schedule budgets (manual).
cargo run -p xtask --offline -q -- model

step "cargo build --release --offline"
cargo build --release --offline --workspace

step "cargo test --offline"
cargo test --offline --workspace -q

step "cargo test --offline (HICOND_THREADS=4, parallel engine path)"
HICOND_THREADS=4 cargo test --offline --workspace -q

step "schedule-perturbation stress (HICOND_THREADS=4, seeded jitter)"
HICOND_THREADS=4 cargo test --offline -q --test sched_stress --test obs_stress

step "linalg tests with the SELL-C layout feature"
cargo test --offline -q -p hicond-linalg --features sell

step "cargo build --examples"
cargo build --offline --examples

step "bench_suite --smoke (engine + workload smoke, JSON shape, kernel gates)"
# The kernel phase asserts blocked-vs-unblocked SpMV and fused-vs-unfused
# PCG bitwise equality before timing, so a passing run IS the divergence
# gate; the grep pins that the cycles-per-nnz table was actually emitted.
cargo run --release --offline -p hicond-bench --bin bench_suite -- --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json
grep -q '"kernels"' target/bench_smoke.json
# The batched-solve phase gates every block column bitwise against its
# solo solve before timing; the grep pins that the k-sweep was emitted.
grep -q '"batch"' target/bench_smoke.json

step "artifact cache round-trip smoke (build -> corrupt -> reject -> rebuild -> solve)"
rm -rf target/cache_smoke && mkdir -p target/cache_smoke
printf '6 6\n0 1 1.0\n1 2 1.0\n2 3 1.0\n3 4 1.0\n4 5 1.0\n0 5 1.0\n' > target/cache_smoke/ring.txt
export HICOND_CACHE_DIR=target/cache_smoke/cache
# Capture output to a file before grepping: `cargo run | grep -q` would let
# grep close the pipe early and kill the binary with SIGPIPE under pipefail.
smoke_out=target/cache_smoke/out.txt
# First solve builds and publishes the artifact; second must load it.
cargo run --release --offline -q --bin hicond -- solve target/cache_smoke/ring.txt --demo --cached \
  > "$smoke_out" 2>&1
grep -q "built and cached" "$smoke_out"
cargo run --release --offline -q --bin hicond -- solve target/cache_smoke/ring.txt --demo --cached \
  > "$smoke_out" 2>&1
grep -q "loaded from cache" "$smoke_out"
cargo run --release --offline -q --bin hicond -- cache verify
# Corrupt one byte (the format-version field, which also breaks the header
# CRC): verify must reject it with a structured error, not a panic.
entry=$(ls target/cache_smoke/cache/*.hca)
printf '\xff' | dd of="$entry" conv=notrunc bs=1 seek=8 status=none
if cargo run --release --offline -q --bin hicond -- cache verify 2>/dev/null; then
  echo "corrupt cache entry was not rejected" >&2; exit 1
fi
# A cached solve degrades to a clean rebuild over the corrupt entry...
cargo run --release --offline -q --bin hicond -- solve target/cache_smoke/ring.txt --demo --cached \
  > "$smoke_out" 2>&1
grep -q "built and cached" "$smoke_out"
# ...after which the store verifies clean, loads, and serves solves.
cargo run --release --offline -q --bin hicond -- cache verify
printf '1 0 0 0 0 -1\nquit\n' | \
  cargo run --release --offline -q --bin hicond -- serve target/cache_smoke/ring.txt \
  > "$smoke_out"
grep -q "^ok " "$smoke_out"
unset HICOND_CACHE_DIR

step "telemetry smoke (metrics scrapes -> hicond top --check, forced panic black box)"
rm -rf target/telemetry_smoke && mkdir -p target/telemetry_smoke
printf '4 3\n0 1 1.0\n1 2 1.0\n2 3 1.0\n' > target/telemetry_smoke/path.txt
export HICOND_CACHE_DIR=target/telemetry_smoke/cache
tele_out=target/telemetry_smoke/out.txt
# Two solves with a metrics scrape after each; every scrape line must be
# JSON that `hicond top --check` accepts (counters, spans, flight events).
printf '1 -1 0 0\nmetrics\n0 1 -1 0\nstats\nmetrics\nquit\n' | \
  HICOND_OBS=json cargo run --release --offline -q --bin hicond -- serve target/telemetry_smoke/path.txt \
  > "$tele_out"
grep -q '^ok stats requests=2 errors=0 ' "$tele_out"
grep -c '^{' "$tele_out" | grep -qx '2'
grep '^{' "$tele_out" | cargo run --release --offline -q --bin hicond -- top --check
# A panicking process must ship a parseable one-line flight dump on stderr.
dump=target/telemetry_smoke/dump.txt
if HICOND_OBS=json cargo run --release --offline -q --bin hicond -- flight-panic \
  2> "$dump" >/dev/null; then
  echo "flight-panic did not panic" >&2; exit 1
fi
grep '^{"flight_recorder"' "$dump" | cargo run --release --offline -q --bin hicond -- top --check
unset HICOND_CACHE_DIR

step "concurrent serve smoke (TCP front end, parallel clients, batched stats scrape)"
rm -rf target/serve_smoke && mkdir -p target/serve_smoke
printf '6 6\n0 1 1.0\n1 2 1.0\n2 3 1.0\n3 4 1.0\n4 5 1.0\n0 5 1.0\n' > target/serve_smoke/ring.txt
serve_out=target/serve_smoke/server_out.txt
serve_err=target/serve_smoke/server_err.txt
# Ephemeral port; the server exits by itself after 4 connections. The
# 5 s batch window + size trigger 3 coalesce the three parallel clients
# when they arrive together, and never stall them when they don't.
HICOND_SERVE_BATCH=3 HICOND_SERVE_BATCH_WINDOW_MS=5000 HICOND_OBS=json \
  cargo run --release --offline -q --bin hicond -- serve target/serve_smoke/ring.txt \
  --listen 127.0.0.1:0 --conns 4 > "$serve_out" 2> "$serve_err" &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening //p' "$serve_out")
  [ -n "$addr" ] && break
  sleep 0.1
done
test -n "$addr"
client_pids=""
for i in 1 2 3; do
  printf '1 0 0 0 0 -1\nquit\n' | \
    cargo run --release --offline -q --bin hicond -- client "$addr" \
    > "target/serve_smoke/client$i.txt" &
  client_pids="$client_pids $!"
done
for pid in $client_pids; do wait "$pid"; done
for i in 1 2 3; do
  grep -q '^ok ' "target/serve_smoke/client$i.txt"
done
# Final session: the shared stats must show all three solves, drained
# gauges, and a numeric batch quantile; the metrics scrape must be JSON
# that `hicond top --check` accepts.
meta_out=target/serve_smoke/meta.txt
printf 'stats\nmetrics\nquit\n' | \
  cargo run --release --offline -q --bin hicond -- client "$addr" > "$meta_out"
grep -q '^ok stats requests=3 errors=0 ' "$meta_out"
grep -q ' queue_depth=0 inflight=0 batch_p50=[0-9]' "$meta_out"
grep '^{' "$meta_out" | cargo run --release --offline -q --bin hicond -- top --check
wait "$server_pid"
grep -q '^served 4 connections, ' "$serve_err"
grep -q 'drained 0 queued request(s) at shutdown' "$serve_err"

step "all checks passed"
