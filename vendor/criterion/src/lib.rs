//! Offline shim for the subset of [criterion](https://docs.rs/criterion)
//! used by the `hicond` workspace benchmarks.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this crate. It keeps bench targets compiling and
//! runnable: each `Bencher::iter` call times a small fixed number of
//! iterations and prints a one-line plain-text report. There is no
//! statistical analysis, warm-up tuning, or HTML output. When run under
//! `cargo test` (bench targets default to `test = true`), every benchmark
//! body executes once, so benches double as smoke tests.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Number of timed iterations per benchmark (upstream tunes this
/// statistically; the shim uses a small constant, overridable via the
/// `HICOND_BENCH_ITERS` environment variable).
fn iters() -> u32 {
    std::env::var("HICOND_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one("", &id.to_string(), &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the sample count; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.label, &mut |b: &mut Bencher| f(b, input));
    }

    /// Benchmark without an input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&self.name, &id.to_string(), &mut f);
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total_ns: 0,
        timed_iters: 0,
    };
    f(&mut b);
    let mean_ns = b.total_ns.checked_div(b.timed_iters as u128).unwrap_or(0);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!(
        "bench {full}: {mean_ns} ns/iter (shim, {} iters)",
        b.timed_iters
    );
}

/// Passed to each benchmark body; [`Bencher::iter`] times the routine.
pub struct Bencher {
    total_ns: u128,
    timed_iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            std_black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.timed_iters += n;
    }
}

/// Identifier carrying a function name and a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes flags like `--bench`;
            // the shim runs the benches regardless (they are fast).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::new();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    (0..n).sum::<usize>()
                })
            });
            g.finish();
        }
        assert!(ran >= 1);
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
