//! Offline shim for the subset of [rand](https://docs.rs/rand) 0.9 used by
//! the `hicond` workspace: seeded [`rngs::StdRng`], [`Rng::random`] and
//! [`Rng::random_range`] over integer and float ranges.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this crate. The generator is xoshiro256++ seeded via
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), which
//! is fine because the workspace only relies on *seed-determinism* (same
//! seed ⇒ same graph), never on a specific upstream stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entry point: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`bool`, ints, `f64` in `[0,1)`).
    fn random<T: Distribution>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly "at large" via [`Rng::random`].
pub trait Distribution: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Distribution for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Distribution for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Distribution for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Distribution for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // Top bit: the high bits of xoshiro256++ are its strongest.
        rng.next_u64() >> 63 == 1
    }
}

impl Distribution for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo bias is negligible for the test/generator spans
                // used in this workspace (all << 2^64).
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty inclusive range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                ((lo as u128) + v) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        let u: f64 = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty inclusive f64 range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` algorithm, but a high-quality,
    /// seed-deterministic stream — the only property the workspace uses.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| {
            let mut a2 = StdRng::seed_from_u64(42);
            a2.random::<u64>() == c.random::<u64>()
        });
        assert!(!same, "different seeds must give different streams");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!(trues > 300 && trues < 700, "suspicious bool bias: {trues}");
    }

    #[test]
    fn range_covers_span_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hits = [0usize; 8];
        for _ in 0..8000 {
            hits[rng.random_range(0usize..8)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 700 && h < 1300, "bucket {i} count {h}");
        }
    }
}
