//! The execution engine: a lazily-grown global worker pool.
//!
//! # Architecture
//!
//! One process-global [`Pool`] owns a set of detached worker threads and a
//! single **broadcast slot**. A data-parallel dispatch installs a
//! lifetime-erased `Fn(usize)` job plus a unit count into the slot, wakes
//! the workers, and then participates itself: every participating thread
//! claims unit indices from a shared atomic counter until the range is
//! exhausted. The dispatching thread finally blocks until every
//! participant has checked out, clears the slot, and returns.
//!
//! # Soundness of the lifetime erasure
//!
//! The installed job is a raw pointer to a closure living in the
//! dispatcher's stack frame. This is the same argument that makes
//! [`std::thread::scope`] sound: the dispatcher provably does not return
//! (or unwind) past the frame until `participants == 0`, and a worker can
//! only observe the job pointer while it is registered as a participant —
//! registration and slot clearing are serialized through the same mutex.
//! After the dispatcher observes zero participants, no other thread holds
//! the pointer.
//!
//! # Determinism contract
//!
//! The engine only ever assigns *independent* unit indices to threads; all
//! order-sensitive combining happens sequentially on the dispatcher (see
//! the iterator layer). Unit scheduling is dynamic (work-stealing via the
//! shared counter), which is safe precisely because unit → result-slot
//! mapping is fixed. Consequently every entry point is bitwise
//! result-deterministic for any thread count, including 1.
//!
//! # Sizing
//!
//! The default width is `HICOND_THREADS` when set, otherwise
//! [`std::thread::available_parallelism`]. [`with_thread_cap`] bounds (or,
//! for benchmarking on narrow machines, raises) the width for the duration
//! of a closure on the calling thread; the pool grows lazily and workers
//! never die — an idle worker costs one blocked OS thread.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::sync::{AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard, Ordering};

/// Hard ceiling on pool width; guards against absurd `HICOND_THREADS`.
const MAX_POOL_WIDTH: usize = 256;

/// Units dispatched per effective thread: a little oversubscription gives
/// dynamic load balance without shrinking units below usefulness.
const UNITS_PER_THREAD: usize = 4;

/// Smallest element count worth putting in its own reduction chunk; below
/// this the dispatch overhead dominates the arithmetic.
pub const MIN_PAR_CHUNK: usize = 4096;

/// Ceiling on the number of reduction chunks. 64 chunks give the
/// [`UNITS_PER_THREAD`]-fold oversubscription target at a 16-wide machine;
/// wider machines see fewer chunks per worker, which is the price of a
/// chunk geometry that cannot depend on the live thread count (see
/// [`chunk_len`]).
pub const MAX_PAR_CHUNKS: usize = 64;

/// Lifetime-erased shared job: `&'dispatch (dyn Fn(usize) + Sync)` with
/// the borrow lifetime transmuted away. The reference is never dangling:
/// the slot holding it is cleared before the dispatcher's frame (and with
/// it the closure) can go away — see the module docs.
#[derive(Clone, Copy)]
struct JobPtr(&'static (dyn Fn(usize) + Sync));

/// Erases the borrow lifetime of a job closure.
///
/// # Safety
/// The caller must guarantee the closure outlives every access through
/// the returned reference; `dispatch` establishes this by blocking until
/// all participants have checked out.
unsafe fn erase<'a>(f: &'a (dyn Fn(usize) + Sync)) -> &'static (dyn Fn(usize) + Sync) {
    // SAFETY: lifetime-only transmute (same type either side); the `'a`
    // borrow remains live for every access because of the caller contract
    // documented above.
    unsafe { std::mem::transmute::<&'a (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f) }
}

/// The broadcast slot plus worker bookkeeping; everything behind one mutex.
struct Slot {
    /// Bumped on every dispatch so a worker never re-joins a job it
    /// already served.
    generation: u64,
    /// The active job, if a dispatch is in flight.
    active: Option<ActiveJob>,
    /// Threads currently inside a claim loop for `active` (dispatcher
    /// included). The dispatcher only clears `active` after this returns
    /// to zero.
    participants: usize,
    /// Worker threads spawned so far.
    spawned: usize,
}

#[derive(Clone, Copy)]
struct ActiveJob {
    func: JobPtr,
    units: usize,
    /// Maximum number of participants (dispatcher included).
    cap: usize,
    /// Request trace id captured from the dispatching thread (0 = none).
    /// Workers install it for the duration of their claim batch so the
    /// flight events they record attribute to the request being served.
    /// Telemetry only — no unit of work ever reads it.
    trace: u64,
}

struct Pool {
    slot: Mutex<Slot>,
    /// Workers park here waiting for a new generation.
    work_cv: Condvar,
    /// The dispatcher parks here waiting for participants to drain.
    done_cv: Condvar,
    /// Next unclaimed unit index of the active job.
    next_unit: AtomicUsize,
    /// First panic payload raised by any unit of the active job.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Per-thread width override installed by [`with_thread_cap`].
    static THREAD_CAP: Cell<Option<usize>> = const { Cell::new(None) };
    /// True on worker threads while they execute units; lets nested
    /// dispatches skip the slot entirely (they would find it busy).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Pool worker index, `usize::MAX` on non-pool (dispatcher) threads;
    /// keys the per-worker obs counters.
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

// ---- schedule perturbation (test harness) -----------------------------
//
// `HICOND_SCHED_JITTER=<seed>` (or `set_sched_jitter(Some(seed))` in
// process) injects seeded, per-unit yields/sleeps at chunk-claim
// boundaries. This perturbs *which worker claims which unit and when* —
// the interleavings a wall-clock-quiet test run never explores — while the
// fixed unit → result-slot mapping keeps every result bitwise identical.
// The determinism stress suite runs the same computation under many seeds
// and asserts the outputs never change.

/// `JITTER_STATE` values: unresolved / disabled / enabled (seed valid).
const JITTER_UNINIT: u8 = 0;
const JITTER_OFF: u8 = 1;
const JITTER_ON: u8 = 2;

static JITTER_STATE: AtomicU8 = AtomicU8::new(JITTER_UNINIT);
static JITTER_SEED: AtomicU64 = AtomicU64::new(0);

/// Serializes jitter latch *writers*; the reader fast path in
/// [`sched_jitter`] stays lock-free. The latch is a two-word protocol
/// (state byte + seed word), so a CAS on the state byte alone cannot make
/// the pair atomic — an env-path seed store could still clobber an
/// explicit seed whose state store had already won. All writers therefore
/// take this mutex, and the env path re-checks the state under the lock
/// before installing anything (`tests/model.rs` `sched_jitter_latch`
/// explores every interleaving of the two writers plus a reader and
/// certifies the explicit seed survives and no reader sees a torn pair).
static JITTER_LOCK: Mutex<()> = Mutex::new(());

fn lock_jitter_writers() -> MutexGuard<'static, ()> {
    // The critical sections store two atomics; a poisoned lock cannot
    // leave them torn in a way the protocol does not already tolerate.
    match JITTER_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The raw latch stores. Callers must hold [`JITTER_LOCK`].
fn store_jitter(seed: Option<u64>) {
    match seed {
        Some(s) => {
            // ordering: Relaxed suffices for the seed itself — the
            // Release store of JITTER_ON below is the publication point,
            // and it orders this store before the state flip.
            JITTER_SEED.store(s, Ordering::Relaxed);
            // ordering: Release publishes the seed store above — a reader
            // that Acquire-loads JITTER_ON is guaranteed to see this
            // seed; pairs with the Acquire state load in `sched_jitter`.
            JITTER_STATE.store(JITTER_ON, Ordering::Release);
        }
        // ordering: Release keeps the state byte's happens-before edge
        // uniform with the enable path (no seed accompanies "off");
        // pairs with the Acquire state load in `sched_jitter`.
        None => JITTER_STATE.store(JITTER_OFF, Ordering::Release),
    }
}

/// Overrides schedule jitter in-process (tests; wins over the env).
/// `Some(seed)` enables perturbation, `None` disables it.
pub fn set_sched_jitter(seed: Option<u64>) {
    let _w = lock_jitter_writers();
    store_jitter(seed);
}

/// The env path's half of the latch protocol: installs `seed` only if no
/// explicit [`set_sched_jitter`] latched while the environment was being
/// parsed, and returns whatever configuration actually won.
fn latch_env_jitter(seed: Option<u64>) -> Option<u64> {
    let _w = lock_jitter_writers();
    // ordering: Relaxed suffices — the writer mutex orders this read
    // after any earlier writer's stores; the load only decides whether
    // somebody latched first.
    if JITTER_STATE.load(Ordering::Relaxed) == JITTER_UNINIT {
        store_jitter(seed);
        return seed;
    }
    // Lost the race to an explicit override (or another env reader):
    // honor the winner.
    // ordering: Relaxed suffices — still under the writer lock, which
    // orders this load after the winning writer's critical section.
    match JITTER_STATE.load(Ordering::Relaxed) {
        // ordering: Relaxed suffices — same writer-lock ordering as the
        // state load above, so the state/seed pair is consistent.
        JITTER_ON => Some(JITTER_SEED.load(Ordering::Relaxed)),
        _ => None,
    }
}

/// Model-check entry point for the env-latch path: what [`sched_jitter`]
/// does in its unresolved arm after parsing, minus the process-global
/// `std::env` read (environment access is not modeled).
#[cfg(feature = "model")]
pub fn model_latch_env_jitter(seed: Option<u64>) -> Option<u64> {
    latch_env_jitter(seed)
}

/// Model-check probe of the lock-free reader fast path: `None` while the
/// latch is unresolved, `Some(config)` once latched. Never touches the
/// environment, so a model can run it concurrently with the writers.
#[cfg(feature = "model")]
pub fn model_jitter_probe() -> Option<Option<u64>> {
    // ordering: Acquire pairs with the Release state stores in
    // `store_jitter`, exactly like the fast path in `sched_jitter`.
    match JITTER_STATE.load(Ordering::Acquire) {
        // ordering: Relaxed suffices for the seed — the Acquire state
        // load above synchronizes with the Release in `store_jitter`,
        // which happens-after the seed store.
        JITTER_ON => Some(Some(JITTER_SEED.load(Ordering::Relaxed))),
        JITTER_OFF => Some(None),
        _ => None,
    }
}

/// The active jitter seed, reading `HICOND_SCHED_JITTER` on first call.
///
/// # Panics
///
/// Panics with a structured [`EnvVarError`] message if the environment
/// variable is set but not a valid `u64` seed — a garbled jitter request
/// must never silently run an unjittered (and therefore unrepresentative)
/// stress run.
pub fn sched_jitter() -> Option<u64> {
    // ordering: Acquire pairs with the Release state stores in
    // `store_jitter` so the seed read below cannot be stale.
    match JITTER_STATE.load(Ordering::Acquire) {
        // ordering: Relaxed suffices for the seed load — the Acquire
        // load of JITTER_ON above synchronizes with the Release store in
        // `store_jitter`, which happens-after the seed store.
        JITTER_ON => Some(JITTER_SEED.load(Ordering::Relaxed)),
        JITTER_OFF => None,
        _ => {
            let seed = match std::env::var("HICOND_SCHED_JITTER") {
                Ok(raw) => match parse_jitter_env(&raw) {
                    Ok(s) => Some(s),
                    // audit: allow(panic-path) — a set-but-garbled env var is
                    // an operator error that must fail fast, not degrade
                    Err(e) => panic!("{e}"),
                },
                Err(_) => None,
            };
            latch_env_jitter(seed)
        }
    }
}

/// splitmix64 mixing: decorrelates (seed, unit, worker) into pause
/// decisions without any shared state.
fn jitter_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Injects a seeded pause at a claim boundary. Timing only: the claimed
/// unit still runs on the claiming thread, into its fixed result slot.
fn jitter_pause(seed: u64, unit: usize) {
    let worker = WORKER_ID.with(|w| w.get()) as u64;
    let h = jitter_mix(seed ^ (unit as u64).wrapping_mul(0x100_0000_01b3) ^ (worker << 17));
    if h & 7 == 0 {
        std::thread::sleep(std::time::Duration::from_micros(1 + (h >> 8) % 40));
    } else if h & 3 == 1 {
        std::thread::yield_now();
    }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        slot: Mutex::new(Slot {
            generation: 0,
            active: None,
            participants: 0,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        next_unit: AtomicUsize::new(0),
        panic: Mutex::new(None),
    })
}

/// Structured parse failure for a pool environment variable: names the
/// variable, echoes the offending value, and states the requirement. The
/// `Display` form is the message operators see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvVarError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The rejected value, verbatim.
    pub value: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl std::fmt::Display for EnvVarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} value `{}`: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvVarError {}

/// Strictly parses a `HICOND_THREADS` value: a decimal integer in
/// `1..=MAX_POOL_WIDTH` (values above the ceiling clamp to it, since the
/// ceiling is an internal resource guard, not a user-facing contract).
/// Anything else — empty, non-numeric, or zero — is an error; the old
/// behavior of silently falling back to the hardware width hid typos like
/// `HICOND_THREADS=4x` behind an unrelated thread count.
pub fn parse_threads_env(raw: &str) -> Result<usize, EnvVarError> {
    let err = || EnvVarError {
        var: "HICOND_THREADS",
        value: raw.to_string(),
        expected: "a thread count in 1..=256",
    };
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(err()),
        Ok(n) => Ok(n.min(MAX_POOL_WIDTH)),
    }
}

/// Strictly parses a `HICOND_SCHED_JITTER` value: any decimal `u64` seed.
pub fn parse_jitter_env(raw: &str) -> Result<u64, EnvVarError> {
    raw.trim().parse::<u64>().map_err(|_| EnvVarError {
        var: "HICOND_SCHED_JITTER",
        value: raw.to_string(),
        expected: "a u64 jitter seed",
    })
}

/// Validates the pool environment without latching anything: entry points
/// (the CLI, the bench harness) call this first so a garbled variable is
/// reported as a startup error rather than a panic mid-computation.
pub fn validate_env() -> Result<(), EnvVarError> {
    if let Ok(raw) = std::env::var("HICOND_THREADS") {
        parse_threads_env(&raw)?;
    }
    if let Ok(raw) = std::env::var("HICOND_SCHED_JITTER") {
        parse_jitter_env(&raw)?;
    }
    Ok(())
}

/// Default pool width: `HICOND_THREADS` if set (clamped to
/// `1..=MAX_POOL_WIDTH`), else the machine's available parallelism.
///
/// # Panics
///
/// Panics with a structured [`EnvVarError`] message if `HICOND_THREADS`
/// is set but invalid (see [`parse_threads_env`]); run
/// [`validate_env`] at startup to turn this into an orderly exit.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("HICOND_THREADS") {
        Ok(raw) => match parse_threads_env(&raw) {
            Ok(n) => n,
            // audit: allow(panic-path) — a set-but-garbled env var is an
            // operator error that must fail fast, not degrade silently
            Err(e) => panic!("{e}"),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_POOL_WIDTH),
    })
}

/// Length of reduction chunk `[0, len)` is cut into by the BLAS-1 kernels.
///
/// The geometry is **size-adaptive but thread-count-blind**: it targets
/// [`MIN_PAR_CHUNK`]-sized chunks and clamps the chunk *count* at
/// [`MAX_PAR_CHUNKS`]. Depending only on `len` (never on the live pool
/// width, a thread cap, or the schedule) is what keeps chunk partials —
/// and therefore every reduced result — bitwise identical at any thread
/// count. Always ≥ 1.
pub fn chunk_len(len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let chunks = len.div_ceil(MIN_PAR_CHUNK).min(MAX_PAR_CHUNKS);
    len.div_ceil(chunks)
}

/// Number of chunks [`chunk_len`] cuts `[0, len)` into (≥ 1, and ≤
/// [`MAX_PAR_CHUNKS`]).
pub fn num_chunks(len: usize) -> usize {
    len.div_ceil(chunk_len(len)).max(1)
}

/// One-line description of the live chunking policy, recorded in the
/// bench trajectory meta so measurements are attributable to a geometry.
pub fn chunk_policy() -> String {
    format!(
        "size-adaptive: ceil(len/{MIN_PAR_CHUNK}) chunks clamped to {MAX_PAR_CHUNKS}, \
         thread-count-blind; partials combined by fixed-shape pairwise tree"
    )
}

/// The width the calling thread will dispatch with: the innermost
/// [`with_thread_cap`] override, else the default.
pub fn effective_threads() -> usize {
    THREAD_CAP.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Runs `f` with the calling thread's dispatch width forced to `n`
/// (clamped to `1..=MAX_POOL_WIDTH`), growing the pool if needed.
///
/// `n` may exceed the machine's core count; that is deliberate — the
/// determinism suite uses caps of 1/2/4/8 regardless of hardware so the
/// concurrent code paths are exercised (via time slicing) even on narrow
/// machines. Restores the previous width on exit, including on panic.
pub fn with_thread_cap<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.clamp(1, MAX_POOL_WIDTH);
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_CAP.with(|c| c.replace(Some(n))));
    f()
}

/// Worker main loop: wait for a fresh generation, claim units, repeat.
fn worker_loop(pool: &'static Pool, index: usize) {
    IN_WORKER.with(|w| w.set(true));
    WORKER_ID.with(|w| w.set(index));
    // Built once per worker: these counters are bumped on every dispatch
    // and idle wake, which must not allocate.
    let idle_name = format!("pool/worker.{index}.idle_waits");
    let tasks_name = format!("pool/worker.{index}.tasks");
    let mut last_gen = 0u64;
    let mut slot = match pool.slot.lock() {
        Ok(g) => g,
        Err(_) => return, // pool poisoned by a panic while locked; retire
    };
    loop {
        let job = match &slot.active {
            Some(job) if slot.generation != last_gen && slot.participants < job.cap => {
                last_gen = slot.generation;
                *job
            }
            _ => {
                // Observability only; the registry lock is a leaf (never
                // taken while acquiring the slot lock), so holding the
                // slot guard across this call cannot deadlock.
                if hicond_obs::enabled() {
                    hicond_obs::counter_add(&idle_name, 1);
                }
                slot = match pool.work_cv.wait(slot) {
                    Ok(g) => g,
                    Err(_) => return,
                };
                continue;
            }
        };
        slot.participants += 1;
        drop(slot);
        claim_units(pool, job, &tasks_name);
        slot = match pool.slot.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        slot.participants -= 1;
        if slot.participants == 0 {
            pool.done_cv.notify_all();
        }
    }
}

/// Claims and executes units of `job` until the counter is exhausted.
/// Panics are captured (first wins) and the remaining units are drained so
/// every participant exits promptly.
fn claim_units(pool: &Pool, job: ActiveJob, tasks_counter: &str) {
    // The dispatch protocol keeps the pointee alive while any participant
    // is checked in (module docs).
    let func = job.func.0;
    // Install the dispatching request's trace id for the batch (and
    // restore the previous one on exit — the dispatcher participates in
    // its own job and must keep its id). Gated so the off path pays no
    // thread-local traffic.
    let prev_trace = hicond_obs::enabled().then(|| hicond_obs::set_current_trace(job.trace));
    // Units are tallied locally and flushed as one counter add on exit so
    // the claim loop itself stays free of locks and allocation.
    let mut executed = 0u64;
    let jitter = sched_jitter();
    loop {
        let u = pool.next_unit.fetch_add(1, Ordering::SeqCst);
        if u >= job.units {
            break;
        }
        if let Some(seed) = jitter {
            jitter_pause(seed, u);
        }
        executed += 1;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(u))) {
            if let Ok(mut p) = pool.panic.lock() {
                p.get_or_insert(payload);
            }
            pool.next_unit.store(job.units, Ordering::SeqCst);
        }
    }
    if executed > 0 && hicond_obs::enabled() {
        // One flight event per claim batch (not per unit): the batch's
        // unit count under the job's trace id, distinguishable per thread
        // by the event's thread ordinal.
        hicond_obs::flight::event_named(
            hicond_obs::flight::EventKind::PoolTask,
            "pool/task_batch",
            executed,
            0,
        );
        hicond_obs::counter_add(tasks_counter, executed);
    }
    if let Some(prev) = prev_trace {
        hicond_obs::set_current_trace(prev);
    }
}

/// Tries to run `func(0..units)` on the pool with at most `cap`
/// participating threads. Returns `false` (without running anything) when
/// the engine cannot dispatch — busy slot, nested call from a worker, or
/// nothing to gain — in which case the caller must run the job inline.
///
/// On success every unit has been executed exactly once; a panic raised by
/// any unit is resumed on the calling thread.
fn dispatch(units: usize, cap: usize, func: &(dyn Fn(usize) + Sync)) -> bool {
    if units < 2 || cap < 2 {
        return false;
    }
    if IN_WORKER.with(|w| w.get()) {
        // Nested parallelism: the slot is occupied by the job this worker
        // is serving; run inline rather than lock-and-fail.
        return false;
    }
    let pool = pool();
    // Safety: `dispatch` blocks below until every participant has checked
    // out, so the erased borrow cannot outlive the closure.
    let erased = JobPtr(unsafe { erase(func) });
    // Capture the dispatching thread's request trace id so workers can
    // attribute their batches to it (telemetry only; 0 when off).
    let trace = if hicond_obs::enabled() {
        hicond_obs::current_trace()
    } else {
        0
    };
    let job = ActiveJob {
        func: erased,
        units,
        cap,
        trace,
    };
    {
        let mut slot = match pool.slot.lock() {
            Ok(g) => g,
            Err(_) => return false,
        };
        if slot.active.is_some() {
            return false; // another thread is mid-dispatch
        }
        // Grow lazily: `cap - 1` workers serve a cap of `cap` (the
        // dispatcher participates). Spawn failures degrade gracefully.
        let want = cap.min(units).saturating_sub(1);
        while slot.spawned < want {
            let index = slot.spawned;
            let name = format!("hicond-worker-{index}");
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(self::pool(), index));
            match handle {
                Ok(_) => slot.spawned += 1,
                Err(_) => break,
            }
        }
        if slot.spawned == 0 {
            return false; // no workers available; inline is strictly better
        }
        if let Ok(mut p) = pool.panic.lock() {
            *p = None;
        }
        pool.next_unit.store(0, Ordering::SeqCst);
        slot.generation = slot.generation.wrapping_add(1);
        slot.active = Some(job);
        slot.participants = 1; // the dispatcher itself
        pool.work_cv.notify_all();
    }
    claim_units(pool, job, "pool/dispatcher.tasks");
    {
        let mut slot = match pool.slot.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        slot.participants -= 1;
        while slot.participants > 0 {
            slot = match pool.done_cv.wait(slot) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        slot.active = None;
    }
    let payload = pool.panic.lock().ok().and_then(|mut p| p.take());
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    hicond_obs::counter_add("pool/dispatches", 1);
    true
}

/// The `(start, end)` index range of block `u` when `[0, len)` is split
/// into `units` contiguous, near-equal, in-order blocks.
///
/// Invariants (property-tested): blocks tile `[0, len)` exactly, are
/// pairwise disjoint, appear in index order, and differ in size by at
/// most 1.
pub fn block_range(len: usize, units: usize, u: usize) -> (usize, usize) {
    debug_assert!(units > 0 && u < units);
    let base = len / units;
    let rem = len % units;
    let start = u * base + u.min(rem);
    let end = start + base + usize::from(u < rem);
    (start, end)
}

/// Number of dispatch units for `len` independent items at the calling
/// thread's effective width.
fn units_for(len: usize, threads: usize) -> usize {
    len.min(threads.saturating_mul(UNITS_PER_THREAD))
}

/// Runs `body(start, end)` over a partition of `[0, len)`, in parallel
/// when the engine is available and profitable, inline otherwise.
///
/// `body` must be safe to call concurrently on disjoint ranges; ranges
/// jointly tile `[0, len)` exactly once. Never allocates on the dispatch
/// path, so callers can build allocation-free hot loops on top.
pub(crate) fn run_blocks(len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let threads = effective_threads();
    let units = units_for(len, threads);
    let ran = units >= 2
        && threads >= 2
        && dispatch(units, threads, &|u| {
            let (s, e) = block_range(len, units, u);
            body(s, e);
        });
    if !ran {
        body(0, len);
    }
}

/// Two-way fork-join primitive used by [`crate::join`]: runs `f(0)` and
/// `f(1)` exactly once each, potentially on different threads. Returns
/// `false` if the caller must run both inline.
pub(crate) fn run_pair(f: &(dyn Fn(usize) + Sync)) -> bool {
    dispatch(2, 2.min(effective_threads()), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_env_parses_strictly() {
        assert_eq!(parse_threads_env("4"), Ok(4));
        assert_eq!(parse_threads_env("  8\n"), Ok(8));
        // Above the ceiling clamps (resource guard, not a contract).
        assert_eq!(parse_threads_env("100000"), Ok(MAX_POOL_WIDTH));
        for bad in ["", "0", "-2", "4x", "four", "3.5", "0x10"] {
            let err = parse_threads_env(bad).expect_err(bad);
            assert_eq!(err.var, "HICOND_THREADS");
            assert_eq!(err.value, bad);
            let msg = err.to_string();
            assert!(msg.contains("HICOND_THREADS"), "{msg}");
            assert!(msg.contains(bad) || bad.is_empty(), "{msg}");
        }
    }

    #[test]
    fn jitter_env_parses_strictly() {
        assert_eq!(parse_jitter_env("0"), Ok(0));
        assert_eq!(parse_jitter_env(" 18446744073709551615 "), Ok(u64::MAX));
        for bad in ["", "-1", "seed", "1e6"] {
            let err = parse_jitter_env(bad).expect_err(bad);
            assert_eq!(err.var, "HICOND_SCHED_JITTER");
            assert!(err.to_string().contains("HICOND_SCHED_JITTER"));
        }
    }

    #[test]
    fn chunk_geometry_is_size_adaptive_and_clamped() {
        // Small inputs: one chunk (sequential).
        assert_eq!(num_chunks(0), 1);
        assert_eq!(num_chunks(1), 1);
        assert_eq!(num_chunks(MIN_PAR_CHUNK), 1);
        // Just past the crossover: two chunks.
        assert_eq!(num_chunks(MIN_PAR_CHUNK + 1), 2);
        // Mid-size: ~MIN_PAR_CHUNK-long chunks.
        assert_eq!(num_chunks(25 * MIN_PAR_CHUNK), 25);
        // Huge: chunk count clamps, chunk length grows.
        let big = 10_000 * MIN_PAR_CHUNK;
        assert_eq!(num_chunks(big), MAX_PAR_CHUNKS);
        assert!(chunk_len(big) >= big / MAX_PAR_CHUNKS);
    }

    #[test]
    fn chunk_geometry_tiles_exactly() {
        for len in [1usize, 100, 4096, 4097, 65_536, 102_400, 1_000_003] {
            let cl = chunk_len(len);
            let nc = num_chunks(len);
            assert!(nc <= MAX_PAR_CHUNKS);
            assert_eq!(len.div_ceil(cl), nc, "len={len}");
            // The last chunk is non-empty: (nc-1) full chunks don't cover len.
            assert!((nc - 1) * cl < len, "len={len} cl={cl} nc={nc}");
        }
    }

    #[test]
    fn chunk_policy_mentions_determinism_relevant_facts() {
        let p = chunk_policy();
        assert!(p.contains("thread-count-blind"));
        assert!(p.contains("tree"));
    }
}
