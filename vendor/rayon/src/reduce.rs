//! Fixed-shape deterministic reductions.
//!
//! Floating-point addition does not associate, so *how* partials are
//! combined is part of a result's identity. The engine's contract is that
//! every result is bitwise identical at any thread count and under any
//! schedule perturbation — which it earns by making the combine shape a
//! pure function of the partial **count**, never of the schedule:
//!
//! * the map phase writes each partial into a fixed index slot (see
//!   [`crate::iter`]);
//! * [`tree_sum`] then folds the slots along a pairwise binary tree whose
//!   split points depend only on the slice length.
//!
//! The tree shape (split at the largest power of two below the length —
//! classic pairwise summation) is chosen over the old sequential in-order
//! fold for two reasons: its levels are embarrassingly parallel if a
//! combine phase ever becomes hot, and its rounding error grows as
//! `O(log n)` instead of `O(n)`. Both properties are free once the shape
//! is fixed; determinism comes from the shape alone.

/// Sums `xs` along a fixed-shape pairwise binary tree.
///
/// The association order is a pure function of `xs.len()`: the slice is
/// split at the largest power of two strictly below its length (halved
/// exactly when the length is itself a power of two), each side is
/// reduced recursively, and the two sub-sums are added last. Identical
/// input bits therefore always produce identical output bits, regardless
/// of thread count or schedule. Empty input sums to `0.0`.
pub fn tree_sum(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        2 => xs[0] + xs[1],
        n => {
            let half = n.next_power_of_two() / 2;
            let mid = if half == n { n / 2 } else { half };
            tree_sum(&xs[..mid]) + tree_sum(&xs[mid..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(tree_sum(&[]), 0.0);
        assert_eq!(tree_sum(&[3.5]), 3.5);
    }

    #[test]
    fn matches_exact_sum_on_integers() {
        // Integer-valued f64 sums are exact at every association order,
        // so the tree must agree with the sequential fold exactly.
        for n in [2usize, 3, 5, 8, 13, 64, 100, 257] {
            let xs: Vec<f64> = (0..n).map(|i| (i * i % 97) as f64).collect();
            let seq: f64 = xs.iter().sum();
            assert_eq!(tree_sum(&xs).to_bits(), seq.to_bits(), "n={n}");
        }
    }

    #[test]
    fn shape_is_a_function_of_length_alone() {
        // Re-running over the same bits always yields the same bits, and
        // splitting the work differently (e.g. summing halves by hand in
        // sequential order) generally does NOT — which is the point: the
        // tree shape, not the caller's schedule, defines the result.
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 1e-3).collect();
        let a = tree_sum(&xs);
        let b = tree_sum(&xs);
        assert_eq!(a.to_bits(), b.to_bits());
        let seq: f64 = xs.iter().sum();
        // Accuracy sanity: the tree is at least as close to a compensated
        // reference as the plain fold is (usually strictly closer).
        let exact: f64 = {
            let mut s = 0.0f64;
            let mut c = 0.0f64;
            for &x in &xs {
                let y = x - c;
                let t = s + y;
                c = (t - s) - y;
                s = t;
            }
            s
        };
        assert!((a - exact).abs() <= (seq - exact).abs() + 1e-15);
    }

    #[test]
    fn split_points_are_pairwise() {
        // For a power-of-two length the tree is perfectly balanced; check
        // the association explicitly for n = 4: (x0 + x1) + (x2 + x3).
        let xs = [1e100, 1.0, -1e100, 1.0];
        let tree = tree_sum(&xs);
        let expected = (xs[0] + xs[1]) + (xs[2] + xs[3]);
        assert_eq!(tree.to_bits(), expected.to_bits());
        // n = 3 splits 2|1: (x0 + x1) + x2.
        let ys = [1e100, -1e100, 1.0];
        assert_eq!(tree_sum(&ys).to_bits(), ((ys[0] + ys[1]) + ys[2]).to_bits());
    }
}
