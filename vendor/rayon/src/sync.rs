//! Synchronization facade (DESIGN.md §14).
//!
//! The pool imports its atomics, mutexes and condvars from here instead
//! of `std::sync`. Normal builds re-export the std types verbatim (zero
//! cost); under the `model` cargo feature the same names resolve to the
//! shadow types of `hicond-model` so the protocols in `tests/model.rs`
//! can be explored exhaustively by `xtask model`. Production sources
//! compile unchanged in both worlds.

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};
#[cfg(not(feature = "model"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(feature = "model")]
pub use hicond_model::shadow::{AtomicU64, AtomicU8, AtomicUsize, Condvar, Mutex, MutexGuard};

pub use std::sync::atomic::Ordering;
