//! Multi-threaded drop-in shim for the subset of
//! [rayon](https://docs.rs/rayon) used by the `hicond` workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this crate in place of the real `rayon`. Unlike the
//! original PR-1 shim (which ran everything sequentially on the calling
//! thread), this version executes `par_*` chains and `join` on a real
//! global worker pool ([`pool`]) sized by the `HICOND_THREADS` environment
//! variable (default: `std::thread::available_parallelism()`).
//!
//! # Determinism contract
//!
//! Every entry point is **bitwise result-deterministic** and
//! observationally identical to the 1-thread / PR-1 sequential path:
//!
//! - parallel iterator terminals materialize per-item results into fixed
//!   index slots; order-sensitive combines are then performed on the
//!   calling thread either sequentially in index order (`sum`, `collect`,
//!   `all`, `unzip`) or along the fixed-shape pairwise tree of
//!   [`reduce::tree_sum`] (`tree_sum`) — either way, the association
//!   order is a pure function of the item count, never of the schedule
//!   (see [`iter`] and [`reduce`] for the full model);
//! - `join(a, b)` always returns `(a(), b())` with `a` logically first;
//! - `par_sort_unstable*` remain sequential sorts, so ties between equal
//!   keys are broken exactly as before.
//!
//! Set `HICOND_THREADS=1` (or call [`pool::with_thread_cap`]`(1, ..)`) to
//! force inline sequential execution identical to the old shim.

pub mod iter;
pub mod pool;
pub mod reduce;
pub mod sync;

use std::cell::UnsafeCell;
use std::cmp::Ordering;

pub use iter::{ParFilterMap, ParIter, Producer};
pub use reduce::tree_sum;

/// Number of worker threads the engine will use for new work on this
/// thread (respects [`pool::with_thread_cap`]).
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

/// Runs both closures — concurrently when a worker is free — and returns
/// `(a(), b())`. Result order (and therefore every observable output) is
/// identical to calling `a` then `b` sequentially.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    /// One-shot slot shared with the pool; sound because each unit index
    /// is executed exactly once, so each cell is touched by one thread.
    struct OnceCellSlot<T>(UnsafeCell<Option<T>>);
    // SAFETY: the only field is the `UnsafeCell<Option<T>>` payload. The
    // pool executes each unit index exactly once, so each cell has one
    // writer and no concurrent reader; the dispatcher reads results only
    // after the mutex-guarded checkout has synchronized with every writer.
    // `T: Send` lets the payload value cross to the worker and back.
    unsafe impl<T: Send> Sync for OnceCellSlot<T> {}
    impl<T> OnceCellSlot<T> {
        fn get(&self) -> *mut Option<T> {
            self.0.get()
        }
    }

    let fa = OnceCellSlot(UnsafeCell::new(Some(a)));
    let fb = OnceCellSlot(UnsafeCell::new(Some(b)));
    let ra: OnceCellSlot<RA> = OnceCellSlot(UnsafeCell::new(None));
    let rb: OnceCellSlot<RB> = OnceCellSlot(UnsafeCell::new(None));
    let ran = pool::run_pair(&|u| {
        // Safety: the pool executes each unit index exactly once, so each
        // cell below has a single writer and no concurrent reader.
        unsafe {
            if u == 0 {
                let f = (*fa.get()).take().expect("unit 0 ran twice");
                *ra.get() = Some(f());
            } else {
                let f = (*fb.get()).take().expect("unit 1 ran twice");
                *rb.get() = Some(f());
            }
        }
    });
    if ran {
        // Safety: dispatch completed, so both cells were filled and all
        // writers have synchronized with this thread.
        unsafe {
            (
                (*ra.get()).take().expect("join: missing result a"),
                (*rb.get()).take().expect("join: missing result b"),
            )
        }
    } else {
        // Pool busy / capped at 1 / nested: run inline, `a` first.
        // Safety: run_pair executed nothing, so the closures are intact
        // and this thread is the only accessor.
        unsafe {
            let a = (*fa.get()).take().expect("join: closure a consumed");
            let b = (*fb.get()).take().expect("join: closure b consumed");
            let ra = a();
            let rb = b();
            (ra, rb)
        }
    }
}

/// Converts an owned collection or range into a parallel iterator.
/// Blanket-implemented for every `IntoIterator` with `Send` items; the
/// source is drained (sequentially) into an indexed buffer first.
pub trait IntoParallelIterator {
    /// Parallel iterator type produced.
    type Iter;
    /// Item type.
    type Item: Send;
    /// Consumes `self`, yielding the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Iter = ParIter<iter::VecProducer<I::Item>>;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        iter::from_vec(self.into_iter().collect())
    }
}

/// Shared-reference slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<iter::SliceProducer<'_, T>>;
    /// Parallel iterator over non-overlapping chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<iter::ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<iter::SliceProducer<'_, T>> {
        iter::from_slice(self)
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<iter::ChunksProducer<'_, T>> {
        iter::from_chunks(self, chunk_size)
    }
}

/// Mutable slice entry points (`par_iter_mut`, `par_chunks_mut`,
/// `par_sort_*`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<iter::SliceMutProducer<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<iter::ChunksMutProducer<'_, T>>;
    /// Unstable sort by key (sequential: preserves the exact equal-key
    /// permutation of the PR-1 shim at any thread count).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    /// Unstable sort by comparator (sequential; see above).
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, f: F);
    /// Unstable natural-order sort (sequential; see above).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<iter::SliceMutProducer<'_, T>> {
        iter::from_slice_mut(self)
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<iter::ChunksMutProducer<'_, T>> {
        iter::from_chunks_mut(self, chunk_size)
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, f: F) {
        self.sort_unstable_by(f);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

/// The usual glob-import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::pool::{block_range, with_thread_cap};
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_sums() {
        let xs = [1.0f64, 2.0, 3.0];
        let s: f64 = xs.par_iter().sum();
        assert_eq!(s, 6.0);
    }

    #[test]
    fn par_iter_mut_writes() {
        let mut xs = vec![0usize; 4];
        xs.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(xs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunked_zip_matches_sequential() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (i * 3) as f64).collect();
        let par: f64 = x
            .par_chunks(16)
            .zip(y.par_chunks(16))
            .map(|(a, b)| a.iter().zip(b).map(|(p, q)| p * q).sum::<f64>())
            .sum();
        let seq: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_sort_by_key_sorts() {
        let mut v = vec![(2u32, 'b'), (0, 'a'), (1, 'c')];
        v.par_sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(v, vec![(0, 'a'), (1, 'c'), (2, 'b')]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_runs_on_workers() {
        // Large enough to force actual dispatch on multi-unit paths; the
        // result must be identical either way.
        let xs: Vec<u64> = (0..100_000).collect();
        let (a, b) = super::join(|| xs.iter().sum::<u64>(), || xs.len());
        assert_eq!(a, 4_999_950_000);
        assert_eq!(b, 100_000);
    }

    #[test]
    fn nested_join_inlines() {
        let (outer, _) = super::join(|| super::join(|| 1, || 2), || super::join(|| 3, || 4));
        assert_eq!(outer, (1, 2));
    }

    #[test]
    fn filter_map_collects_in_order() {
        let v: Vec<u32> = (0u32..100)
            .into_par_iter()
            .filter_map(|i| (i % 3 == 0).then_some(i))
            .collect();
        let seq: Vec<u32> = (0u32..100).filter(|i| i % 3 == 0).collect();
        assert_eq!(v, seq);
    }

    #[test]
    fn unzip_preserves_order() {
        let (a, b): (Vec<u32>, Vec<u32>) = (0u32..1000).into_par_iter().map(|i| (i, i * 2)).unzip();
        assert_eq!(a, (0u32..1000).collect::<Vec<_>>());
        assert_eq!(b, (0u32..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn all_matches_sequential() {
        assert!((0u32..500).into_par_iter().all(|i| i < 500));
        assert!(!(0u32..500).into_par_iter().all(|i| i < 499));
    }

    #[test]
    fn results_identical_across_thread_caps() {
        let xs: Vec<f64> = (0..50_000).map(|i| (i as f64).sin()).collect();
        let expect: f64 = with_thread_cap(1, || {
            xs.par_chunks(1 << 10).map(|c| c.iter().sum::<f64>()).sum()
        });
        for cap in [2, 4, 8] {
            let got: f64 = with_thread_cap(cap, || {
                xs.par_chunks(1 << 10).map(|c| c.iter().sum::<f64>()).sum()
            });
            assert_eq!(got.to_bits(), expect.to_bits(), "cap={cap}");
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.par_iter().map(|&x| x).collect::<Vec<u32>>(), v);
        assert_eq!(v.into_par_iter().map(|x| x).sum::<u32>(), 0);
        let (s, e) = block_range(0, 1, 0);
        assert_eq!((s, e), (0, 0));
    }

    #[test]
    fn block_range_partitions_exactly() {
        for len in [0usize, 1, 7, 64, 1000, 1001] {
            for units in [1usize, 2, 3, 7, 8] {
                let mut covered = 0usize;
                let mut prev_end = 0usize;
                for u in 0..units {
                    let (s, e) = block_range(len, units, u);
                    assert_eq!(s, prev_end, "len={len} units={units} u={u}");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, len, "len={len} units={units}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn counters_accumulate_across_pool_workers() {
        // Concurrent increments from pool worker threads must lose
        // nothing, and the pool's own per-worker task accounting must
        // cover every dispatched unit exactly once.
        let prev = hicond_obs::mode();
        hicond_obs::set_mode(hicond_obs::Mode::Json);
        let shared = hicond_obs::global().counter("test/pool_increments");
        let before = shared.get();
        with_thread_cap(4, || {
            (0u64..20_000).into_par_iter().for_each(|_| shared.add(1));
        });
        hicond_obs::set_mode(prev);
        assert_eq!(shared.get() - before, 20_000);
        // Every executed unit was attributed to the dispatcher or a worker.
        let snap = hicond_obs::snapshot();
        let attributed: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k == "pool/dispatcher.tasks" || k.starts_with("pool/worker."))
            .filter(|(k, _)| k.ends_with(".tasks") || k == "pool/dispatcher.tasks")
            .map(|(_, v)| v)
            .sum();
        assert!(attributed > 0, "pool executed units while obs was enabled");
    }

    #[test]
    fn collect_panic_truncates_safely() {
        // A worker panic mid-collect must unwind cleanly through the
        // partially-filled buffer: the CollectGuard leaks written items
        // and never drops an unwritten slot. `Tracked` counts every
        // construction and drop so a drop of an uninitialized slot (which
        // would read garbage counters or double-free) surfaces as a
        // drops > constructions imbalance.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILT: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicUsize = AtomicUsize::new(0);

        struct Tracked(#[allow(dead_code)] Box<u64>);
        impl Tracked {
            fn new(i: u64) -> Self {
                BUILT.fetch_add(1, Ordering::SeqCst);
                Tracked(Box::new(i))
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::SeqCst);
            }
        }

        let caught = std::panic::catch_unwind(|| {
            let _v: Vec<Tracked> = (0u64..10_000)
                .into_par_iter()
                .map(|i| {
                    if i == 6000 {
                        panic!("collect boom");
                    }
                    Tracked::new(i)
                })
                .collect();
        });
        assert!(caught.is_err(), "panic must propagate out of collect");
        let built = BUILT.load(Ordering::SeqCst);
        let dropped = DROPPED.load(Ordering::SeqCst);
        assert!(
            dropped <= built,
            "dropped ({dropped}) exceeds constructed ({built}): an \
             uninitialized slot was dropped"
        );
        // The collect path must stay usable (pool drained, no poisoned
        // buffer state).
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(v.len(), 1000);
        assert_eq!(v[999], 2997);
    }

    #[test]
    fn panic_propagates_from_pool() {
        let caught = std::panic::catch_unwind(|| {
            (0u32..10_000).into_par_iter().for_each(|i| {
                if i == 7777 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
        // Pool must remain usable afterwards.
        let s: u32 = (0u32..100).into_par_iter().sum();
        assert_eq!(s, 4950);
    }
}
