//! Sequential drop-in shim for the subset of [rayon](https://docs.rs/rayon)
//! used by the `hicond` workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this crate in place of the real `rayon`. Every
//! `par_*` entry point returns the corresponding **standard library
//! iterator**, so all downstream adapter chains (`map`, `filter_map`,
//! `enumerate`, `zip`, `sum`, `collect`, …) compile unchanged and produce
//! identical results — the only difference is that execution is
//! sequential. Swapping the real rayon back in is a one-line change in the
//! workspace `Cargo.toml`.
//!
//! Determinism note: the workspace's parallel kernels are written to be
//! result-deterministic under rayon (chunked reductions in fixed order),
//! so this shim is observationally equivalent, not just "close".

use std::cmp::Ordering;

/// Number of worker threads. The shim executes on the calling thread.
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    let ra = a();
    let rb = b();
    (ra, rb)
}

/// Converts an owned collection or range into a (here: sequential)
/// "parallel" iterator. Blanket-implemented for every `IntoIterator`.
pub trait IntoParallelIterator {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Consumes `self`, yielding the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> I::IntoIter {
        self.into_iter()
    }
}

/// Shared-reference slice entry points (`par_iter`, `par_chunks`).
pub trait ParallelSlice<T> {
    /// Iterator over `&T`.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
    /// Iterator over non-overlapping chunks of length `chunk_size`
    /// (last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Mutable slice entry points (`par_iter_mut`, `par_chunks_mut`,
/// `par_sort_*`).
pub trait ParallelSliceMut<T> {
    /// Iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    /// Mutable chunk iterator.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    /// Unstable sort by key.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, f: F);
    /// Unstable natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> Ordering>(&mut self, f: F) {
        self.sort_unstable_by(f);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

/// The usual glob-import surface: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_sums() {
        let xs = [1.0f64, 2.0, 3.0];
        let s: f64 = xs.par_iter().sum();
        assert_eq!(s, 6.0);
    }

    #[test]
    fn par_iter_mut_writes() {
        let mut xs = vec![0usize; 4];
        xs.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert_eq!(xs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunked_zip_matches_sequential() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (i * 3) as f64).collect();
        let par: f64 = x
            .par_chunks(16)
            .zip(y.par_chunks(16))
            .map(|(a, b)| a.iter().zip(b).map(|(p, q)| p * q).sum::<f64>())
            .sum();
        let seq: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_sort_by_key_sorts() {
        let mut v = vec![(2u32, 'b'), (0, 'a'), (1, 'c')];
        v.par_sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(v, vec![(0, 'a'), (1, 'c'), (2, 'b')]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x");
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
