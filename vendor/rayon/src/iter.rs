//! The data-parallel iterator layer on top of [`crate::pool`].
//!
//! # Model
//!
//! A [`ParIter`] wraps an **indexed producer**: a `Sync` description of
//! `len` independent items where item `i` can be produced on any thread,
//! exactly once. Adapters (`map`, `enumerate`, `zip`, `filter_map`) wrap
//! producers lazily; terminals drive the pool.
//!
//! # Determinism contract
//!
//! Terminals never combine values concurrently. A reduction (`sum`, `all`,
//! `collect`, `unzip`) first materializes every item into its fixed index
//! slot — in parallel, which is safe because slots are independent — and
//! then performs the *standard library* sequential reduction over the
//! slots in index order on the calling thread. The result is therefore
//! bitwise identical to running the whole chain on the old sequential
//! shim, for every thread count (floating-point reassociation never
//! happens inside the engine; chunk-level reassociation is a call-site
//! decision, e.g. `par_chunks(...).map(dot).sum()`).

use crate::pool;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};

/// An indexed source of `len` independent items.
///
/// # Safety contract (for implementors and drivers)
/// Drivers call `get(i)` **at most once** per index; implementors may rely
/// on that for soundness (e.g. handing out `&mut` items or moving owned
/// values).
pub trait Producer: Sync {
    /// Item produced for each index.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Produces item `i`.
    ///
    /// # Safety
    /// Must be called at most once per `i < len()`, though possibly from
    /// any thread.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// A "parallel iterator": a lazily-adapted indexed producer. See the
/// module docs for the execution and determinism model.
pub struct ParIter<P: Producer> {
    p: P,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(p: P) -> Self {
        ParIter { p }
    }

    /// Number of items this iterator will yield.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True if no items will be yielded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- adapters ----------------------------------------------------

    /// Maps each item through `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        ParIter::new(Map { p: self.p, f })
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter::new(Enumerate { p: self.p })
    }

    /// Zips with another parallel iterator (shorter side wins).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        ParIter::new(Zip {
            a: self.p,
            b: other.p,
        })
    }

    /// Keeps the `Some` results of `f`, in index order.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<P, F>
    where
        R: Send,
        F: Fn(P::Item) -> Option<R> + Sync,
    {
        ParFilterMap { p: self.p, f }
    }

    // ---- terminals ---------------------------------------------------

    /// Calls `f` on every item (in parallel; no ordering guarantee on the
    /// calls themselves — side effects must be per-item independent, as
    /// with real rayon).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let p = self.p;
        pool::run_blocks(p.len(), &|s, e| {
            for i in s..e {
                // Safety: blocks tile the index range exactly once.
                f(unsafe { p.get(i) });
            }
        });
    }

    /// Collects into `C`, preserving index order.
    pub fn collect<C: From<Vec<P::Item>>>(self) -> C {
        C::from(eval_to_vec(&self.p))
    }

    /// Sums the items with the standard sequential fold (index order).
    /// For `f64` chains whose association order matters, prefer
    /// [`ParIter::tree_sum`], whose fixed pairwise shape also bounds
    /// rounding error at `O(log n)`.
    pub fn sum<S: std::iter::Sum<P::Item>>(self) -> S {
        eval_to_vec(&self.p).into_iter().sum()
    }

    /// True if `f` holds for every item. `f` is evaluated on all items
    /// (no short-circuit), so it must be side-effect free — which the
    /// rayon API contract already demands.
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Sync,
    {
        self.map(f).collect::<Vec<bool>>().into_iter().all(|b| b)
    }

    /// Splits pair items into two collections, preserving index order.
    pub fn unzip<A, B, CA, CB>(self) -> (CA, CB)
    where
        P: Producer<Item = (A, B)>,
        A: Send,
        B: Send,
        CA: Default + Extend<A>,
        CB: Default + Extend<B>,
    {
        let pairs = eval_to_vec(&self.p);
        let mut ca = CA::default();
        let mut cb = CB::default();
        for (a, b) in pairs {
            ca.extend(std::iter::once(a));
            cb.extend(std::iter::once(b));
        }
        (ca, cb)
    }
}

impl<P: Producer<Item = f64>> ParIter<P> {
    /// Sums `f64` items along the fixed-shape pairwise binary tree of
    /// [`crate::reduce::tree_sum`]: items are materialized into their
    /// fixed index slots in parallel, then combined on the calling thread
    /// in an association order that depends only on the item count —
    /// bitwise identical at any thread count and under schedule jitter.
    pub fn tree_sum(self) -> f64 {
        crate::reduce::tree_sum(&eval_to_vec(&self.p))
    }
}

/// Raw pointer that may cross threads; each thread writes disjoint slots.
struct SendPtr<T>(*mut T);
// SAFETY: the only field is the `*mut T` base pointer of a `Vec` that the
// spawning call frame keeps alive; workers write disjoint index ranges
// through it (each slot exactly once), so moving the pointer to another
// thread cannot alias a live `&mut`. `T: Send` carries the payload across.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared access to the `*mut T` field is sound for the same
// reason — every dereference through it targets a slot owned by exactly
// one worker, so concurrent `&SendPtr` use never creates overlapping
// writes.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (instead of field access) so closures capture the whole
    /// `SendPtr` — edition-2021 precise capture would otherwise grab the
    /// raw-pointer field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Panic guard for the parallel-collect buffer.
///
/// Owns the `Vec<MaybeUninit<T>>` for the whole `set_len` → fill →
/// `from_raw_parts` window so the "length claims more than is
/// initialized" state can never leak past this type. If the fill panics
/// (a user closure unwinds on a worker and the pool rethrows on the
/// dispatcher), `Drop` *truncates* the buffer to length zero instead of
/// letting `Vec` drop `MaybeUninit` slots that were never written —
/// initialized items are deliberately leaked (leak-on-unwind is sound;
/// dropping uninitialized memory is not). Only `commit()` — reachable
/// strictly after a fully successful fill — reinterprets the buffer as
/// `Vec<T>`.
struct CollectGuard<T> {
    buf: Vec<MaybeUninit<T>>,
}

impl<T> CollectGuard<T> {
    /// Allocates the full buffer up front with every slot present but
    /// uninitialized.
    fn with_len(len: usize) -> Self {
        let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
        // SAFETY: MaybeUninit needs no initialization, and the buffer
        // stays typed `MaybeUninit<T>` (never dropped as `T`) until
        // `commit` proves every slot was written.
        unsafe { buf.set_len(len) };
        CollectGuard { buf }
    }

    fn base(&mut self) -> *mut MaybeUninit<T> {
        self.buf.as_mut_ptr()
    }

    /// Consumes the guard, reinterpreting the buffer as fully
    /// initialized.
    ///
    /// # Safety
    /// Every slot must have been written exactly once.
    unsafe fn commit(mut self) -> Vec<T> {
        let buf = std::mem::take(&mut self.buf);
        std::mem::forget(self);
        let len = buf.len();
        let mut buf = ManuallyDrop::new(buf);
        // SAFETY: caller guarantees all `len` slots are initialized;
        // `MaybeUninit<T>` is layout-transparent over `T`, and the
        // allocation (ptr/len/capacity) is carried over unchanged.
        unsafe { Vec::from_raw_parts(buf.as_mut_ptr() as *mut T, len, buf.capacity()) }
    }
}

impl<T> Drop for CollectGuard<T> {
    fn drop(&mut self) {
        // Reached only on unwind (commit forgets self): shrink to zero so
        // the Vec frees the allocation without dropping any slot. Written
        // items leak; uninitialized ones are never touched.
        self.buf.truncate(0);
    }
}

/// Materializes every item into its index slot, in parallel.
fn eval_to_vec<P: Producer>(p: &P) -> Vec<P::Item> {
    let len = p.len();
    let mut out: CollectGuard<P::Item> = CollectGuard::with_len(len);
    let base = SendPtr(out.base());
    pool::run_blocks(len, &|s, e| {
        let slots = base.get();
        for i in s..e {
            // SAFETY: blocks tile the index range exactly once, and each
            // slot is written by exactly one thread.
            unsafe { (*slots.add(i)).write(p.get(i)) };
        }
    });
    // SAFETY: every slot was initialized above — run_blocks covers the
    // whole range, and on a worker panic it rethrows before this point
    // (the guard then truncates instead of dropping uninitialized slots).
    unsafe { out.commit() }
}

// ---- adapter producers ----------------------------------------------

/// See [`ParIter::map`].
pub struct Map<P, F> {
    p: P,
    f: F,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.p.len()
    }
    // SAFETY: caller upholds the `Producer::get` contract (i < len, each
    // index at most once); forwarded to the inner producer unchanged.
    unsafe fn get(&self, i: usize) -> R {
        // SAFETY: forwarded contract.
        (self.f)(unsafe { self.p.get(i) })
    }
}

/// See [`ParIter::enumerate`].
pub struct Enumerate<P> {
    p: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.p.len()
    }
    // SAFETY: caller upholds the `Producer::get` contract; forwarded to
    // the inner producer unchanged.
    unsafe fn get(&self, i: usize) -> (usize, P::Item) {
        // SAFETY: forwarded contract.
        (i, unsafe { self.p.get(i) })
    }
}

/// See [`ParIter::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    // SAFETY: caller upholds the `Producer::get` contract; `len` is the
    // min of both sides, so the index is in range for each.
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded contract; i < min(len a, len b).
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// Lazy `filter_map` chain end; only collection makes sense (the output
/// length is unknown until evaluated).
pub struct ParFilterMap<P, F> {
    p: P,
    f: F,
}

impl<P, R, F> ParFilterMap<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync,
{
    /// Evaluates in parallel, then keeps the `Some` values in index order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let opts = eval_to_vec(&Map {
            p: self.p,
            f: self.f,
        });
        C::from(opts.into_iter().flatten().collect::<Vec<R>>())
    }
}

// ---- leaf producers --------------------------------------------------

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.s.len()
    }
    // SAFETY: caller guarantees i < len (the slice length).
    unsafe fn get(&self, i: usize) -> &'a T {
        // SAFETY: i < len.
        unsafe { self.s.get_unchecked(i) }
    }
}

/// Producer over non-overlapping `&[T]` chunks.
pub struct ChunksProducer<'a, T: Sync> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    // SAFETY: caller guarantees i < len (the chunk count).
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.s.len());
        // SAFETY: i < len ⟹ lo < s.len() ≤ hi bound.
        unsafe { self.s.get_unchecked(lo..hi) }
    }
}

/// Producer over `&mut T` items of a slice. Sound because the driver
/// produces each index at most once, so the `&mut` borrows are disjoint.
pub struct SliceMutProducer<'a, T: Send> {
    base: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `base` points into a caller-borrowed `&mut [T]` of length `len`
// that outlives the producer (`_marker` pins the lifetime). The driver
// hands each index to at most one worker, so `&mut` borrows created
// through `base` are disjoint; shared `&self` access is therefore sound.
unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}
// SAFETY: same argument as `Sync` — the `base` field is the only state,
// and ownership of disjoint slots moves with `T: Send`.
unsafe impl<T: Send> Send for SliceMutProducer<'_, T> {}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    // SAFETY: caller guarantees i < len and produces each index at most
    // once, so the returned `&mut` borrows are disjoint.
    unsafe fn get(&self, i: usize) -> &'a mut T {
        // SAFETY: i < len and each index is produced once ⟹ disjoint.
        unsafe { &mut *self.base.add(i) }
    }
}

/// Producer over non-overlapping `&mut [T]` chunks.
pub struct ChunksMutProducer<'a, T: Send> {
    base: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `base`/`len` describe a caller-borrowed `&mut [T]` (lifetime
// pinned by `_marker`); chunks at stride `size` are non-overlapping and
// each chunk index is produced at most once, so concurrent `&self` use
// never creates aliasing `&mut [T]` chunks.
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}
// SAFETY: same argument as `Sync` — the `base` pointer is the only state,
// and disjoint chunk ownership moves with `T: Send`.
unsafe impl<T: Send> Send for ChunksMutProducer<'_, T> {}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    // SAFETY: caller guarantees i < len (the chunk count) and produces
    // each chunk index at most once, so the `&mut [T]` chunks are disjoint.
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        // SAFETY: chunks are disjoint and each index is produced once.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(lo), hi - lo) }
    }
}

/// Producer that owns its items (backing store for
/// [`crate::IntoParallelIterator`]). Items are moved out one by one; items
/// never produced (e.g. the long tail of a mismatched `zip`, or a chain
/// dropped without a terminal) are leaked rather than dropped — acceptable
/// for this workspace, where every chain ends in a terminal and zip sides
/// have equal length.
pub struct VecProducer<T: Send> {
    buf: Vec<ManuallyDrop<T>>,
}

// SAFETY: the only field is `buf`, an owned `Vec<ManuallyDrop<T>>`; the
// driver moves each element out of `buf` at most once (see `get`), so
// concurrent `&self` access from workers touches disjoint elements and
// `T: Send` lets the moved-out values cross threads.
unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T: Send> VecProducer<T> {
    pub(crate) fn from_vec(v: Vec<T>) -> Self {
        // Safety: ManuallyDrop<T> is layout-transparent over T.
        let buf = unsafe {
            let mut v = ManuallyDrop::new(v);
            Vec::from_raw_parts(
                v.as_mut_ptr() as *mut ManuallyDrop<T>,
                v.len(),
                v.capacity(),
            )
        };
        VecProducer { buf }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.buf.len()
    }
    // SAFETY: caller guarantees i < len and that each index is produced
    // at most once, so each value is moved out at most once.
    unsafe fn get(&self, i: usize) -> T {
        // SAFETY: i < len and each index is produced at most once, so the
        // value is moved out exactly once and never dropped in place.
        ManuallyDrop::into_inner(unsafe { std::ptr::read(self.buf.as_ptr().add(i)) })
    }
}

// ---- constructors used by lib.rs -------------------------------------

pub(crate) fn from_slice<T: Sync>(s: &[T]) -> ParIter<SliceProducer<'_, T>> {
    ParIter::new(SliceProducer { s })
}

pub(crate) fn from_chunks<T: Sync>(s: &[T], size: usize) -> ParIter<ChunksProducer<'_, T>> {
    assert!(size != 0, "chunk size must be non-zero");
    ParIter::new(ChunksProducer { s, size })
}

pub(crate) fn from_slice_mut<T: Send>(s: &mut [T]) -> ParIter<SliceMutProducer<'_, T>> {
    ParIter::new(SliceMutProducer {
        base: s.as_mut_ptr(),
        len: s.len(),
        _marker: PhantomData,
    })
}

pub(crate) fn from_chunks_mut<T: Send>(
    s: &mut [T],
    size: usize,
) -> ParIter<ChunksMutProducer<'_, T>> {
    assert!(size != 0, "chunk size must be non-zero");
    ParIter::new(ChunksMutProducer {
        base: s.as_mut_ptr(),
        len: s.len(),
        size,
        _marker: PhantomData,
    })
}

pub(crate) fn from_vec<T: Send>(v: Vec<T>) -> ParIter<VecProducer<T>> {
    ParIter::new(VecProducer::from_vec(v))
}
