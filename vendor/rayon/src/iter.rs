//! The data-parallel iterator layer on top of [`crate::pool`].
//!
//! # Model
//!
//! A [`ParIter`] wraps an **indexed producer**: a `Sync` description of
//! `len` independent items where item `i` can be produced on any thread,
//! exactly once. Adapters (`map`, `enumerate`, `zip`, `filter_map`) wrap
//! producers lazily; terminals drive the pool.
//!
//! # Determinism contract
//!
//! Terminals never combine values concurrently. A reduction (`sum`, `all`,
//! `collect`, `unzip`) first materializes every item into its fixed index
//! slot — in parallel, which is safe because slots are independent — and
//! then performs the *standard library* sequential reduction over the
//! slots in index order on the calling thread. The result is therefore
//! bitwise identical to running the whole chain on the old sequential
//! shim, for every thread count (floating-point reassociation never
//! happens inside the engine; chunk-level reassociation is a call-site
//! decision, e.g. `par_chunks(...).map(dot).sum()`).

use crate::pool;
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};

/// An indexed source of `len` independent items.
///
/// # Safety contract (for implementors and drivers)
/// Drivers call `get(i)` **at most once** per index; implementors may rely
/// on that for soundness (e.g. handing out `&mut` items or moving owned
/// values).
pub trait Producer: Sync {
    /// Item produced for each index.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Produces item `i`.
    ///
    /// # Safety
    /// Must be called at most once per `i < len()`, though possibly from
    /// any thread.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// A "parallel iterator": a lazily-adapted indexed producer. See the
/// module docs for the execution and determinism model.
pub struct ParIter<P: Producer> {
    p: P,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(p: P) -> Self {
        ParIter { p }
    }

    /// Number of items this iterator will yield.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True if no items will be yielded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- adapters ----------------------------------------------------

    /// Maps each item through `f`.
    pub fn map<R, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        ParIter::new(Map { p: self.p, f })
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        ParIter::new(Enumerate { p: self.p })
    }

    /// Zips with another parallel iterator (shorter side wins).
    pub fn zip<Q: Producer>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        ParIter::new(Zip {
            a: self.p,
            b: other.p,
        })
    }

    /// Keeps the `Some` results of `f`, in index order.
    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<P, F>
    where
        R: Send,
        F: Fn(P::Item) -> Option<R> + Sync,
    {
        ParFilterMap { p: self.p, f }
    }

    // ---- terminals ---------------------------------------------------

    /// Calls `f` on every item (in parallel; no ordering guarantee on the
    /// calls themselves — side effects must be per-item independent, as
    /// with real rayon).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let p = self.p;
        pool::run_blocks(p.len(), &|s, e| {
            for i in s..e {
                // Safety: blocks tile the index range exactly once.
                f(unsafe { p.get(i) });
            }
        });
    }

    /// Collects into `C`, preserving index order.
    pub fn collect<C: From<Vec<P::Item>>>(self) -> C {
        C::from(eval_to_vec(&self.p))
    }

    /// Sums the items with the standard sequential fold (index order).
    pub fn sum<S: std::iter::Sum<P::Item>>(self) -> S {
        eval_to_vec(&self.p).into_iter().sum()
    }

    /// True if `f` holds for every item. `f` is evaluated on all items
    /// (no short-circuit), so it must be side-effect free — which the
    /// rayon API contract already demands.
    pub fn all<F>(self, f: F) -> bool
    where
        F: Fn(P::Item) -> bool + Sync,
    {
        self.map(f).collect::<Vec<bool>>().into_iter().all(|b| b)
    }

    /// Splits pair items into two collections, preserving index order.
    pub fn unzip<A, B, CA, CB>(self) -> (CA, CB)
    where
        P: Producer<Item = (A, B)>,
        A: Send,
        B: Send,
        CA: Default + Extend<A>,
        CB: Default + Extend<B>,
    {
        let pairs = eval_to_vec(&self.p);
        let mut ca = CA::default();
        let mut cb = CB::default();
        for (a, b) in pairs {
            ca.extend(std::iter::once(a));
            cb.extend(std::iter::once(b));
        }
        (ca, cb)
    }
}

/// Raw pointer that may cross threads; each thread writes disjoint slots.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (instead of field access) so closures capture the whole
    /// `SendPtr` — edition-2021 precise capture would otherwise grab the
    /// raw-pointer field, which is not `Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Materializes every item into its index slot, in parallel.
fn eval_to_vec<P: Producer>(p: &P) -> Vec<P::Item> {
    let len = p.len();
    let mut out: Vec<MaybeUninit<P::Item>> = Vec::with_capacity(len);
    // Safety: MaybeUninit needs no initialization.
    unsafe { out.set_len(len) };
    let base = SendPtr(out.as_mut_ptr());
    pool::run_blocks(len, &|s, e| {
        let slots = base.get();
        for i in s..e {
            // Safety: blocks tile the index range exactly once, and each
            // slot is written by exactly one thread.
            unsafe { (*slots.add(i)).write(p.get(i)) };
        }
    });
    // Safety: every slot was initialized above (run_blocks covers the
    // whole range or propagates the panic before we get here).
    unsafe {
        let mut out = ManuallyDrop::new(out);
        Vec::from_raw_parts(out.as_mut_ptr() as *mut P::Item, len, out.capacity())
    }
}

// ---- adapter producers ----------------------------------------------

/// See [`ParIter::map`].
pub struct Map<P, F> {
    p: P,
    f: F,
}

impl<P, R, F> Producer for Map<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn len(&self) -> usize {
        self.p.len()
    }
    unsafe fn get(&self, i: usize) -> R {
        // Safety: forwarded contract.
        (self.f)(unsafe { self.p.get(i) })
    }
}

/// See [`ParIter::enumerate`].
pub struct Enumerate<P> {
    p: P,
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    fn len(&self) -> usize {
        self.p.len()
    }
    unsafe fn get(&self, i: usize) -> (usize, P::Item) {
        // Safety: forwarded contract.
        (i, unsafe { self.p.get(i) })
    }
}

/// See [`ParIter::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        // Safety: forwarded contract; i < min(len a, len b).
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

/// Lazy `filter_map` chain end; only collection makes sense (the output
/// length is unknown until evaluated).
pub struct ParFilterMap<P, F> {
    p: P,
    f: F,
}

impl<P, R, F> ParFilterMap<P, F>
where
    P: Producer,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync,
{
    /// Evaluates in parallel, then keeps the `Some` values in index order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let opts = eval_to_vec(&Map {
            p: self.p,
            f: self.f,
        });
        C::from(opts.into_iter().flatten().collect::<Vec<R>>())
    }
}

// ---- leaf producers --------------------------------------------------

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T: Sync> {
    s: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.s.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        // Safety: i < len.
        unsafe { self.s.get_unchecked(i) }
    }
}

/// Producer over non-overlapping `&[T]` chunks.
pub struct ChunksProducer<'a, T: Sync> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.s.len());
        // Safety: i < len ⟹ lo < s.len() ≤ hi bound.
        unsafe { self.s.get_unchecked(lo..hi) }
    }
}

/// Producer over `&mut T` items of a slice. Sound because the driver
/// produces each index at most once, so the `&mut` borrows are disjoint.
pub struct SliceMutProducer<'a, T: Send> {
    base: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}
unsafe impl<T: Send> Send for SliceMutProducer<'_, T> {}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        // Safety: i < len and each index is produced once ⟹ disjoint.
        unsafe { &mut *self.base.add(i) }
    }
}

/// Producer over non-overlapping `&mut [T]` chunks.
pub struct ChunksMutProducer<'a, T: Send> {
    base: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}
unsafe impl<T: Send> Send for ChunksMutProducer<'_, T> {}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        // Safety: chunks are disjoint and each index is produced once.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(lo), hi - lo) }
    }
}

/// Producer that owns its items (backing store for
/// [`crate::IntoParallelIterator`]). Items are moved out one by one; items
/// never produced (e.g. the long tail of a mismatched `zip`, or a chain
/// dropped without a terminal) are leaked rather than dropped — acceptable
/// for this workspace, where every chain ends in a terminal and zip sides
/// have equal length.
pub struct VecProducer<T: Send> {
    buf: Vec<ManuallyDrop<T>>,
}

unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T: Send> VecProducer<T> {
    pub(crate) fn from_vec(v: Vec<T>) -> Self {
        // Safety: ManuallyDrop<T> is layout-transparent over T.
        let buf = unsafe {
            let mut v = ManuallyDrop::new(v);
            Vec::from_raw_parts(
                v.as_mut_ptr() as *mut ManuallyDrop<T>,
                v.len(),
                v.capacity(),
            )
        };
        VecProducer { buf }
    }
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.buf.len()
    }
    unsafe fn get(&self, i: usize) -> T {
        // Safety: i < len and each index is produced at most once, so the
        // value is moved out exactly once and never dropped in place.
        ManuallyDrop::into_inner(unsafe { std::ptr::read(self.buf.as_ptr().add(i)) })
    }
}

// ---- constructors used by lib.rs -------------------------------------

pub(crate) fn from_slice<T: Sync>(s: &[T]) -> ParIter<SliceProducer<'_, T>> {
    ParIter::new(SliceProducer { s })
}

pub(crate) fn from_chunks<T: Sync>(s: &[T], size: usize) -> ParIter<ChunksProducer<'_, T>> {
    assert!(size != 0, "chunk size must be non-zero");
    ParIter::new(ChunksProducer { s, size })
}

pub(crate) fn from_slice_mut<T: Send>(s: &mut [T]) -> ParIter<SliceMutProducer<'_, T>> {
    ParIter::new(SliceMutProducer {
        base: s.as_mut_ptr(),
        len: s.len(),
        _marker: PhantomData,
    })
}

pub(crate) fn from_chunks_mut<T: Send>(
    s: &mut [T],
    size: usize,
) -> ParIter<ChunksMutProducer<'_, T>> {
    assert!(size != 0, "chunk size must be non-zero");
    ParIter::new(ChunksMutProducer {
        base: s.as_mut_ptr(),
        len: s.len(),
        size,
        _marker: PhantomData,
    })
}

pub(crate) fn from_vec<T: Send>(v: Vec<T>) -> ParIter<VecProducer<T>> {
    ParIter::new(VecProducer::from_vec(v))
}
