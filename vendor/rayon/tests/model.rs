//! Exhaustive-interleaving model checks of the pool's concurrency
//! protocols (run by `xtask model`; see DESIGN.md §14 and MODELS.md).
//!
//! `sched_jitter_latch` drives the *production* latch code
//! (`set_sched_jitter` / `model_latch_env_jitter` / `model_jitter_probe`)
//! through the `crate::sync` facade. `pool_handoff` explores a faithful
//! miniature of `pool::dispatch` + `worker_loop` + `claim_units`: the
//! same broadcast-slot mutex/condvar discipline and the same SeqCst unit
//! counter, with the per-unit result writes (the `CollectGuard` slot
//! fills of `iter::eval_to_vec`) modeled as `RaceCell`s so any
//! interleaving in which a result write races another access — or a
//! written result fails to be visible to the dispatcher after the
//! `done_cv` handshake — is reported with a concrete trace.
#![cfg(feature = "model")]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hicond_model::shadow::{AtomicUsize, Condvar, Mutex, MutexGuard};
use hicond_model::{explore, spawn, Config, RaceCell, Report};
use rayon::pool::{model_jitter_probe, model_latch_env_jitter, set_sched_jitter};

/// `HICOND_MODEL_FULL=1` removes the schedule budgets and enlarges the
/// protocol instances (slower, run by `xtask model --full`).
fn full() -> bool {
    std::env::var_os("HICOND_MODEL_FULL").is_some()
}

fn finish(report: &Report, expected: &str) {
    eprintln!("{}", report.render());
    report.emit("rayon", expected);
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(g) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The `HICOND_SCHED_JITTER` latch: an explicit `set_sched_jitter`
/// racing the env-derived latch, with a concurrent lock-free reader.
/// Certifies the fix (writer-side mutex with re-check under the lock):
/// the explicit seed survives in every interleaving, and the two-word
/// state/seed pair is never observed torn.
#[test]
fn sched_jitter_latch() {
    let report = explore(Config::new("sched_jitter_latch"), || {
        let explicit = spawn(|| set_sched_jitter(Some(7)));
        let env = spawn(|| {
            let won = model_latch_env_jitter(Some(3));
            assert!(
                won == Some(3) || won == Some(7),
                "env latch returned a seed nobody wrote: {won:?}"
            );
        });
        // Lock-free reader racing both writers: unresolved is fine, but a
        // resolved probe must carry one of the two written seeds (a torn
        // state/seed pair would surface as Some(Some(0))).
        if let Some(resolved) = model_jitter_probe() {
            assert!(
                resolved == Some(7) || resolved == Some(3),
                "probe observed a torn latch: {resolved:?}"
            );
        }
        explicit.join();
        env.join();
        assert_eq!(
            model_jitter_probe(),
            Some(Some(7)),
            "explicit jitter seed was clobbered by the env latch"
        );
    });
    finish(&report, "pass");
    assert!(report.passed(), "{}", report.render());
}

/// Miniature of the broadcast slot guarded by `Pool::slot`.
struct MiniSlot {
    generation: u64,
    active: bool,
    units: usize,
    participants: usize,
    closing: bool,
}

/// Miniature of `Pool` plus the result buffer the units write into.
struct MiniPool {
    slot: Mutex<MiniSlot>,
    work_cv: Condvar,
    done_cv: Condvar,
    next_unit: AtomicUsize,
    results: Vec<RaceCell<u64>>,
}

/// Mirror of `claim_units`: claim unit indices from the SeqCst counter
/// until exhausted, writing each unit's result into its fixed slot.
fn claim(pool: &MiniPool, units: usize) {
    loop {
        let u = pool.next_unit.fetch_add(1, Ordering::SeqCst);
        if u >= units {
            break;
        }
        pool.results[u].set(u as u64 + 100);
    }
}

/// The task-handoff protocol: dispatcher installs a job in the broadcast
/// slot, a worker joins via `work_cv`, both claim units, the dispatcher
/// drains participants via `done_cv` and only then reads the results.
/// Certifies: no data race on any result slot (each unit executes
/// exactly once), no lost unit, every result visible to the dispatcher
/// after the handshake, and no deadlock or lost wakeup in the
/// mutex/condvar discipline — the properties the lifetime-erasure
/// soundness argument in `pool.rs` rests on.
#[test]
fn pool_handoff() {
    let units: usize = if full() { 3 } else { 2 };
    let mut cfg = Config::new("pool_handoff");
    if !full() {
        cfg = cfg.with_max_schedules(500_000);
    }
    let report = explore(cfg, move || {
        let pool = Arc::new(MiniPool {
            slot: Mutex::new(MiniSlot {
                generation: 0,
                active: false,
                units: 0,
                participants: 0,
                closing: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_unit: AtomicUsize::new(0),
            results: (0..units).map(|_| RaceCell::new(0)).collect(),
        });
        // Worker: mirror of `worker_loop`.
        let worker = {
            let pool = Arc::clone(&pool);
            spawn(move || {
                let mut last_gen = 0u64;
                let mut slot = lock(&pool.slot);
                loop {
                    if slot.active && slot.generation != last_gen && slot.participants < 2 {
                        last_gen = slot.generation;
                        slot.participants += 1;
                        let units = slot.units;
                        drop(slot);
                        claim(&pool, units);
                        slot = lock(&pool.slot);
                        slot.participants -= 1;
                        if slot.participants == 0 {
                            pool.done_cv.notify_all();
                        }
                    } else if slot.closing {
                        return;
                    } else {
                        slot = wait(&pool.work_cv, slot);
                    }
                }
            })
        };
        // Dispatcher (this thread): mirror of `dispatch`.
        {
            let mut slot = lock(&pool.slot);
            pool.next_unit.store(0, Ordering::SeqCst);
            slot.generation = slot.generation.wrapping_add(1);
            slot.active = true;
            slot.units = units;
            slot.participants = 1; // the dispatcher itself
            pool.work_cv.notify_all();
            drop(slot);
            claim(&pool, units);
            let mut slot = lock(&pool.slot);
            slot.participants -= 1;
            while slot.participants > 0 {
                slot = wait(&pool.done_cv, slot);
            }
            slot.active = false;
            slot.closing = true;
            pool.work_cv.notify_all();
        }
        // Post-handshake: every unit ran exactly once and its result is
        // visible here (RaceCell reports any racing access as a
        // counterexample rather than letting the assertion read garbage).
        for u in 0..units {
            assert_eq!(
                pool.results[u].get(),
                u as u64 + 100,
                "unit {u} result lost or torn"
            );
        }
        worker.join();
    });
    finish(&report, "pass");
    assert!(report.passed(), "{}", report.render());
}
