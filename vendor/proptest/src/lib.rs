//! Offline shim for the subset of [proptest](https://docs.rs/proptest) used
//! by the `hicond` workspace.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this crate. It implements the pieces the test suites
//! actually use — the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_filter` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], `prop_assert*` and
//! `prop_assume` — with deterministic generation seeded per test name.
//!
//! Differences from upstream, deliberate for this environment:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   panic message of the underlying `assert!`; it is not minimized.
//! * **Determinism.** Each test's stream is seeded from a hash of the test
//!   function name, so failures reproduce exactly across runs.

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG driving strategy generation (xoshiro256++-style
    /// core seeded via SplitMix64 from an FNV-1a hash of the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from a test name; same name ⇒ same stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        /// Seeds from a raw `u64` via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "TestRng::below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values. `generate` returns `None` when a
    /// filter rejected the draw (the runner then retries the whole case).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value, or `None` on filter rejection.
        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`; `reason` is reported if the
        /// filter starves generation.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Chains a dependent strategy.
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // A bounded local retry keeps sparse filters cheap without
            // starving the case-level retry loop.
            for _ in 0..64 {
                if let Some(v) = self.inner.generate(rng) {
                    if (self.pred)(&v) {
                        return Some(v);
                    }
                } else {
                    return None;
                }
            }
            let _ = self.reason;
            None
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<O::Value> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Type-erased strategy (reference-counted; cheap to clone).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            self.inner.generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = (rng.next_u64() as u128) % span;
                    Some((self.start as u128).wrapping_add(v) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let v = (rng.next_u64() as u128) % span;
                    Some(((lo as u128) + v) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.next_f64() * (self.end - self.start);
            Some(if v >= self.end { self.start } else { v })
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty inclusive f64 range strategy");
            Some(lo + rng.next_f64() * (hi - lo))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, spanning many magnitudes.
            let m = rng.next_f64() * 2.0 - 1.0;
            let e = (rng.next_u64() % 61) as i32 - 30;
            m * (2f64).powi(e)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` collection strategy.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Acceptable size arguments: exact `usize` or `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` resolves.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Glob-import surface: `use proptest::prelude::*;`.
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a property-level condition (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-level inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the assumption fails.
///
/// Works because [`proptest!`] runs each case body inside a closure; the
/// `return` exits only that case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// The property-test entry macro. Supports the upstream surface used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(0.0..1.0f64, 5)) {
///         prop_assert!(x < 10 && v.len() == 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                while __ran < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "proptest '{}': generation starved after {} attempts \
                         ({} cases ran)",
                        stringify!($name),
                        __attempts,
                        __ran
                    );
                    let ($($pat,)+) = (
                        $(
                            match $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut __rng,
                            ) {
                                Some(v) => v,
                                None => continue,
                            },
                        )+
                    );
                    __ran += 1;
                    let mut __case = move || $body;
                    __case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs(n: usize) -> impl Strategy<Value = Vec<(usize, f64)>> {
        prop::collection::vec((0..n, 0.0..1.0f64), 0..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 2usize..9, (a, b) in (0u32..4, -1.0..1.0f64)) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn vec_strategy_respects_bounds(v in pairs(6)) {
            prop_assert!(v.len() < 10);
            for (i, f) in v {
                prop_assert!(i < 6);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn map_and_filter_compose(
            v in prop::collection::vec(0usize..100, 1..20)
                .prop_map(|mut v| { v.sort_unstable(); v })
                .prop_filter("nonempty", |v| !v.is_empty())
        ) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn assume_discards(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_generates(seed in any::<u64>(), flag in any::<bool>()) {
            // Smoke: both arms must be reachable across the run; checked
            // statistically by the determinism test below instead.
            let _ = (seed, flag);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("fixed");
        let mut b = crate::test_runner::TestRng::from_name("fixed");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
