//! Persistence for preconditioner state: [`Encode`]/[`Decode`] impls for
//! the full [`LaplacianSolver`] stack, the solver cache key, and the
//! build-or-load front door ([`load_or_build`]).
//!
//! The design goal is *bitwise reproducibility*: every `f64` in the solver
//! state (Laplacian values, inverse degrees, Cholesky factors, options)
//! travels by bit pattern, so a loaded solver is indistinguishable from the
//! one that was saved — down to the exact PCG residual trajectory it
//! produces. Decoding validates all cross-structure dimensions (level
//! chaining, component covers, assignment ranges) so a decoded solver can
//! never index out of bounds; corrupt bytes surface as
//! [`ArtifactError::Malformed`], never a panic.

use crate::multilevel::{MlLevel, MultilevelOptions, MultilevelSteiner};
use crate::solver::{LaplacianSolver, SolverOptions};
use crate::steiner::GroundedLaplacianSolver;
use hicond_artifact::{
    kinds, ArtifactError, ArtifactReader, ArtifactWriter, Cache, Decode, Decoder, Encode, Encoder,
    Fnv64, FORMAT_VERSION,
};
use hicond_core::{hash_hierarchy_options, HierarchyOptions};
use hicond_graph::{graph_fingerprint, Graph};
use hicond_linalg::dense::CholeskyFactor;
use hicond_linalg::CsrMatrix;

/// Section tag for the solver payload inside a [`kinds::SOLVER`] container.
pub const SOLVER_SECTION: u32 = 1;

impl Encode for MultilevelOptions {
    fn encode(&self, enc: &mut Encoder) {
        self.hierarchy.encode(enc);
        enc.put_bool(self.smoothing);
        enc.put_f64(self.omega);
    }
}

impl Decode for MultilevelOptions {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        Ok(MultilevelOptions {
            hierarchy: HierarchyOptions::decode(dec)?,
            smoothing: dec.bool()?,
            omega: dec.f64()?,
        })
    }
}

impl Encode for SolverOptions {
    fn encode(&self, enc: &mut Encoder) {
        self.multilevel.encode(enc);
        enc.put_f64(self.rel_tol);
        enc.put_usize(self.max_iter);
    }
}

impl Decode for SolverOptions {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        Ok(SolverOptions {
            multilevel: MultilevelOptions::decode(dec)?,
            rel_tol: dec.f64()?,
            max_iter: dec.usize_()?,
        })
    }
}

impl Encode for GroundedLaplacianSolver {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        self.comps.encode(enc);
        self.factors.encode(enc);
    }
}

impl Decode for GroundedLaplacianSolver {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n = dec.usize_()?;
        let comps: Vec<Vec<usize>> = Vec::decode(dec)?;
        let factors: Vec<Option<CholeskyFactor>> = Vec::decode(dec)?;
        if comps.len() != factors.len() {
            return Err(ArtifactError::Malformed(format!(
                "{} components but {} factors",
                comps.len(),
                factors.len()
            )));
        }
        // Components must partition a subset of 0..n with no repeats —
        // solve() writes x[v] for every listed vertex. Dedup by sorting the
        // listed vertices so memory stays proportional to the decoded data
        // rather than the (attacker-chosen) vertex count n.
        let mut listed: Vec<usize> = comps.iter().flatten().copied().collect();
        listed.sort_unstable();
        let mut prev: Option<usize> = None;
        for &v in &listed {
            if prev == Some(v) {
                return Err(ArtifactError::Malformed(format!(
                    "vertex {v} appears in two components"
                )));
            }
            prev = Some(v);
        }
        for (i, (comp, factor)) in comps.iter().zip(&factors).enumerate() {
            for &v in comp {
                if v >= n {
                    return Err(ArtifactError::Malformed(format!(
                        "component {i} lists vertex {v} >= n = {n}"
                    )));
                }
            }
            match factor {
                Some(f) if comp.len() < 2 => {
                    return Err(ArtifactError::Malformed(format!(
                        "component {i} of size {} carries a factor of dim {}",
                        comp.len(),
                        f.dim()
                    )));
                }
                Some(f) if f.dim() != comp.len() - 1 => {
                    return Err(ArtifactError::Malformed(format!(
                        "component {i} of size {} has factor of dim {} (expected {})",
                        comp.len(),
                        f.dim(),
                        comp.len() - 1
                    )));
                }
                None if comp.len() >= 2 => {
                    return Err(ArtifactError::Malformed(format!(
                        "component {i} of size {} lacks a factor",
                        comp.len()
                    )));
                }
                _ => {}
            }
        }
        Ok(GroundedLaplacianSolver { comps, factors, n })
    }
}

impl Encode for MlLevel {
    fn encode(&self, enc: &mut Encoder) {
        self.lap.encode(enc);
        enc.put_f64_slice(&self.inv_d);
        enc.put_u32_slice(&self.assignment);
        enc.put_usize(self.num_clusters);
    }
}

impl Decode for MlLevel {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let lap = CsrMatrix::decode(dec)?;
        let inv_d = dec.f64_vec()?;
        let assignment = dec.u32_vec()?;
        let num_clusters = dec.usize_()?;
        let n = lap.nrows();
        if lap.ncols() != n {
            return Err(ArtifactError::Malformed(format!(
                "level Laplacian is {}x{}, not square",
                n,
                lap.ncols()
            )));
        }
        if inv_d.len() != n || assignment.len() != n {
            return Err(ArtifactError::Malformed(format!(
                "level arrays disagree: lap {n}, inv_d {}, assignment {}",
                inv_d.len(),
                assignment.len()
            )));
        }
        for (v, &c) in assignment.iter().enumerate() {
            if c as usize >= num_clusters {
                return Err(ArtifactError::Malformed(format!(
                    "vertex {v} assigned to cluster {c} >= num_clusters {num_clusters}"
                )));
            }
        }
        Ok(MlLevel {
            lap,
            inv_d,
            assignment,
            num_clusters,
        })
    }
}

impl Encode for MultilevelSteiner {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        enc.put_bool(self.smoothing);
        enc.put_f64(self.omega);
        self.levels.encode(enc);
        self.coarse.encode(enc);
    }
}

impl Decode for MultilevelSteiner {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n = dec.usize_()?;
        let smoothing = dec.bool()?;
        let omega = dec.f64()?;
        let levels: Vec<MlLevel> = Vec::decode(dec)?;
        let coarse = GroundedLaplacianSolver::decode(dec)?;
        // The cycle() recursion hands each level's coarse vector (length
        // num_clusters) to the next level as its residual, so the chain of
        // dimensions must be consistent end to end.
        let mut expect = n;
        for (i, level) in levels.iter().enumerate() {
            if level.lap.nrows() != expect {
                return Err(ArtifactError::Malformed(format!(
                    "level {i} has {} vertices, expected {expect}",
                    level.lap.nrows()
                )));
            }
            expect = level.num_clusters;
        }
        if coarse.n != expect {
            return Err(ArtifactError::Malformed(format!(
                "coarse solver covers {} vertices, expected {expect}",
                coarse.n
            )));
        }
        Ok(MultilevelSteiner {
            levels,
            coarse,
            smoothing,
            omega,
            n,
            block_ws: Default::default(),
        })
    }
}

impl Encode for LaplacianSolver {
    fn encode(&self, enc: &mut Encoder) {
        self.lap.encode(enc);
        self.pre.encode(enc);
        enc.put_u32_slice(&self.comp_labels);
        enc.put_usize(self.num_components);
        self.opts.encode(enc);
    }
}

impl Decode for LaplacianSolver {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let lap = CsrMatrix::decode(dec)?;
        let pre = MultilevelSteiner::decode(dec)?;
        let comp_labels = dec.u32_vec()?;
        let num_components = dec.usize_()?;
        let opts = SolverOptions::decode(dec)?;
        let n = lap.nrows();
        if lap.ncols() != n {
            return Err(ArtifactError::Malformed(format!(
                "solver Laplacian is {}x{}, not square",
                n,
                lap.ncols()
            )));
        }
        if pre.n != n {
            return Err(ArtifactError::Malformed(format!(
                "preconditioner covers {} vertices, Laplacian has {n}",
                pre.n
            )));
        }
        if comp_labels.len() != n {
            return Err(ArtifactError::Malformed(format!(
                "{} component labels for {n} vertices",
                comp_labels.len()
            )));
        }
        // Labels must be dense in 0..num_components: solve() divides by
        // per-component vertex counts. Density forces num_components <= n,
        // so reject larger claims before sizing anything by them.
        if num_components > n {
            return Err(ArtifactError::Malformed(format!(
                "{num_components} components over {n} vertices: some component must be empty"
            )));
        }
        let mut used = vec![false; num_components.min(n)];
        for (v, &c) in comp_labels.iter().enumerate() {
            match used.get_mut(c as usize) {
                Some(slot) => *slot = true,
                None => {
                    return Err(ArtifactError::Malformed(format!(
                        "vertex {v} labeled component {c} >= num_components {num_components}"
                    )));
                }
            }
        }
        if let Some(empty) = used.iter().position(|&u| !u) {
            return Err(ArtifactError::Malformed(format!(
                "component {empty} is empty"
            )));
        }
        Ok(LaplacianSolver {
            lap,
            pre,
            comp_labels,
            num_components,
            opts,
        })
    }
}

/// The content-addressed cache key for a solver artifact: graph
/// fingerprint + every build option that shapes the preconditioner +
/// container format version. Thread count does not participate (builds are
/// bitwise thread-count independent), so one entry serves any parallelism.
pub fn solver_cache_key(g: &Graph, opts: &SolverOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("hicond-solver-key");
    h.write_u32(FORMAT_VERSION);
    h.write_u64(graph_fingerprint(g));
    hash_hierarchy_options(&mut h, &opts.multilevel.hierarchy);
    h.write_bool(opts.multilevel.smoothing);
    h.write_f64(opts.multilevel.omega);
    h.write_f64(opts.rel_tol);
    h.write_usize(opts.max_iter);
    h.finish()
}

/// Serializes a solver into a [`kinds::SOLVER`] container.
pub fn encode_solver(solver: &LaplacianSolver) -> Vec<u8> {
    let mut w = ArtifactWriter::new(kinds::SOLVER);
    w.section(SOLVER_SECTION, solver);
    w.finish()
}

/// Parses, checksum-verifies, and decodes a solver container.
pub fn decode_solver(bytes: &[u8]) -> Result<LaplacianSolver, ArtifactError> {
    let reader = ArtifactReader::parse(bytes)?;
    reader.expect_kind(kinds::SOLVER)?;
    reader.decode_section(SOLVER_SECTION)
}

/// Where a solver came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverSource {
    /// Deserialized from a cache entry.
    Loaded,
    /// Built from scratch (and published to the cache).
    Built,
}

/// Loads the solver for `(g, opts)` from `cache` if a valid entry exists,
/// otherwise builds it and publishes the artifact atomically. A corrupt
/// cache entry is treated as a miss (counted under
/// `artifact/cache_corrupt`) and rebuilt over.
pub fn load_or_build(
    cache: &Cache,
    g: &Graph,
    opts: &SolverOptions,
) -> Result<(LaplacianSolver, SolverSource), ArtifactError> {
    let key = solver_cache_key(g, opts);
    match cache.load(kinds::SOLVER, key) {
        Ok(Some(bytes)) => {
            let _span = hicond_obs::span("artifact_load");
            match decode_solver(&bytes) {
                Ok(solver) => return Ok((solver, SolverSource::Loaded)),
                Err(_) => {
                    // Parsed container of the right kind but stale payload
                    // semantics; fall through to rebuild.
                    hicond_obs::counter_add("artifact/cache_corrupt", 1);
                }
            }
        }
        Ok(None) => {}
        Err(_) => {
            hicond_obs::counter_add("artifact/cache_corrupt", 1);
        }
    }
    let solver = {
        let _span = hicond_obs::span("artifact_build");
        LaplacianSolver::new(g, opts)
    };
    cache.store(kinds::SOLVER, key, &encode_solver(&solver))?;
    Ok((solver, SolverSource::Built))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_linalg::vector::deflate_constant;

    fn sample_graph() -> Graph {
        generators::grid2d(14, 14, |u, v| 1.0 + ((u + 2 * v) % 5) as f64)
    }

    fn small_opts() -> SolverOptions {
        SolverOptions {
            multilevel: MultilevelOptions {
                hierarchy: HierarchyOptions {
                    coarse_size: 16,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn consistent_rhs(n: usize) -> Vec<f64> {
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 19) as f64 - 9.0).collect();
        deflate_constant(&mut b);
        b
    }

    #[test]
    fn solver_roundtrips_to_identical_solutions() {
        let g = sample_graph();
        let opts = small_opts();
        let built = LaplacianSolver::new(&g, &opts);
        let bytes = encode_solver(&built);
        let loaded = decode_solver(&bytes).unwrap();
        let b = consistent_rhs(g.num_vertices());
        let s1 = built.solve(&b).unwrap();
        let s2 = loaded.solve(&b).unwrap();
        assert_eq!(s1.iterations, s2.iterations);
        assert_eq!(
            s1.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s2.x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "loaded solver must be bitwise identical"
        );
    }

    #[test]
    fn every_byte_flip_rejected() {
        let g = generators::grid2d(6, 6, |_, _| 1.0);
        let bytes = encode_solver(&LaplacianSolver::new(&g, &small_opts()));
        // Sample positions across the whole container (every 7th byte,
        // covering header, table, and payload) with two flip patterns.
        for i in (0..bytes.len()).step_by(7) {
            for flip in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(
                    decode_solver(&bad).is_err(),
                    "flip {flip:#x} at byte {i} accepted"
                );
            }
        }
        for cut in (0..bytes.len()).step_by(11) {
            assert!(decode_solver(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn cache_key_sensitivity() {
        let g = sample_graph();
        let opts = small_opts();
        let base = solver_cache_key(&g, &opts);
        assert_eq!(base, solver_cache_key(&g, &opts), "key must be stable");

        let mut o = opts;
        o.multilevel.smoothing = !o.multilevel.smoothing;
        assert_ne!(base, solver_cache_key(&g, &o));
        let mut o = opts;
        o.multilevel.hierarchy.fixed_degree.seed += 1;
        assert_ne!(base, solver_cache_key(&g, &o));
        let mut o = opts;
        o.rel_tol *= 0.5;
        assert_ne!(base, solver_cache_key(&g, &o));
        let g2 = generators::grid2d(14, 14, |_, _| 1.0);
        assert_ne!(base, solver_cache_key(&g2, &opts));
        // Thread configuration must NOT split the cache.
        let mut o = opts;
        o.multilevel.hierarchy.fixed_degree.parallel = false;
        assert_eq!(base, solver_cache_key(&g, &o));
    }

    #[test]
    fn load_or_build_hits_after_build() {
        let dir = std::env::temp_dir().join(format!("hicond-precond-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let g = sample_graph();
        let opts = small_opts();
        let (s1, src1) = load_or_build(&cache, &g, &opts).unwrap();
        assert_eq!(src1, SolverSource::Built);
        let (s2, src2) = load_or_build(&cache, &g, &opts).unwrap();
        assert_eq!(src2, SolverSource::Loaded);
        let b = consistent_rhs(g.num_vertices());
        let x1 = s1.solve(&b).unwrap().x;
        let x2 = s2.solve(&b).unwrap().x;
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entry_rebuilt_not_propagated() {
        let dir =
            std::env::temp_dir().join(format!("hicond-precond-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let g = generators::grid2d(8, 8, |_, _| 1.0);
        let opts = small_opts();
        let (_, src) = load_or_build(&cache, &g, &opts).unwrap();
        assert_eq!(src, SolverSource::Built);
        // Corrupt the entry on disk.
        let key = solver_cache_key(&g, &opts);
        let path = cache.path_for(kinds::SOLVER, key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Next load_or_build must rebuild, not fail or return garbage.
        let (s, src) = load_or_build(&cache, &g, &opts).unwrap();
        assert_eq!(src, SolverSource::Built);
        let b = consistent_rhs(64);
        assert!(s.solve(&b).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
