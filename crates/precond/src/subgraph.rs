//! The subgraph preconditioner baseline (paper Remarks 1–3).
//!
//! Construction: a spanning tree (maximum weight per \[15\], or low-stretch
//! per \[9\]) enriched with the highest-stretch off-tree edges. Solving the
//! preconditioner system uses the "greedy Gaussian elimination of degree
//! one and two nodes" the paper's Remark 2 describes — an inherently
//! *sequential* chain of dependent eliminations, recorded once at setup
//! and replayed as forward/backward substitution per application — with a
//! grounded dense Cholesky on the small remaining core.

use crate::steiner::GroundedLaplacianSolver;
use hicond_core::lowstretch::{low_stretch_tree, tree_stretches, LowStretchOptions};
use hicond_core::spanning::mst_max_kruskal;
use hicond_core::SpanningTreeKind;
use hicond_graph::Graph;
use hicond_linalg::Preconditioner;
use std::collections::HashMap;

/// Options for [`SubgraphPreconditioner`].
#[derive(Debug, Clone, Copy)]
pub struct SubgraphOptions {
    /// Spanning tree kind.
    pub tree: SpanningTreeKind,
    /// Off-tree edges added, as a fraction of `n`.
    pub extra_fraction: f64,
    /// Seed for the low-stretch tree.
    pub seed: u64,
    /// Safety cap for the dense core factorization.
    pub core_dense_limit: usize,
}

impl Default for SubgraphOptions {
    fn default() -> Self {
        SubgraphOptions {
            tree: SpanningTreeKind::MaxWeight,
            extra_fraction: 0.02,
            seed: 31,
            core_dense_limit: 2000,
        }
    }
}

/// One recorded elimination of a degree ≤ 2 vertex.
#[derive(Debug, Clone)]
struct ElimStep {
    v: u32,
    pivot: f64,
    /// Neighbors (and weights) of `v` at elimination time: 1 or 2 entries.
    nbrs: Vec<(u32, f64)>,
}

/// Subgraph preconditioner with recorded partial elimination.
pub struct SubgraphPreconditioner {
    n: usize,
    steps: Vec<ElimStep>,
    core_vertices: Vec<u32>,
    core_solver: Option<GroundedLaplacianSolver>,
    /// Number of off-tree edges actually used.
    pub extra_edges: usize,
    /// Size of the un-eliminated core.
    pub core_size: usize,
}

impl SubgraphPreconditioner {
    /// Builds the preconditioner subgraph `B ⊆ g` and records its partial
    /// elimination.
    pub fn new(g: &Graph, opts: &SubgraphOptions) -> Self {
        let n = g.num_vertices();
        // --- Subgraph selection (tree + high-stretch extras) -------------
        let tree_ids = match opts.tree {
            SpanningTreeKind::MaxWeight => mst_max_kruskal(g),
            SpanningTreeKind::LowStretch => low_stretch_tree(
                g,
                &LowStretchOptions {
                    seed: opts.seed,
                    ..Default::default()
                },
            ),
        };
        let mut in_b = vec![false; g.num_edges()];
        for &e in &tree_ids {
            in_b[e] = true;
        }
        let extra_target = ((n as f64) * opts.extra_fraction).ceil() as usize;
        let mut extra_edges = 0usize;
        if extra_target > 0 && tree_ids.len() < g.num_edges() {
            let stretches = tree_stretches(g, &tree_ids);
            let mut off: Vec<usize> = (0..g.num_edges()).filter(|&e| !in_b[e]).collect();
            // total_cmp: stretches are finite, so this matches partial_cmp
            // while staying panic-free on any input.
            off.sort_by(|&a, &b| stretches[b].total_cmp(&stretches[a]));
            for &e in off.iter().take(extra_target) {
                in_b[e] = true;
                extra_edges += 1;
            }
        }
        let b = g.filter_edges(|i, _| in_b[i]);

        // --- Greedy degree-1/2 elimination (recorded) --------------------
        let mut rows: Vec<HashMap<u32, f64>> = (0..n)
            .map(|v| {
                b.neighbors(v)
                    .map(|(u, w, _)| (u as u32, w))
                    .collect::<HashMap<u32, f64>>()
            })
            .collect();
        let mut eliminated = vec![false; n];
        let mut queue: Vec<usize> = (0..n)
            .filter(|&v| rows[v].len() <= 2 && !rows[v].is_empty())
            .collect();
        let mut steps = Vec::new();
        while let Some(v) = queue.pop() {
            if eliminated[v] || rows[v].is_empty() || rows[v].len() > 2 {
                continue;
            }
            let nbrs: Vec<(u32, f64)> = rows[v].iter().map(|(&u, &w)| (u, w)).collect();
            let pivot: f64 = nbrs.iter().map(|&(_, w)| w).sum();
            eliminated[v] = true;
            for &(u, _) in &nbrs {
                rows[u as usize].remove(&(v as u32));
            }
            if nbrs.len() == 2 {
                // Series fill edge between the two neighbors.
                let (a, wa) = nbrs[0];
                let (c, wc) = nbrs[1];
                let fill = wa * wc / pivot;
                *rows[a as usize].entry(c).or_insert(0.0) += fill;
                *rows[c as usize].entry(a).or_insert(0.0) += fill;
            }
            for &(u, _) in &nbrs {
                let deg = rows[u as usize].len();
                if deg >= 1 && deg <= 2 && !eliminated[u as usize] {
                    queue.push(u as usize);
                }
            }
            rows[v].clear();
            steps.push(ElimStep {
                v: v as u32,
                pivot,
                nbrs,
            });
        }

        // --- Core assembly ------------------------------------------------
        let core_vertices: Vec<u32> = (0..n as u32)
            .filter(|&v| !eliminated[v as usize] && !rows[v as usize].is_empty())
            .collect();
        let core_size = core_vertices.len();
        assert!(
            core_size <= opts.core_dense_limit,
            "subgraph core has {core_size} vertices (> {}); add fewer extra edges",
            opts.core_dense_limit
        );
        let mut core_index = vec![u32::MAX; n];
        for (i, &v) in core_vertices.iter().enumerate() {
            core_index[v as usize] = i as u32;
        }
        let core_solver = if core_size >= 2 {
            let mut cb = hicond_graph::GraphBuilder::new(core_size);
            for (i, &v) in core_vertices.iter().enumerate() {
                for (&u, &w) in &rows[v as usize] {
                    let j = core_index[u as usize];
                    debug_assert!(j != u32::MAX, "core neighbor must be core");
                    if (j as usize) > i {
                        cb.add_edge(i, j as usize, w);
                    }
                }
            }
            Some(GroundedLaplacianSolver::new(
                &cb.build(),
                opts.core_dense_limit,
            ))
        } else {
            None
        };
        SubgraphPreconditioner {
            n,
            steps,
            core_vertices,
            core_solver,
            extra_edges,
            core_size,
        }
    }
}

impl Preconditioner for SubgraphPreconditioner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        // Forward substitution over the recorded eliminations.
        let mut y = r.to_vec();
        for s in &self.steps {
            let yv = y[s.v as usize];
            for &(u, w) in &s.nbrs {
                y[u as usize] += (w / s.pivot) * yv;
            }
        }
        // Core solve.
        let mut x = vec![0.0; self.n];
        if let Some(solver) = &self.core_solver {
            let rhs: Vec<f64> = self.core_vertices.iter().map(|&v| y[v as usize]).collect();
            let sol = solver.solve(&rhs);
            for (i, &v) in self.core_vertices.iter().enumerate() {
                x[v as usize] = sol[i];
            }
        }
        // Backward substitution in reverse elimination order.
        for s in self.steps.iter().rev() {
            let mut acc = y[s.v as usize];
            for &(u, w) in &s.nbrs {
                acc += w * x[u as usize];
            }
            x[s.v as usize] = acc / s.pivot;
        }
        // Zero-mean (Laplacian kernel) normalization.
        hicond_linalg::vector::deflate_constant(&mut x);
        z.copy_from_slice(&x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::{generators, laplacian};
    use hicond_linalg::cg::{cg_solve, pcg_solve, CgOptions};
    use hicond_linalg::vector::{deflate_constant, dot, norm2};

    fn consistent_rhs(n: usize, seed: u64) -> Vec<f64> {
        let mut b: Vec<f64> = (0..n)
            .map(|i| (((i as u64 + seed) * 2654435761) % 1009) as f64 / 500.0 - 1.0)
            .collect();
        deflate_constant(&mut b);
        b
    }

    #[test]
    fn apply_is_exact_inverse_of_subgraph_laplacian() {
        // With extra_fraction 0 the subgraph is the MST; M⁻¹ must solve
        // the tree Laplacian exactly.
        let g = generators::triangulated_grid(5, 5, 1);
        let opts = SubgraphOptions {
            extra_fraction: 0.0,
            ..Default::default()
        };
        let pre = SubgraphPreconditioner::new(&g, &opts);
        let tree_ids = mst_max_kruskal(&g);
        let tree = hicond_core::spanning::subgraph_of_edges(&g, &tree_ids);
        let lt = laplacian(&tree);
        let b = consistent_rhs(g.num_vertices(), 3);
        let x = pre.apply(&b);
        let lx = lt.mul(&x);
        let mut diff: Vec<f64> = lx.iter().zip(&b).map(|(a, c)| a - c).collect();
        deflate_constant(&mut diff);
        assert!(norm2(&diff) < 1e-9, "residual {}", norm2(&diff));
    }

    #[test]
    fn apply_exact_with_extras() {
        // Same property with off-tree extras: M⁻¹ solves L_B exactly.
        let g = generators::triangulated_grid(6, 6, 2);
        let opts = SubgraphOptions {
            extra_fraction: 0.1,
            ..Default::default()
        };
        let pre = SubgraphPreconditioner::new(&g, &opts);
        assert!(pre.extra_edges > 0);
        // Rebuild B the same way to verify.
        let tree_ids = mst_max_kruskal(&g);
        let mut in_b = vec![false; g.num_edges()];
        for &e in &tree_ids {
            in_b[e] = true;
        }
        let stretches = hicond_core::lowstretch::tree_stretches(&g, &tree_ids);
        let mut off: Vec<usize> = (0..g.num_edges()).filter(|&e| !in_b[e]).collect();
        off.sort_by(|&a, &b| stretches[b].partial_cmp(&stretches[a]).unwrap());
        let target = ((g.num_vertices() as f64) * 0.1).ceil() as usize;
        for &e in off.iter().take(target) {
            in_b[e] = true;
        }
        let bgraph = g.filter_edges(|i, _| in_b[i]);
        let lb = laplacian(&bgraph);
        let b = consistent_rhs(g.num_vertices(), 7);
        let x = pre.apply(&b);
        let lx = lb.mul(&x);
        let mut diff: Vec<f64> = lx.iter().zip(&b).map(|(a, c)| a - c).collect();
        deflate_constant(&mut diff);
        assert!(norm2(&diff) < 1e-8, "residual {}", norm2(&diff));
    }

    #[test]
    fn symmetric_positive() {
        let g = generators::oct_like_grid3d(5, 5, 5, 4, generators::OctParams::default());
        let pre = SubgraphPreconditioner::new(&g, &SubgraphOptions::default());
        let n = g.num_vertices();
        let x = consistent_rhs(n, 1);
        let y = consistent_rhs(n, 2);
        let mx = pre.apply(&x);
        let my = pre.apply(&y);
        assert!((dot(&y, &mx) - dot(&x, &my)).abs() < 1e-8 * dot(&y, &mx).abs().max(1.0));
        assert!(dot(&x, &mx) > 0.0);
    }

    #[test]
    fn pcg_with_subgraph_beats_plain() {
        let g = generators::oct_like_grid3d(7, 7, 7, 6, generators::OctParams::default());
        let a = laplacian(&g);
        let b = consistent_rhs(g.num_vertices(), 5);
        let opts = CgOptions {
            rel_tol: 1e-8,
            max_iter: 4000,
            record_residuals: false,
        };
        let plain = cg_solve(&a, &b, &opts);
        let pre = SubgraphPreconditioner::new(&g, &SubgraphOptions::default());
        let fast = pcg_solve(&a, &pre, &b, &opts);
        assert!(fast.converged);
        assert!(
            fast.iterations < plain.iterations,
            "subgraph {} vs plain {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn pure_tree_core_is_trivial() {
        let g = generators::random_tree(200, 9, 0.5, 2.0);
        let pre = SubgraphPreconditioner::new(
            &g,
            &SubgraphOptions {
                extra_fraction: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(pre.core_size, 0);
        // Exactly inverts the tree Laplacian -> PCG converges immediately.
        let a = laplacian(&g);
        let b = consistent_rhs(200, 11);
        let res = pcg_solve(&a, &pre, &b, &CgOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 3, "{}", res.iterations);
    }

    #[test]
    fn core_size_grows_with_extras() {
        let g = generators::grid2d(12, 12, |_, _| 1.0);
        let small = SubgraphPreconditioner::new(
            &g,
            &SubgraphOptions {
                extra_fraction: 0.02,
                ..Default::default()
            },
        );
        let large = SubgraphPreconditioner::new(
            &g,
            &SubgraphOptions {
                extra_fraction: 0.2,
                ..Default::default()
            },
        );
        assert!(large.core_size >= small.core_size);
        assert!(large.extra_edges > small.extra_edges);
    }
}
