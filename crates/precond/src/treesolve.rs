//! Exact linear-time solves of forest Laplacians.
//!
//! For a tree, the Laplacian system `L x = b` (with `b` summing to zero on
//! every component) is solved by one bottom-up pass accumulating subtree
//! sums of `b` — the electrical-flow view: the current through each tree
//! edge equals the net injection below it — and one top-down pass turning
//! edge currents into potentials. The returned solution has zero mean per
//! component.

use hicond_graph::forest::RootedForest;
use hicond_graph::Graph;

/// Solves `L_F x = b` for the Laplacian of the forest `f`.
///
/// `b` must be consistent (sum zero on every component, up to `tol`);
/// panics otherwise. The solution is normalized to zero mean per component.
pub fn solve_forest(f: &RootedForest, b: &[f64], tol: f64) -> Vec<f64> {
    let n = f.num_vertices();
    assert_eq!(b.len(), n);
    // Bottom-up: subtree sums of b.
    let mut subtree_sum = b.to_vec();
    let pre = f.preorder();
    for i in (0..n).rev() {
        let v = pre[i] as usize;
        if let Some(p) = f.parent(v) {
            subtree_sum[p] += subtree_sum[v];
        }
    }
    // Top-down: x_v = x_parent + S_v / w(v, parent).
    let mut x = vec![0.0; n];
    for &v in pre {
        let v = v as usize;
        match f.parent(v) {
            None => {
                assert!(
                    subtree_sum[v].abs() <= tol,
                    "solve_forest: rhs not consistent on component of root {v} (residual {})",
                    subtree_sum[v]
                );
                x[v] = 0.0;
            }
            Some(p) => {
                x[v] = x[p] + subtree_sum[v] / f.parent_weight(v);
            }
        }
    }
    // Zero-mean per component.
    let mut comp_sum = vec![0.0; n];
    let mut comp_cnt = vec![0usize; n];
    let mut comp_root = vec![0usize; n];
    for &v in pre {
        let v = v as usize;
        comp_root[v] = match f.parent(v) {
            None => v,
            Some(p) => comp_root[p],
        };
        comp_sum[comp_root[v]] += x[v];
        comp_cnt[comp_root[v]] += 1;
    }
    for v in 0..n {
        x[v] -= comp_sum[comp_root[v]] / comp_cnt[comp_root[v]] as f64;
    }
    x
}

/// Convenience: solves the forest Laplacian of a `Graph` that is a forest.
pub fn solve_forest_graph(g: &Graph, b: &[f64], tol: f64) -> Vec<f64> {
    // audit: allow(panic-path) — documented input contract: the graph must be a forest
    let f = RootedForest::from_graph(g).expect("solve_forest_graph: input has a cycle");
    solve_forest(&f, b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::{generators, laplacian};
    use hicond_linalg::LinearOperator;

    fn check_solution(g: &Graph, b: &[f64]) {
        let x = solve_forest_graph(g, b, 1e-9);
        let l = laplacian(g);
        let lx = l.apply(&x);
        for (i, (got, want)) in lx.iter().zip(b).enumerate() {
            assert!(
                (got - want).abs() < 1e-8 * want.abs().max(1.0),
                "residual at {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn two_vertices() {
        let g = Graph::from_edges(2, &[(0, 1, 4.0)]);
        check_solution(&g, &[2.0, -2.0]);
    }

    #[test]
    fn weighted_path() {
        let g = generators::path(6, |i| 1.0 + i as f64);
        let mut b: Vec<f64> = (0..6).map(|i| (i as f64).sin()).collect();
        let mean = b.iter().sum::<f64>() / 6.0;
        for v in &mut b {
            *v -= mean;
        }
        check_solution(&g, &b);
    }

    #[test]
    fn random_trees() {
        for seed in 0..10 {
            let g = generators::random_tree(80, seed, 0.1, 10.0);
            let mut b: Vec<f64> = (0..80).map(|i| ((i * 31 + 7) % 13) as f64 - 6.0).collect();
            let mean = b.iter().sum::<f64>() / 80.0;
            for v in &mut b {
                *v -= mean;
            }
            check_solution(&g, &b);
        }
    }

    #[test]
    fn forest_components_independent() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 2.0), (3, 4, 1.0)]);
        // Consistent per component.
        let b = vec![1.0, -1.0, 2.0, -1.0, -1.0];
        check_solution(&g, &b);
        // Zero mean per component.
        let x = solve_forest_graph(&g, &b, 1e-9);
        assert!((x[0] + x[1]).abs() < 1e-12);
        assert!((x[2] + x[3] + x[4]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not consistent")]
    fn inconsistent_rhs_rejected() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]);
        solve_forest_graph(&g, &[1.0, 0.0], 1e-9);
    }

    #[test]
    fn star_solution_closed_form() {
        // Star center 0, leaves 1..4, unit weights; b = e1 - e2.
        let g = generators::star(5, |_| 1.0);
        let b = vec![0.0, 1.0, -1.0, 0.0, 0.0];
        let x = solve_forest_graph(&g, &b, 1e-12);
        // x_1 - x_0 = 1, x_2 - x_0 = -1, x_3 = x_4 = x_0.
        assert!((x[1] - x[0] - 1.0).abs() < 1e-12);
        assert!((x[2] - x[0] + 1.0).abs() < 1e-12);
        assert!((x[3] - x[0]).abs() < 1e-12);
    }
}
