//! The two-level Steiner preconditioner (Definition 3.1, Theorem 3.5,
//! Remark 2).
//!
//! Given a decomposition `P` of the graph `A`, the Steiner graph is
//! `S_P = Q + Σ Tᵢ` — quotient plus volume-stars. Preconditioning with
//! `S_P` means applying the inverse of its Schur complement `B` with
//! respect to the Steiner (root) vertices, and because the leaf block of
//! `S_P` is diagonal this collapses to
//! `B⁻¹ r = D⁻¹ r + R · Q⁺ (Rᵀ r)`: a pointwise scaling, a cluster-wise
//! sum, one solve on the (ρ-times smaller) quotient Laplacian, and a
//! broadcast back — all embarrassingly parallel except the coarse solve,
//! exactly as Remark 2 describes.

use hicond_graph::{laplacian, Graph, Partition};
use hicond_linalg::dense::CholeskyFactor;
use hicond_linalg::{CooBuilder, CsrMatrix, Preconditioner};
use rayon::prelude::*;

/// Exact solver for a (possibly singular) graph Laplacian via grounded
/// dense Cholesky, one factor per connected component. The action equals
/// the Moore–Penrose pseudoinverse on consistent right-hand sides and is
/// symmetric positive semidefinite on all of `Rⁿ` (inputs and outputs are
/// projected to zero mean per component).
#[derive(Debug)]
pub struct GroundedLaplacianSolver {
    pub(crate) comps: Vec<Vec<usize>>,
    pub(crate) factors: Vec<Option<CholeskyFactor>>,
    pub(crate) n: usize,
}

impl GroundedLaplacianSolver {
    /// Factors the Laplacian of `g`. Cost O(Σ |componentᵢ|³); intended for
    /// coarse grids — panics above `dense_limit` vertices as a guard.
    pub fn new(g: &Graph, dense_limit: usize) -> Self {
        let n = g.num_vertices();
        assert!(
            n <= dense_limit,
            "GroundedLaplacianSolver: {n} vertices exceeds dense limit {dense_limit}"
        );
        let (labels, ncomp) = hicond_graph::connectivity::connected_components(g);
        let mut comps = vec![Vec::new(); ncomp];
        for v in 0..n {
            comps[labels[v] as usize].push(v);
        }
        let lap = laplacian(g);
        let factors = comps
            .iter()
            .map(|comp| {
                if comp.len() < 2 {
                    return None;
                }
                // Grounded: drop the last vertex of the component. The
                // grounded block of a connected component is SPD, so the
                // factorization cannot fail; the debug assert documents
                // the invariant without a release panic path.
                let keep = &comp[..comp.len() - 1];
                let sub = lap.principal_submatrix(keep);
                let f = CholeskyFactor::factor(&sub.to_dense());
                debug_assert!(f.is_some(), "grounded Laplacian block must be SPD");
                f
            })
            .collect();
        GroundedLaplacianSolver { comps, factors, n }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies the pseudoinverse: projects `b` to zero mean per component,
    /// solves, and returns the zero-mean solution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut x = vec![0.0; self.n];
        for (comp, factor) in self.comps.iter().zip(&self.factors) {
            let Some(f) = factor else { continue };
            let mean = comp.iter().map(|&v| b[v]).sum::<f64>() / comp.len() as f64;
            let rhs: Vec<f64> = comp[..comp.len() - 1]
                .iter()
                .map(|&v| b[v] - mean)
                .collect();
            let sol = f.solve(&rhs);
            // Grounded vertex gets 0; shift to zero mean.
            let shift = sol.iter().sum::<f64>() / comp.len() as f64;
            for (i, &v) in comp[..comp.len() - 1].iter().enumerate() {
                x[v] = sol[i] - shift;
            }
            if let Some(&grounded) = comp.last() {
                x[grounded] = -shift;
            }
        }
        x
    }
}

/// The two-level Steiner preconditioner with an exact quotient solve.
#[derive(Debug)]
pub struct SteinerPreconditioner {
    inv_d: Vec<f64>,
    assignment: Vec<u32>,
    num_clusters: usize,
    coarse: GroundedLaplacianSolver,
}

impl SteinerPreconditioner {
    /// Builds the preconditioner for `g` from the decomposition `p`.
    ///
    /// The quotient Laplacian is factored densely (grounded Cholesky);
    /// `coarse_dense_limit` guards against accidentally huge quotients —
    /// use [`crate::MultilevelSteiner`] beyond it.
    pub fn new(g: &Graph, p: &Partition, coarse_dense_limit: usize) -> Self {
        assert_eq!(g.num_vertices(), p.num_vertices());
        p.debug_invariants();
        let quotient = p.quotient_graph(g);
        let coarse = GroundedLaplacianSolver::new(&quotient, coarse_dense_limit);
        let inv_d: Vec<f64> = g
            .volumes()
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        SteinerPreconditioner {
            inv_d,
            assignment: p.assignment().to_vec(),
            num_clusters: p.num_clusters(),
            coarse,
        }
    }

    /// Number of Steiner (quotient) vertices `m`.
    pub fn num_steiner_vertices(&self) -> usize {
        self.num_clusters
    }
}

impl Preconditioner for SteinerPreconditioner {
    fn dim(&self) -> usize {
        self.inv_d.len()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        // Cluster-wise sums (Rᵀ r).
        let mut coarse_rhs = vec![0.0; self.num_clusters];
        for (v, &c) in self.assignment.iter().enumerate() {
            coarse_rhs[c as usize] += r[v];
        }
        let y = self.coarse.solve(&coarse_rhs);
        // z = D⁻¹ r + R y (pointwise; parallel for large n).
        let inv_d = &self.inv_d;
        let assignment = &self.assignment;
        if r.len() >= 1 << 15 {
            z.par_iter_mut().enumerate().for_each(|(v, zv)| {
                *zv = inv_d[v] * r[v] + y[assignment[v] as usize];
            });
        } else {
            for (v, zv) in z.iter_mut().enumerate() {
                *zv = inv_d[v] * r[v] + y[assignment[v] as usize];
            }
        }
    }
}

/// The explicit `(n + m)`-vertex Steiner graph Laplacian `S_P` of
/// Definition 3.1: leaves `0..n` are the graph vertices, roots `n..n+m`
/// the clusters; star edges `(u, root(u))` carry `vol_A(u)` and quotient
/// edges `(rᵢ, rⱼ)` carry `cap(Vᵢ, Vⱼ)`. Used to verify Theorem 3.5
/// support bounds via explicit Schur complements.
pub fn steiner_laplacian(g: &Graph, p: &Partition) -> CsrMatrix {
    let n = g.num_vertices();
    let m = p.num_clusters();
    let mut b = CooBuilder::with_capacity(n + m, n + m, 4 * n + 4 * g.num_edges());
    for v in 0..n {
        let vol = g.vol(v);
        if vol <= 0.0 {
            continue;
        }
        let root = n + p.cluster_of(v);
        b.push(v, v, vol);
        b.push(root, root, vol);
        b.push_sym(v, root, -vol);
    }
    let q = p.quotient_graph(g);
    for e in q.edges() {
        let (i, j) = (n + e.u as usize, n + e.v as usize);
        b.push(i, i, e.w);
        b.push(j, j, e.w);
        b.push_sym(i, j, -e.w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
    use hicond_graph::generators;
    use hicond_linalg::cg::{cg_solve, pcg_solve, CgOptions};
    use hicond_linalg::schur::schur_complement;
    use hicond_linalg::vector::deflate_constant;
    use hicond_support::support_matrices_dense;

    fn decomposition(g: &Graph, k: usize) -> Partition {
        decompose_fixed_degree(
            g,
            &FixedDegreeOptions {
                k,
                ..Default::default()
            },
        )
    }

    #[test]
    fn apply_matches_schur_inverse() {
        // The fast apply must equal solving the dense Schur complement B.
        let g = generators::grid2d(5, 4, |u, v| 1.0 + ((u * v) % 3) as f64);
        let p = decomposition(&g, 4);
        let pre = SteinerPreconditioner::new(&g, &p, 100);
        let sp = steiner_laplacian(&g, &p);
        let n = g.num_vertices();
        let steiner_ids: Vec<usize> = (n..n + p.num_clusters()).collect();
        let (b, _) = schur_complement(&sp, &steiner_ids);
        // Random consistent rhs.
        let mut r: Vec<f64> = (0..n).map(|i| ((i * 17 + 3) % 11) as f64 - 5.0).collect();
        deflate_constant(&mut r);
        let z = pre.apply(&r);
        // Check B z = r (up to the constant shift).
        let bz = b.mul(&z);
        let mut diff: Vec<f64> = bz.iter().zip(&r).map(|(a, c)| a - c).collect();
        deflate_constant(&mut diff);
        let err = hicond_linalg::norm2(&diff);
        assert!(err < 1e-8, "B·apply(r) != r: residual {err}");
    }

    #[test]
    fn theorem_3_5_support_bound() {
        // σ(B_S, A) ≤ 3(1 + 2/φ³) with φ the measured min closure
        // conductance of the decomposition.
        for (nx, ny, k) in [(4, 4, 3), (5, 5, 4), (6, 4, 4)] {
            let g = generators::grid2d(nx, ny, |u, v| 1.0 + ((u + v) % 4) as f64);
            let p = decomposition(&g, k);
            let q = p.quality(&g, 20);
            assert!(q.phi_exact, "need exact φ for the bound check");
            let phi = q.phi;
            let sp = steiner_laplacian(&g, &p);
            let n = g.num_vertices();
            let steiner_ids: Vec<usize> = (n..n + p.num_clusters()).collect();
            let (b, _) = schur_complement(&sp, &steiner_ids);
            let a = laplacian(&g);
            let sigma = support_matrices_dense(&b, &a);
            let bound = 3.0 * (1.0 + 2.0 / (phi * phi * phi));
            assert!(
                sigma <= bound + 1e-6,
                "σ(B,A) = {sigma} exceeds Thm 3.5 bound {bound} (φ = {phi})"
            );
        }
    }

    #[test]
    fn gremban_direction_support() {
        // σ(A, B) is the easy direction: every A-edge routes through a
        // 3-hop Steiner path. Verify it is modest (≤ 3·max congestion-ish);
        // concretely check σ(A, B) ≤ 4 on a small grid.
        let g = generators::grid2d(4, 4, |_, _| 1.0);
        let p = decomposition(&g, 4);
        let sp = steiner_laplacian(&g, &p);
        let n = g.num_vertices();
        let steiner_ids: Vec<usize> = (n..n + p.num_clusters()).collect();
        let (b, _) = schur_complement(&sp, &steiner_ids);
        let a = laplacian(&g);
        let sigma = support_matrices_dense(&a, &b);
        assert!(sigma <= 4.0 + 1e-6, "σ(A,B) = {sigma}");
    }

    #[test]
    fn pcg_beats_plain_cg_on_oct_grid() {
        let g = generators::oct_like_grid3d(7, 7, 7, 5, generators::OctParams::default());
        let n = g.num_vertices();
        let a = laplacian(&g);
        let mut rhs: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
        deflate_constant(&mut rhs);
        let opts = CgOptions {
            rel_tol: 1e-8,
            max_iter: 3000,
            record_residuals: true,
        };
        let plain = cg_solve(&a, &rhs, &opts);
        let p = decomposition(&g, 8);
        let pre = SteinerPreconditioner::new(&g, &p, 400);
        let fast = pcg_solve(&a, &pre, &rhs, &opts);
        assert!(fast.converged, "PCG did not converge");
        assert!(
            fast.iterations * 2 < plain.iterations.max(1),
            "Steiner PCG {} vs plain CG {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn steiner_laplacian_is_laplacian() {
        let g = generators::grid2d(3, 3, |_, _| 1.0);
        let p = decomposition(&g, 4);
        let sp = steiner_laplacian(&g, &p);
        let ones = vec![1.0; sp.nrows()];
        let y = sp.mul(&ones);
        for v in y {
            assert!(v.abs() < 1e-10);
        }
        assert!(sp.is_symmetric(1e-12));
    }

    #[test]
    fn grounded_solver_pseudoinverse() {
        let g = generators::cycle(7, |i| 1.0 + i as f64);
        let solver = GroundedLaplacianSolver::new(&g, 100);
        let mut b: Vec<f64> = (0..7).map(|i| i as f64).collect();
        deflate_constant(&mut b);
        let x = solver.solve(&b);
        let l = laplacian(&g);
        let lx = l.mul(&x);
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-9);
        }
        // Zero mean.
        assert!(x.iter().sum::<f64>().abs() < 1e-9);
    }

    #[test]
    fn grounded_solver_disconnected() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 2.0)]);
        let solver = GroundedLaplacianSolver::new(&g, 100);
        let b = vec![1.0, -1.0, 3.0, -3.0, 0.0];
        let x = solver.solve(&b);
        assert!((x[0] - x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - x[3] - 1.5).abs() < 1e-12);
        assert_eq!(x[4], 0.0);
    }
}
