//! Multilevel Steiner preconditioning over a laminar hierarchy
//! (paper Section 3, Remark 3: "the recursive computation of [φ, ρ]
//! decompositions leads to a laminar decomposition and a corresponding
//! hierarchy of Steiner preconditioners").
//!
//! Two symmetric-positive-definite cycles are provided:
//!
//! * **additive** (`smoothing = false`): `M_ℓ⁻¹ = D_ℓ⁻¹ + R_ℓ M_{ℓ+1}⁻¹ R_ℓᵀ`
//!   — the direct recursion of the two-level Steiner apply, BPX-flavored;
//! * **V-cycle** (`smoothing = true`): damped-Jacobi pre/post smoothing
//!   around the coarse correction, `v₁ = ωD⁻¹r`,
//!   `v₂ = v₁ + R M₊(Rᵀ(r − Av₁))`, `z = v₂ + ωD⁻¹(r − Av₂)` — symmetric
//!   by construction, and in practice much stronger on deep hierarchies.
//!
//! The coarsest level is solved exactly (grounded dense Cholesky).

use crate::steiner::GroundedLaplacianSolver;
use hicond_core::{build_hierarchy, Hierarchy, HierarchyOptions};
use hicond_graph::{laplacian, Graph};
use hicond_linalg::vector::dot_with_scratch;
use hicond_linalg::{CsrMatrix, DenseBlock, LinearOperator, Preconditioner};
use std::sync::Mutex;

/// Options for [`MultilevelSteiner`].
#[derive(Debug, Clone, Copy)]
pub struct MultilevelOptions {
    /// Hierarchy construction (per-level clustering, coarse size).
    pub hierarchy: HierarchyOptions,
    /// Enable damped-Jacobi pre/post smoothing (V-cycle).
    pub smoothing: bool,
    /// Jacobi damping factor ω.
    pub omega: f64,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            hierarchy: HierarchyOptions::default(),
            smoothing: true,
            omega: 2.0 / 3.0,
        }
    }
}

pub(crate) struct MlLevel {
    pub(crate) lap: CsrMatrix,
    pub(crate) inv_d: Vec<f64>,
    pub(crate) assignment: Vec<u32>,
    pub(crate) num_clusters: usize,
}

/// Reusable buffers for the block hierarchy walk
/// ([`MultilevelSteiner::apply_block`]), one entry per level.
///
/// At serve-batch widths these blocks run to hundreds of kilobytes —
/// past the allocator's mmap threshold — so a fresh
/// allocate/fault/free cycle on every apply costs more than the
/// arithmetic it feeds. The buffers are sized on first use and kept
/// across applies; a width change (a different batch size) triggers
/// one resize.
#[derive(Default)]
pub(crate) struct BlockWs {
    k: usize,
    levels: Vec<LevelWs>,
}

struct LevelWs {
    /// Smoother iterate `v₁` (level size × k).
    v1: DenseBlock,
    /// Level SpMV output `A v₁` (level size × k).
    av: DenseBlock,
    /// Restricted residual handed down (num_clusters × k).
    rc: DenseBlock,
    /// Coarse correction coming back up (num_clusters × k).
    co: DenseBlock,
}

impl BlockWs {
    /// Moves the cached workspace out of its slot, leaving an empty one.
    /// The lock is held only for the swap — never across the hierarchy
    /// walk — so `block_ws` stays a leaf in the lock-order graph.
    fn take(slot: &Mutex<BlockWs>) -> BlockWs {
        match slot.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        }
    }

    /// Puts a workspace back for the next apply (last writer wins). A
    /// poisoned lock is reusable: every pass rewrites the buffers it
    /// reads before reading them.
    fn store(slot: &Mutex<BlockWs>, ws: BlockWs) {
        match slot.lock() {
            Ok(mut g) => *g = ws,
            Err(poisoned) => *poisoned.into_inner() = ws,
        }
    }

    fn ensure(&mut self, levels: &[MlLevel], k: usize) {
        if self.k == k && self.levels.len() == levels.len() {
            return;
        }
        self.k = k;
        self.levels = levels
            .iter()
            .map(|l| LevelWs {
                v1: DenseBlock::new(l.lap.nrows(), k),
                av: DenseBlock::new(l.lap.nrows(), k),
                rc: DenseBlock::new(l.num_clusters, k),
                co: DenseBlock::new(l.num_clusters, k),
            })
            .collect();
    }
}

/// Multilevel Steiner preconditioner.
pub struct MultilevelSteiner {
    pub(crate) levels: Vec<MlLevel>,
    pub(crate) coarse: GroundedLaplacianSolver,
    pub(crate) smoothing: bool,
    pub(crate) omega: f64,
    pub(crate) n: usize,
    /// Block-apply workspace; see [`BlockWs`]. Never serialized — the
    /// artifact codec rebuilds an empty one on decode.
    pub(crate) block_ws: Mutex<BlockWs>,
}

impl MultilevelSteiner {
    /// Builds the hierarchy for `g` and assembles the preconditioner.
    pub fn new(g: &Graph, opts: &MultilevelOptions) -> Self {
        // Children ("hierarchy" from build_hierarchy, "assemble" below)
        // nest under this span in the phase tree.
        let _span = hicond_obs::span("precondition");
        let hierarchy = build_hierarchy(g, &opts.hierarchy);
        Self::from_hierarchy(g, &hierarchy, opts)
    }

    /// Assembles from an existing hierarchy (level 0 must match `g`).
    pub fn from_hierarchy(g: &Graph, h: &Hierarchy, opts: &MultilevelOptions) -> Self {
        let _span = hicond_obs::span("assemble");
        assert_eq!(h.levels[0].graph.num_vertices(), g.num_vertices());
        let mut levels = Vec::new();
        for level in &h.levels[..h.levels.len() - 1] {
            let p = level
                .partition
                .as_ref()
                // audit: allow(panic-path) — build_hierarchy guarantees non-coarsest levels carry partitions
                .expect("non-coarsest level must carry a partition");
            levels.push(MlLevel {
                lap: laplacian(&level.graph),
                inv_d: level
                    .graph
                    .volumes()
                    .iter()
                    .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
                    .collect(),
                assignment: p.assignment().to_vec(),
                num_clusters: p.num_clusters(),
            });
        }
        let coarse_graph = &h.levels[h.levels.len() - 1].graph;
        let coarse = GroundedLaplacianSolver::new(
            coarse_graph,
            opts.hierarchy.coarse_size.max(coarse_graph.num_vertices()),
        );
        MultilevelSteiner {
            levels,
            coarse,
            smoothing: opts.smoothing,
            omega: opts.omega,
            n: g.num_vertices(),
            block_ws: Mutex::new(BlockWs::default()),
        }
    }

    /// Number of levels including the coarsest.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    fn cycle(&self, level: usize, r: &[f64]) -> Vec<f64> {
        if level == self.levels.len() {
            return self.coarse.solve(r);
        }
        let l = &self.levels[level];
        let restrict = |res: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; l.num_clusters];
            for (v, &c) in l.assignment.iter().enumerate() {
                out[c as usize] += res[v];
            }
            out
        };
        if !self.smoothing {
            // Additive: D⁻¹ r + R M₊ Rᵀ r.
            let coarse = self.cycle(level + 1, &restrict(r));
            return r
                .iter()
                .enumerate()
                .map(|(v, &rv)| l.inv_d[v] * rv + coarse[l.assignment[v] as usize])
                .collect();
        }
        // V-cycle with damped Jacobi smoothing.
        let n = r.len();
        let mut v1: Vec<f64> = (0..n).map(|v| self.omega * l.inv_d[v] * r[v]).collect();
        let mut av = vec![0.0; n];
        l.lap.mul_into_with(&v1, &mut av, Default::default());
        let r2: Vec<f64> = (0..n).map(|v| r[v] - av[v]).collect();
        let coarse = self.cycle(level + 1, &restrict(&r2));
        for (v, val) in v1.iter_mut().enumerate() {
            *val += coarse[l.assignment[v] as usize];
        }
        l.lap.mul_into_with(&v1, &mut av, Default::default());
        (0..n)
            .map(|v| v1[v] + self.omega * l.inv_d[v] * (r[v] - av[v]))
            .collect()
    }

    /// Level-0 cycle writing straight into the caller's output buffer.
    ///
    /// The recursion below level 0 is unchanged ([`Self::cycle`]); only the
    /// outermost combination — the one full-length sweep PCG pays on every
    /// apply — is restructured to skip the intermediate `Vec` and the
    /// `copy_from_slice` sweep. Each output element is computed by the
    /// exact same elementwise expression as in `cycle`, so the bits in `z`
    /// are identical to the allocate-then-copy path.
    fn cycle_into(&self, r: &[f64], z: &mut [f64]) {
        if self.levels.is_empty() {
            z.copy_from_slice(&self.coarse.solve(r));
            return;
        }
        let l = &self.levels[0];
        let restrict = |res: &[f64]| -> Vec<f64> {
            let mut out = vec![0.0; l.num_clusters];
            for (v, &c) in l.assignment.iter().enumerate() {
                // Hierarchy construction keeps every assignment entry
                // in bounds: c < num_clusters == out.len().
                out[c as usize] += res[v];
            }
            out
        };
        if !self.smoothing {
            let coarse = self.cycle(1, &restrict(r));
            for (v, (zv, &rv)) in z.iter_mut().zip(r).enumerate() {
                // bounds: assignment < num_clusters == coarse.len().
                *zv = l.inv_d[v] * rv + coarse[l.assignment[v] as usize];
            }
            return;
        }
        let n = r.len();
        let mut v1: Vec<f64> = (0..n).map(|v| self.omega * l.inv_d[v] * r[v]).collect();
        let mut av = vec![0.0; n];
        l.lap.mul_into_with(&v1, &mut av, Default::default());
        let r2: Vec<f64> = (0..n).map(|v| r[v] - av[v]).collect();
        let coarse = self.cycle(1, &restrict(&r2));
        for (v, val) in v1.iter_mut().enumerate() {
            // bounds: assignment < num_clusters == coarse.len().
            *val += coarse[l.assignment[v] as usize];
        }
        l.lap.mul_into_with(&v1, &mut av, Default::default());
        for (v, zv) in z.iter_mut().enumerate() {
            *zv = v1[v] + self.omega * l.inv_d[v] * (r[v] - av[v]);
        }
    }

    /// Multi-column cycle: one walk of the hierarchy serves every active
    /// column of `rb`, writing results into the matching columns of `out`.
    /// Per level, the restriction table, the level Laplacian (via its
    /// band-major block SpMV), the inverse-degree vector, and the coarse
    /// Cholesky factors are each traversed **once per block** instead of
    /// once per column — the shared-traversal amortization the block-PCG
    /// engine exists for. All intermediates live in the caller's
    /// [`BlockWs`] (one [`LevelWs`] per level, `ws[0]` for this level),
    /// so a steady-state apply performs no large allocations.
    ///
    /// Every per-column arithmetic expression, and its evaluation order,
    /// is copied verbatim from [`Self::cycle`]/[`Self::cycle_into`] (the
    /// level SpMV goes through `apply_block`, whose per-column output is
    /// contractually bitwise equal to `mul_into_with`; the restriction
    /// accumulates the summand `r[v] − (Av₁)[v]` in the same vertex order
    /// the solo path materializes it), so each column of the result is
    /// bitwise identical to a single-vector cycle on that column.
    fn cycle_block_into(
        &self,
        level: usize,
        rb: &DenseBlock,
        out: &mut DenseBlock,
        active: &[usize],
        ws: &mut [LevelWs],
    ) {
        if level == self.levels.len() {
            for &j in active {
                // One coarse solve per column, all sharing the factors.
                out.col_mut(j)
                    .copy_from_slice(&self.coarse.solve(rb.col(j)));
            }
            return;
        }
        let l = &self.levels[level];
        let (lw, rest) = ws
            .split_first_mut()
            // audit: allow(panic-path) — BlockWs::ensure sizes one entry per level
            .expect("block workspace depth matches hierarchy depth");
        if !self.smoothing {
            // Additive: D⁻¹ r + R M₊ Rᵀ r over one shared coarse block.
            for &j in active {
                lw.rc.col_mut(j).fill(0.0);
                let (rj, cj) = (rb.col(j), lw.rc.col_mut(j));
                for (v, &c) in l.assignment.iter().enumerate() {
                    // Hierarchy construction keeps every assignment entry
                    // in bounds: c < num_clusters == cj.len().
                    cj[c as usize] += rj[v];
                }
            }
            self.cycle_block_into(level + 1, &lw.rc, &mut lw.co, active, rest);
            for &j in active {
                let (rj, cj, oj) = (rb.col(j), lw.co.col(j), out.col_mut(j));
                for (v, zv) in oj.iter_mut().enumerate() {
                    // bounds: assignment < num_clusters == cj.len().
                    *zv = l.inv_d[v] * rj[v] + cj[l.assignment[v] as usize];
                }
            }
            return;
        }
        // V-cycle with damped Jacobi smoothing, block-wide.
        for &j in active {
            let (rj, vj) = (rb.col(j), lw.v1.col_mut(j));
            for (v, val) in vj.iter_mut().enumerate() {
                *val = self.omega * l.inv_d[v] * rj[v];
            }
        }
        l.lap.apply_block(&lw.v1, &mut lw.av, active);
        // Restrict the smoothed residual r − Av₁ without materializing
        // it: the accumulated summand is rounded once either way, so the
        // coarse right-hand side bits match the solo path's.
        for &j in active {
            lw.rc.col_mut(j).fill(0.0);
            let (rj, aj, cj) = (rb.col(j), lw.av.col(j), lw.rc.col_mut(j));
            for (v, &c) in l.assignment.iter().enumerate() {
                // bounds: assignment < num_clusters == cj.len().
                cj[c as usize] += rj[v] - aj[v];
            }
        }
        self.cycle_block_into(level + 1, &lw.rc, &mut lw.co, active, rest);
        for &j in active {
            let (cj, vj) = (lw.co.col(j), lw.v1.col_mut(j));
            for (v, val) in vj.iter_mut().enumerate() {
                // bounds: assignment < num_clusters == cj.len().
                *val += cj[l.assignment[v] as usize];
            }
        }
        l.lap.apply_block(&lw.v1, &mut lw.av, active);
        for &j in active {
            let (rj, aj, vj, oj) = (rb.col(j), lw.av.col(j), lw.v1.col(j), out.col_mut(j));
            for (v, zv) in oj.iter_mut().enumerate() {
                *zv = vj[v] + self.omega * l.inv_d[v] * (rj[v] - aj[v]);
            }
        }
    }
}

impl Preconditioner for MultilevelSteiner {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        let _span = hicond_obs::span("precond_apply");
        hicond_obs::counter_add("precond/ml_applies", 1);
        self.cycle_into(r, z);
    }

    fn apply_dot_into(&self, r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
        let _span = hicond_obs::span("precond_apply");
        hicond_obs::counter_add("precond/ml_applies", 1);
        hicond_obs::counter_add("precond/fused_applies", 1);
        // The fused entry point writes z in place (no intermediate vector,
        // no copy sweep) and computes rᵀz with the standard chunked kernel
        // — the same function the default trait sequence uses, so the
        // override is bitwise-transparent by construction.
        self.cycle_into(r, z);
        dot_with_scratch(r, z, partials)
    }

    fn apply_block(&self, r: &DenseBlock, z: &mut DenseBlock, active: &[usize]) {
        let _span = hicond_obs::span("precond_apply");
        hicond_obs::counter_add("precond/ml_applies", active.len() as u64);
        hicond_obs::counter_add("precond/block_applies", 1);
        assert_eq!(r.n(), self.n, "apply_block: r column length");
        assert_eq!(z.n(), self.n, "apply_block: z column length");
        assert_eq!(r.k(), z.k(), "apply_block: block widths");
        // Take the workspace out of its slot instead of holding the lock
        // across the hierarchy walk: the walk calls into the level
        // operators, and a lock held across a deep call tree is exactly
        // the shape the lock-order analyzer refuses to certify. The lock
        // is only ever held for the swap itself (see BlockWs::take/store).
        // Contention is benign — a second block solve racing on one
        // shared preconditioner takes an empty workspace, allocates its
        // own buffers, and the last put-back wins.
        let mut ws = BlockWs::take(&self.block_ws);
        ws.ensure(&self.levels, r.k());
        // The walk reads active columns of `r` and writes the matching
        // columns of `z` in place — no pack/scatter copies, and after the
        // first apply at a given width, no block allocations at all.
        self.cycle_block_into(0, r, z, active, &mut ws.levels);
        BlockWs::store(&self.block_ws, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_linalg::cg::{cg_solve, pcg_solve, CgOptions};
    use hicond_linalg::vector::{deflate_constant, dot};

    fn consistent_rhs(n: usize) -> Vec<f64> {
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 29 + 5) % 17) as f64 - 8.0).collect();
        deflate_constant(&mut b);
        b
    }

    #[test]
    fn symmetric_operator() {
        // xᵀ M⁻¹ y == yᵀ M⁻¹ x is required for PCG correctness.
        let g = generators::grid2d(12, 12, |u, v| 1.0 + ((u * v) % 5) as f64);
        for smoothing in [false, true] {
            let m = MultilevelSteiner::new(
                &g,
                &MultilevelOptions {
                    hierarchy: hicond_core::HierarchyOptions {
                        coarse_size: 10,
                        ..Default::default()
                    },
                    smoothing,
                    ..Default::default()
                },
            );
            let n = g.num_vertices();
            let mut x = consistent_rhs(n);
            let mut y: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) % 7) as f64 - 3.0).collect();
            deflate_constant(&mut y);
            x[0] += 0.5;
            deflate_constant(&mut x);
            let mx = m.apply(&x);
            let my = m.apply(&y);
            let lhs = dot(&y, &mx);
            let rhs = dot(&x, &my);
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "smoothing={smoothing}: asymmetric ({lhs} vs {rhs})"
            );
        }
    }

    #[test]
    fn positive_on_nonconstant_vectors() {
        let g = generators::grid2d(10, 10, |_, _| 1.0);
        for smoothing in [false, true] {
            let m = MultilevelSteiner::new(
                &g,
                &MultilevelOptions {
                    hierarchy: hicond_core::HierarchyOptions {
                        coarse_size: 8,
                        ..Default::default()
                    },
                    smoothing,
                    ..Default::default()
                },
            );
            for seed in 0..5 {
                let mut x: Vec<f64> = (0..100)
                    .map(|i| (((i as u64 + seed) * 2654435761) % 1000) as f64 / 500.0 - 1.0)
                    .collect();
                deflate_constant(&mut x);
                let mx = m.apply(&x);
                assert!(dot(&x, &mx) > 0.0, "not positive definite");
            }
        }
    }

    #[test]
    fn multilevel_pcg_converges_fast() {
        let g = generators::oct_like_grid3d(8, 8, 8, 9, generators::OctParams::default());
        let n = g.num_vertices();
        let a = laplacian(&g);
        let b = consistent_rhs(n);
        let opts = CgOptions {
            rel_tol: 1e-8,
            max_iter: 2000,
            record_residuals: false,
        };
        let plain = cg_solve(&a, &b, &opts);
        let m = MultilevelSteiner::new(
            &g,
            &MultilevelOptions {
                hierarchy: hicond_core::HierarchyOptions {
                    coarse_size: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert!(m.num_levels() >= 2);
        let fast = pcg_solve(&a, &m, &b, &opts);
        assert!(fast.converged);
        assert!(
            fast.iterations * 2 < plain.iterations.max(1),
            "multilevel {} vs plain {}",
            fast.iterations,
            plain.iterations
        );
    }

    #[test]
    fn smoothing_helps_on_deep_hierarchies() {
        let g = generators::grid2d(40, 40, |_, _| 1.0);
        let a = laplacian(&g);
        let b = consistent_rhs(1600);
        let opts = CgOptions {
            rel_tol: 1e-8,
            max_iter: 2000,
            record_residuals: false,
        };
        let hierarchy = hicond_core::HierarchyOptions {
            coarse_size: 16,
            ..Default::default()
        };
        let additive = MultilevelSteiner::new(
            &g,
            &MultilevelOptions {
                hierarchy,
                smoothing: false,
                omega: 2.0 / 3.0,
            },
        );
        let vcycle = MultilevelSteiner::new(
            &g,
            &MultilevelOptions {
                hierarchy,
                smoothing: true,
                omega: 2.0 / 3.0,
            },
        );
        let ra = pcg_solve(&a, &additive, &b, &opts);
        let rv = pcg_solve(&a, &vcycle, &b, &opts);
        assert!(ra.converged && rv.converged);
        assert!(
            rv.iterations <= ra.iterations,
            "V-cycle {} vs additive {}",
            rv.iterations,
            ra.iterations
        );
    }

    #[test]
    fn block_apply_matches_single_apply_bitwise() {
        // The shared-traversal block cycle must reproduce apply_into bit
        // for bit on every active column, for both cycle flavors, deep and
        // single-level hierarchies, and strict active subsets.
        let g = generators::grid2d(20, 20, |u, v| 1.0 + ((u + 2 * v) % 5) as f64);
        let n = g.num_vertices();
        for (smoothing, coarse_size) in [(true, 16), (false, 16), (true, 1000)] {
            let m = MultilevelSteiner::new(
                &g,
                &MultilevelOptions {
                    hierarchy: hicond_core::HierarchyOptions {
                        coarse_size,
                        ..Default::default()
                    },
                    smoothing,
                    ..Default::default()
                },
            );
            let cols: Vec<Vec<f64>> = (0..3)
                .map(|s| {
                    let mut c: Vec<f64> = (0..n)
                        .map(|i| ((i * 31 + s * 7 + 1) % 13) as f64 - 6.0)
                        .collect();
                    deflate_constant(&mut c);
                    c
                })
                .collect();
            let r = hicond_linalg::DenseBlock::from_columns(&cols);
            for active in [vec![0usize, 1, 2], vec![1], vec![0, 2]] {
                let mut z = hicond_linalg::DenseBlock::new(n, 3);
                m.apply_block(&r, &mut z, &active);
                for &j in &active {
                    let solo = m.apply(&cols[j]);
                    let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(z.col(j)),
                        bits(&solo),
                        "smoothing={smoothing} coarse={coarse_size} col {j} active {active:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_level_fallback() {
        // Tiny graph: hierarchy is just the coarse solve = exact solve;
        // PCG converges in very few iterations.
        let g = generators::path(20, |_| 1.0);
        let a = laplacian(&g);
        let b = consistent_rhs(20);
        let m = MultilevelSteiner::new(
            &g,
            &MultilevelOptions {
                hierarchy: hicond_core::HierarchyOptions {
                    coarse_size: 50,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        assert_eq!(m.num_levels(), 1);
        let res = pcg_solve(&a, &m, &b, &CgOptions::default());
        assert!(res.converged);
        assert!(res.iterations <= 3, "{} iterations", res.iterations);
    }
}
