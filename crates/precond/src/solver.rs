//! A turnkey Laplacian solver — the "combinatorial multigrid" facade this
//! paper's pipeline grew into.
//!
//! [`LaplacianSolver`] bundles the whole stack behind one call: build the
//! laminar hierarchy once (Section 3.1 clustering per level), assemble the
//! multilevel Steiner preconditioner, and answer any number of right-hand
//! sides with PCG. This is the API a downstream user actually wants:
//!
//! ```
//! use hicond_precond::solver::{LaplacianSolver, SolverOptions};
//! use hicond_graph::generators;
//!
//! let g = generators::grid2d(20, 20, |_, _| 1.0);
//! let solver = LaplacianSolver::new(&g, &SolverOptions::default());
//! let mut b = vec![0.0; 400];
//! b[0] = 1.0;
//! b[399] = -1.0;
//! let sol = solver.solve(&b).unwrap();
//! assert!(sol.iterations < 60);
//! ```

use crate::multilevel::{MultilevelOptions, MultilevelSteiner};
use hicond_graph::{laplacian, Graph};
use hicond_linalg::cg::{pcg_solve, CgOptions};
use hicond_linalg::{block_pcg_solve, CsrMatrix, DenseBlock};

/// Options for [`LaplacianSolver`].
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Multilevel preconditioner construction.
    pub multilevel: MultilevelOptions,
    /// PCG relative tolerance.
    pub rel_tol: f64,
    /// PCG iteration cap.
    pub max_iter: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            multilevel: MultilevelOptions::default(),
            rel_tol: 1e-8,
            max_iter: 10_000,
        }
    }
}

/// Errors a solve can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The right-hand side does not sum to ~zero on some connected
    /// component — the Laplacian system is inconsistent.
    InconsistentRhs {
        /// Worst component imbalance relative to ‖b‖₁.
        imbalance: f64,
    },
    /// PCG hit the iteration cap before reaching the tolerance.
    NotConverged {
        /// Relative residual at the cap.
        final_rel_residual: f64,
    },
    /// Dimension mismatch.
    WrongLength {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InconsistentRhs { imbalance } => {
                write!(
                    f,
                    "rhs inconsistent on a component (imbalance {imbalance:.2e})"
                )
            }
            SolveError::NotConverged { final_rel_residual } => {
                write!(
                    f,
                    "PCG did not converge (relative residual {final_rel_residual:.2e})"
                )
            }
            SolveError::WrongLength { expected, got } => {
                write!(f, "rhs length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A solved system.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solution with zero mean per connected component.
    pub x: Vec<f64>,
    /// PCG iterations spent.
    pub iterations: usize,
    /// Final relative residual.
    pub rel_residual: f64,
}

/// Reusable Laplacian solver: one setup, many right-hand sides.
pub struct LaplacianSolver {
    pub(crate) lap: CsrMatrix,
    pub(crate) pre: MultilevelSteiner,
    pub(crate) comp_labels: Vec<u32>,
    pub(crate) num_components: usize,
    pub(crate) opts: SolverOptions,
}

impl LaplacianSolver {
    /// Builds the hierarchy and preconditioner for `g`.
    pub fn new(g: &Graph, opts: &SolverOptions) -> Self {
        let (comp_labels, num_components) = hicond_graph::connectivity::connected_components(g);
        LaplacianSolver {
            lap: laplacian(g),
            pre: MultilevelSteiner::new(g, &opts.multilevel),
            comp_labels,
            num_components,
            opts: *opts,
        }
    }

    /// Number of vertices.
    pub fn dim(&self) -> usize {
        self.lap.nrows()
    }

    /// Number of hierarchy levels in the preconditioner.
    pub fn num_levels(&self) -> usize {
        self.pre.num_levels()
    }

    /// Solves `L x = b`. `b` must sum to (approximately) zero on each
    /// connected component; small imbalances are projected away, large
    /// ones are an error.
    pub fn solve(&self, b: &[f64]) -> Result<Solution, SolveError> {
        self.solve_inner(b, false).map(|(sol, _)| sol)
    }

    /// Like [`solve`](Self::solve) but also returns the PCG residual
    /// trajectory `‖rᵢ‖₂` (one entry per iteration, starting at `‖r₀‖₂`).
    /// Two solvers with bitwise-identical state produce bitwise-identical
    /// trajectories at any thread cap — the artifact round-trip tests rely
    /// on this.
    pub fn solve_recording(&self, b: &[f64]) -> Result<(Solution, Vec<f64>), SolveError> {
        self.solve_inner(b, true)
    }

    /// Solves `L x = bᵢ` for a whole batch of right-hand sides with **one**
    /// block-PCG run: per iteration the Laplacian and the multilevel
    /// hierarchy are each traversed once for all still-active columns
    /// (see [`block_pcg_solve`]), instead of once per rhs.
    ///
    /// Results are index-aligned with `bs`. Each column is validated
    /// independently — a wrong-length or inconsistent rhs gets its own
    /// `Err` and never enters the block; the remaining columns solve
    /// normally. Each returned solution is **bitwise identical** to what
    /// [`Self::solve`] produces for that rhs alone, at any thread cap and
    /// jitter seed: validation, projection, the per-column PCG recurrence,
    /// and the zero-mean normalization all perform the same arithmetic in
    /// the same order as the single-rhs path.
    pub fn solve_block(&self, bs: &[Vec<f64>]) -> Vec<Result<Solution, SolveError>> {
        let _span = hicond_obs::span("solve_block");
        hicond_obs::counter_add("solver/block_solves", 1);
        hicond_obs::counter_add("solver/solves", bs.len() as u64);
        let n = self.dim();
        let mut results: Vec<Option<Result<Solution, SolveError>>> = vec![None; bs.len()];
        // Validate and mean-project each column exactly as solve() does;
        // survivors are packed into the block.
        let mut admitted = Vec::new(); // (original index, projected rhs)
        for (j, b) in bs.iter().enumerate() {
            if b.len() != n {
                results[j] = Some(Err(SolveError::WrongLength {
                    expected: n,
                    got: b.len(),
                }));
                continue;
            }
            let mut comp_sum = vec![0.0; self.num_components];
            let mut comp_cnt = vec![0usize; self.num_components];
            let mut l1 = 0.0;
            for (v, &bv) in b.iter().enumerate() {
                // connected_components labels densely, so every label
                // fits the bounds: comp_labels[v] < num_components.
                comp_sum[self.comp_labels[v] as usize] += bv;
                comp_cnt[self.comp_labels[v] as usize] += 1; // bounds: as above
                l1 += bv.abs();
            }
            let imbalance =
                comp_sum.iter().map(|s| s.abs()).fold(0.0, f64::max) / l1.max(f64::MIN_POSITIVE);
            if imbalance > 1e-6 {
                results[j] = Some(Err(SolveError::InconsistentRhs { imbalance }));
                continue;
            }
            let mut rhs = b.to_vec();
            for (v, r) in rhs.iter_mut().enumerate() {
                let c = self.comp_labels[v] as usize;
                *r -= comp_sum[c] / comp_cnt[c] as f64;
            }
            admitted.push((j, rhs, comp_cnt));
        }
        if !admitted.is_empty() {
            let cols: Vec<Vec<f64>> = admitted.iter().map(|(_, rhs, _)| rhs.clone()).collect();
            let block = DenseBlock::from_columns(&cols);
            let res = block_pcg_solve(
                &self.lap,
                &self.pre,
                &block,
                &CgOptions {
                    rel_tol: self.opts.rel_tol,
                    max_iter: self.opts.max_iter,
                    record_residuals: false,
                },
            );
            for ((j, _, comp_cnt), col_res) in admitted.into_iter().zip(res) {
                if !col_res.converged {
                    results[j] = Some(Err(SolveError::NotConverged {
                        final_rel_residual: col_res.final_rel_residual,
                    }));
                    continue;
                }
                let mut x = col_res.x;
                let mut xsum = vec![0.0; self.num_components];
                for (v, &xv) in x.iter().enumerate() {
                    // bounds: comp_labels values are < num_components.
                    xsum[self.comp_labels[v] as usize] += xv;
                }
                for (v, xv) in x.iter_mut().enumerate() {
                    let c = self.comp_labels[v] as usize;
                    *xv -= xsum[c] / comp_cnt[c] as f64;
                }
                if hicond_obs::enabled() {
                    hicond_obs::counter_add("solver/iterations", col_res.iterations as u64);
                    hicond_obs::hist_record(
                        "solver/iterations_per_solve",
                        col_res.iterations as f64,
                    );
                }
                results[j] = Some(Ok(Solution {
                    x,
                    iterations: col_res.iterations,
                    rel_residual: col_res.final_rel_residual,
                }));
            }
        }
        results
            .into_iter()
            // Every slot was filled: columns either errored at validation
            // or came back from the block solve.
            .map(|r| {
                r.unwrap_or(Err(SolveError::NotConverged {
                    final_rel_residual: f64::NAN,
                }))
            })
            .collect()
    }

    fn solve_inner(&self, b: &[f64], record: bool) -> Result<(Solution, Vec<f64>), SolveError> {
        // "pcg" and "precond_apply" spans from the inner solve nest under
        // this one ("solve/pcg/precond_apply" in the phase tree).
        let _span = hicond_obs::span("solve");
        hicond_obs::counter_add("solver/solves", 1);
        let n = self.dim();
        if b.len() != n {
            return Err(SolveError::WrongLength {
                expected: n,
                got: b.len(),
            });
        }
        // Component-wise consistency check + projection.
        let mut comp_sum = vec![0.0; self.num_components];
        let mut comp_cnt = vec![0usize; self.num_components];
        let mut l1 = 0.0;
        for (v, &bv) in b.iter().enumerate() {
            comp_sum[self.comp_labels[v] as usize] += bv;
            comp_cnt[self.comp_labels[v] as usize] += 1;
            l1 += bv.abs();
        }
        let imbalance =
            comp_sum.iter().map(|s| s.abs()).fold(0.0, f64::max) / l1.max(f64::MIN_POSITIVE);
        if imbalance > 1e-6 {
            return Err(SolveError::InconsistentRhs { imbalance });
        }
        let mut rhs = b.to_vec();
        for (v, r) in rhs.iter_mut().enumerate() {
            let c = self.comp_labels[v] as usize;
            *r -= comp_sum[c] / comp_cnt[c] as f64;
        }
        let res = pcg_solve(
            &self.lap,
            &self.pre,
            &rhs,
            &CgOptions {
                rel_tol: self.opts.rel_tol,
                max_iter: self.opts.max_iter,
                record_residuals: record,
            },
        );
        if !res.converged {
            return Err(SolveError::NotConverged {
                final_rel_residual: res.final_rel_residual,
            });
        }
        // Zero mean per component.
        let mut x = res.x;
        let mut xsum = vec![0.0; self.num_components];
        for (v, &xv) in x.iter().enumerate() {
            xsum[self.comp_labels[v] as usize] += xv;
        }
        for (v, xv) in x.iter_mut().enumerate() {
            let c = self.comp_labels[v] as usize;
            *xv -= xsum[c] / comp_cnt[c] as f64;
        }
        if hicond_obs::enabled() {
            hicond_obs::counter_add("solver/iterations", res.iterations as u64);
            hicond_obs::hist_record("solver/iterations_per_solve", res.iterations as f64);
        }
        Ok((
            Solution {
                x,
                iterations: res.iterations,
                rel_residual: res.final_rel_residual,
            },
            res.residual_history,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_linalg::vector::{deflate_constant, norm2};
    use hicond_linalg::LinearOperator;

    #[test]
    fn solves_multiple_rhs_reusing_setup() {
        let g = generators::oct_like_grid3d(8, 8, 8, 13, generators::OctParams::default());
        let n = g.num_vertices();
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        let lap = laplacian(&g);
        for seed in 0..3u64 {
            let mut b: Vec<f64> = (0..n)
                .map(|i| (((i as u64 + seed) * 48271) % 101) as f64 - 50.0)
                .collect();
            deflate_constant(&mut b);
            let sol = solver.solve(&b).unwrap();
            let ax = lap.apply(&sol.x);
            let mut diff: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
            deflate_constant(&mut diff);
            assert!(norm2(&diff) <= 1e-6 * norm2(&b));
            // Zero-mean solution.
            assert!(sol.x.iter().sum::<f64>().abs() < 1e-8 * n as f64);
        }
    }

    #[test]
    fn rejects_inconsistent_rhs() {
        let g = generators::grid2d(6, 6, |_, _| 1.0);
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        let b = vec![1.0; 36];
        match solver.solve(&b) {
            Err(SolveError::InconsistentRhs { .. }) => {}
            other => panic!("expected inconsistency error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_length() {
        let g = generators::grid2d(4, 4, |_, _| 1.0);
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        assert!(matches!(
            solver.solve(&[1.0, -1.0]),
            Err(SolveError::WrongLength {
                expected: 16,
                got: 2
            })
        ));
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = hicond_graph::Graph::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 2.0)],
        );
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        // Consistent per component.
        let b = vec![1.0, 0.0, -1.0, 2.0, -1.0, -1.0];
        let sol = solver.solve(&b).unwrap();
        let lap = laplacian(&g);
        let ax = lap.apply(&sol.x);
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-6);
        }
        // Inconsistent on one component caught.
        let bad = vec![1.0, 0.0, -1.0, 1.0, 0.0, 0.0];
        assert!(matches!(
            solver.solve(&bad),
            Err(SolveError::InconsistentRhs { .. })
        ));
    }

    #[test]
    fn solve_block_matches_solo_and_isolates_bad_columns() {
        let g = generators::oct_like_grid3d(6, 6, 6, 7, generators::OctParams::default());
        let n = g.num_vertices();
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        let mut cols: Vec<Vec<f64>> = (0..3u64)
            .map(|seed| {
                let mut b: Vec<f64> = (0..n)
                    .map(|i| (((i as u64 + seed) * 48271) % 101) as f64 - 50.0)
                    .collect();
                deflate_constant(&mut b);
                b
            })
            .collect();
        // Inject a wrong-length column and an inconsistent one mid-batch.
        cols.insert(1, vec![1.0, 2.0]);
        cols.insert(3, vec![1.0; n]);
        let res = solver.solve_block(&cols);
        assert_eq!(res.len(), 5);
        assert!(matches!(res[1], Err(SolveError::WrongLength { .. })));
        assert!(matches!(res[3], Err(SolveError::InconsistentRhs { .. })));
        for j in [0usize, 2, 4] {
            let sol = res[j].as_ref().expect("good column solves");
            let solo = solver.solve(&cols[j]).expect("solo solves");
            assert_eq!(sol.iterations, solo.iterations, "col {j}");
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&sol.x), bits(&solo.x), "col {j} not bitwise equal");
        }
    }

    #[test]
    fn tiny_imbalance_projected() {
        let g = generators::grid2d(5, 5, |_, _| 1.0);
        let solver = LaplacianSolver::new(&g, &SolverOptions::default());
        let mut b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.9).sin()).collect();
        deflate_constant(&mut b);
        b[0] += 1e-9; // numerically tiny imbalance
        assert!(solver.solve(&b).is_ok());
    }
}
