//! Gremban's reduction (\[12\], Section 3's foundation): preconditioning
//! with a Steiner graph `S` is equivalent to preconditioning with its
//! Schur complement `B`, i.e. `σ(A, S) = σ(A, B)` (proposition 6.1 of \[4\]
//! as cited by the paper).
//!
//! Operationally: to apply `B⁻¹r` one may solve the *extended* system
//! `S·[x; y] = [r; 0]` and read off the `x` block. This module provides
//! that extended-system route — solving `S_P` with an inner CG — both as
//! an executable witness of the equivalence (tested against the closed-
//! form `D⁻¹r + R Q⁺ Rᵀ r` apply) and as the padding utilities
//! ([`extend_rhs`], [`restrict_solution`]) for experimenting with Steiner
//! graphs whose leaf block is *not* diagonal, where no closed form exists.

use hicond_graph::{Graph, Partition};
use hicond_linalg::cg::{cg_solve, CgOptions};
use hicond_linalg::CsrMatrix;

/// Pads a residual on the original `n` vertices with zeros on the `m`
/// Steiner vertices (the consistent extension: Steiner vertices carry no
/// injected current).
pub fn extend_rhs(r: &[f64], num_steiner: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(r.len() + num_steiner);
    out.extend_from_slice(r);
    out.extend(std::iter::repeat(0.0).take(num_steiner));
    out
}

/// Restricts an extended solution back to the original vertices,
/// normalizing to zero mean there.
pub fn restrict_solution(x_ext: &[f64], n: usize) -> Vec<f64> {
    let mut x = x_ext[..n].to_vec();
    hicond_linalg::vector::deflate_constant(&mut x);
    x
}

/// Applies `B⁻¹r` by solving the extended Steiner system `S·[x;y] = [r;0]`
/// with CG to tolerance `tol`. Exact in the limit; used for verification
/// and for non-closed-form Steiner graphs.
pub fn apply_via_extended_system(steiner: &CsrMatrix, n: usize, r: &[f64], tol: f64) -> Vec<f64> {
    assert_eq!(r.len(), n);
    let m = steiner.nrows() - n;
    let ext = extend_rhs(r, m);
    let res = cg_solve(
        steiner,
        &ext,
        &CgOptions {
            rel_tol: tol,
            max_iter: 50_000,
            record_residuals: false,
        },
    );
    restrict_solution(&res.x, n)
}

/// Convenience: builds `S_P` for `(g, p)` and returns the extended-system
/// apply as a closure-friendly struct.
pub struct ExtendedSteinerSolver {
    steiner: CsrMatrix,
    n: usize,
    /// Inner CG tolerance.
    pub tol: f64,
}

impl ExtendedSteinerSolver {
    /// Assembles the Definition 3.1 Steiner graph for the decomposition.
    pub fn new(g: &Graph, p: &Partition, tol: f64) -> Self {
        ExtendedSteinerSolver {
            steiner: crate::steiner::steiner_laplacian(g, p),
            n: g.num_vertices(),
            tol,
        }
    }

    /// `B⁻¹ r` via the extended system.
    pub fn apply(&self, r: &[f64]) -> Vec<f64> {
        apply_via_extended_system(&self.steiner, self.n, r, self.tol)
    }

    /// The assembled `(n+m)` Steiner Laplacian.
    pub fn steiner_matrix(&self) -> &CsrMatrix {
        &self.steiner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SteinerPreconditioner;
    use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
    use hicond_graph::generators;
    use hicond_linalg::vector::{deflate_constant, norm2};
    use hicond_linalg::Preconditioner;

    #[test]
    fn extended_system_matches_closed_form() {
        // Gremban's route (solve S, restrict) equals the closed-form
        // Schur apply D⁻¹r + R Q⁺ Rᵀ r.
        let g = generators::grid2d(6, 5, |u, v| 1.0 + ((u + 2 * v) % 4) as f64);
        let n = g.num_vertices();
        let p = decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                k: 4,
                ..Default::default()
            },
        );
        let fast = SteinerPreconditioner::new(&g, &p, 200);
        let slow = ExtendedSteinerSolver::new(&g, &p, 1e-12);
        let mut r: Vec<f64> = (0..n).map(|i| ((i * 13 + 2) % 9) as f64 - 4.0).collect();
        deflate_constant(&mut r);
        let a = fast.apply(&r);
        let b = slow.apply(&r);
        let mut diff: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        deflate_constant(&mut diff);
        assert!(
            norm2(&diff) < 1e-6 * norm2(&a).max(1.0),
            "routes disagree: {}",
            norm2(&diff)
        );
    }

    #[test]
    fn padding_roundtrip() {
        let r = vec![1.0, -1.0, 0.5];
        let ext = extend_rhs(&r, 2);
        assert_eq!(ext, vec![1.0, -1.0, 0.5, 0.0, 0.0]);
        let back = restrict_solution(&[3.0, 1.0, 2.0, 9.0, 9.0], 3);
        assert_eq!(back.len(), 3);
        assert!(back.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn steiner_matrix_dimensions() {
        let g = generators::cycle(12, |_| 1.0);
        let p = decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                k: 3,
                ..Default::default()
            },
        );
        let s = ExtendedSteinerSolver::new(&g, &p, 1e-8);
        assert_eq!(s.steiner_matrix().nrows(), 12 + p.num_clusters());
    }
}
