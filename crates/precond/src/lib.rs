//! Steiner and subgraph preconditioners for graph Laplacians
//! (paper Section 3).
//!
//! The paper's central application of `[φ, ρ]` decompositions is the
//! **Steiner preconditioner** `S_P = Q + Σᵢ Tᵢ` of Definition 3.1: the
//! quotient graph `Q` over the clusters plus one star `Tᵢ` per cluster
//! whose root joins each cluster vertex `u` with weight `vol_A(u)`. Its
//! key algebraic property (exploited by Remark 2) is that Gaussian
//! elimination of the leaves is *closed form*: with `V = DR` one has
//! `VᵀD⁻¹V = D_Q`, so applying the Schur-complement inverse reduces to
//!
//! ```text
//! B⁻¹ r  =  D⁻¹ r  +  R · Q⁺ (Rᵀ r)
//! ```
//!
//! — a Jacobi sweep plus a quotient-graph solve. This crate provides:
//!
//! * [`steiner`] — two-level Steiner preconditioner with an exact (dense
//!   Cholesky, grounded) quotient solve, plus the explicit `(n+m)`-vertex
//!   Steiner Laplacian for support-theory verification of Theorem 3.5;
//! * [`multilevel`] — the laminar-hierarchy version (recursive quotient
//!   preconditioning with optional damped-Jacobi smoothing, kept symmetric
//!   positive definite so plain PCG applies);
//! * [`subgraph`] — the baseline subgraph preconditioner (spanning tree +
//!   high-stretch edges) solved by the sequential degree-1/2 partial
//!   elimination that Remark 2 contrasts against;
//! * [`treesolve`] — exact linear-time forest Laplacian solves.

pub mod artifact;
pub mod gremban;
pub mod multilevel;
pub mod solver;
pub mod steiner;
pub mod subgraph;
pub mod treesolve;

pub use artifact::{decode_solver, encode_solver, load_or_build, solver_cache_key, SolverSource};
pub use gremban::{apply_via_extended_system, ExtendedSteinerSolver};
pub use multilevel::{MultilevelOptions, MultilevelSteiner};
pub use solver::{LaplacianSolver, Solution, SolveError, SolverOptions};
pub use steiner::{steiner_laplacian, SteinerPreconditioner};
pub use subgraph::{SubgraphOptions, SubgraphPreconditioner};
pub use treesolve::solve_forest;
