//! Property-based tests for the preconditioners: exactness of the fast
//! Steiner apply against the explicit Schur complement, exactness of the
//! subgraph elimination replay, and PCG correctness on random graphs.

use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{laplacian, Graph};
use hicond_linalg::cg::{pcg_solve, CgOptions};
use hicond_linalg::schur::schur_complement;
use hicond_linalg::vector::{deflate_constant, dot, norm2};
use hicond_linalg::Preconditioner;
use hicond_precond::treesolve::solve_forest_graph;
use hicond_precond::{
    steiner_laplacian, SteinerPreconditioner, SubgraphOptions, SubgraphPreconditioner,
};
use proptest::prelude::*;

fn connected_graph(n: usize) -> impl Strategy<Value = Graph> {
    (
        prop::collection::vec(0.1..10.0f64, n - 1),
        prop::collection::vec((0..n, 0..n, 0.1..10.0f64), 0..n),
    )
        .prop_map(move |(tw, ex)| {
            let mut edges = Vec::new();
            for (i, &w) in tw.iter().enumerate() {
                let child = i + 1;
                edges.push(((i * 5 + 1) % child.max(1), child, w));
            }
            for (u, v, w) in ex {
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

fn random_tree(n: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0.05..20.0f64, any::<u64>()), n - 1).prop_map(move |spec| {
        let edges: Vec<(usize, usize, f64)> = spec
            .iter()
            .enumerate()
            .map(|(i, &(w, s))| {
                let child = i + 1;
                ((s as usize) % child.max(1), child, w)
            })
            .collect();
        Graph::from_edges(n, &edges)
    })
}

fn consistent(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| {
            (((i as u64).wrapping_add(seed)).wrapping_mul(2654435761) % 1009) as f64 / 500.0 - 1.0
        })
        .collect();
    deflate_constant(&mut b);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn steiner_apply_inverts_schur(g in connected_graph(18), seed in any::<u64>()) {
        let p = decompose_fixed_degree(&g, &FixedDegreeOptions { k: 4, ..Default::default() });
        let pre = SteinerPreconditioner::new(&g, &p, 100);
        let sp = steiner_laplacian(&g, &p);
        let ids: Vec<usize> = (18..18 + p.num_clusters()).collect();
        let (b, _) = schur_complement(&sp, &ids);
        let r = consistent(18, seed);
        let z = pre.apply(&r);
        let bz = b.mul(&z);
        let mut diff: Vec<f64> = bz.iter().zip(&r).map(|(x, y)| x - y).collect();
        deflate_constant(&mut diff);
        prop_assert!(norm2(&diff) < 1e-7 * norm2(&r).max(1.0), "residual {}", norm2(&diff));
    }

    #[test]
    fn steiner_apply_symmetric_positive(g in connected_graph(16), s1 in any::<u64>(), s2 in any::<u64>()) {
        let p = decompose_fixed_degree(&g, &FixedDegreeOptions { k: 4, ..Default::default() });
        let pre = SteinerPreconditioner::new(&g, &p, 100);
        let x = consistent(16, s1);
        let y = consistent(16, s2);
        let mx = pre.apply(&x);
        let my = pre.apply(&y);
        prop_assert!((dot(&y, &mx) - dot(&x, &my)).abs() < 1e-8 * dot(&y, &mx).abs().max(1.0));
        if norm2(&x) > 1e-9 {
            prop_assert!(dot(&x, &mx) > 0.0);
        }
    }

    #[test]
    fn subgraph_apply_inverts_its_laplacian(g in connected_graph(20), seed in any::<u64>()) {
        // With extra_fraction = 0 the preconditioner graph is the max-weight
        // spanning tree; the apply must solve its Laplacian exactly.
        let pre = SubgraphPreconditioner::new(
            &g,
            &SubgraphOptions { extra_fraction: 0.0, ..Default::default() },
        );
        let tree_ids = hicond_core::spanning::mst_max_kruskal(&g);
        let tree = hicond_core::spanning::subgraph_of_edges(&g, &tree_ids);
        let lt = laplacian(&tree);
        let r = consistent(20, seed);
        let x = pre.apply(&r);
        let lx = lt.mul(&x);
        let mut diff: Vec<f64> = lx.iter().zip(&r).map(|(a, b)| a - b).collect();
        deflate_constant(&mut diff);
        prop_assert!(norm2(&diff) < 1e-7 * norm2(&r).max(1.0));
    }

    #[test]
    fn forest_solver_exact(t in random_tree(30), seed in any::<u64>()) {
        let b = consistent(30, seed);
        let x = solve_forest_graph(&t, &b, 1e-7);
        let l = laplacian(&t);
        let lx = l.mul(&x);
        for (a, c) in lx.iter().zip(&b) {
            prop_assert!((a - c).abs() < 1e-7);
        }
    }

    #[test]
    fn pcg_steiner_converges_random(g in connected_graph(24), seed in any::<u64>()) {
        let a = laplacian(&g);
        let b = consistent(24, seed);
        let p = decompose_fixed_degree(&g, &FixedDegreeOptions { k: 4, ..Default::default() });
        let pre = SteinerPreconditioner::new(&g, &p, 100);
        let res = pcg_solve(&a, &pre, &b, &CgOptions { rel_tol: 1e-9, max_iter: 500, ..Default::default() });
        prop_assert!(res.converged, "iterations {}", res.iterations);
        let ax = a.mul(&res.x);
        let mut diff: Vec<f64> = ax.iter().zip(&b).map(|(x, y)| x - y).collect();
        deflate_constant(&mut diff);
        prop_assert!(norm2(&diff) <= 1e-6 * norm2(&b).max(1e-12));
    }
}
