//! Shared utilities for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index); this library provides the
//! table printer, timing helpers, and the standard workloads so all
//! experiments stay comparable.

use std::time::Instant;

/// Simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths = headers.iter().map(|h| h.len().max(8)).collect();
        Table {
            headers,
            widths,
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers, &self.widths);
        let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep, &self.widths);
        for r in &self.rows {
            line(r, &self.widths);
        }
    }
}

/// Times a closure, returning `(result, milliseconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // audit: allow(instant-now) — the bench harness measures wall time itself
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// Median wall-clock milliseconds over `reps` runs (min 1).
pub fn timed_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let reps = reps.max(1);
    let mut times: Vec<f64> = (0..reps).map(|_| timed(&mut f).1).collect();
    // total_cmp: elapsed times are finite; same order as partial_cmp.
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Median wall-clock **nanoseconds** over `reps` runs (min 1); the
/// resolution the `bench_suite` trajectory records.
pub fn timed_median_ns<T>(reps: usize, mut f: impl FnMut() -> T) -> u64 {
    let reps = reps.max(1);
    let mut times: Vec<u64> = (0..reps)
        .map(|_| {
            // audit: allow(instant-now) — the bench harness measures wall time itself
            let t = Instant::now();
            let out = f();
            let ns = t.elapsed().as_nanos() as u64;
            drop(out);
            ns
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Interleaved A/B timing: alternates the two closures for `reps` rounds
/// and returns `(median_a_ns, median_b_ns)`. Back-to-back blocks alias
/// slow drift (VM frequency scaling, cache state, CPU steal) into the
/// variant difference; alternating invocations expose both variants to the
/// same drift. Both closures run once untimed first to warm their paths.
pub fn timed_median_pair_ns(
    reps: usize,
    mut run_a: impl FnMut(),
    mut run_b: impl FnMut(),
) -> (u64, u64) {
    let reps = reps.max(1);
    run_a();
    run_b();
    let mut ta = Vec::with_capacity(reps);
    let mut tb = Vec::with_capacity(reps);
    for _ in 0..reps {
        // audit: allow(instant-now) — the bench harness measures wall time itself
        let t = Instant::now();
        run_a();
        ta.push(t.elapsed().as_nanos() as u64);
        // audit: allow(instant-now) — the bench harness measures wall time itself
        let t = Instant::now();
        run_b();
        tb.push(t.elapsed().as_nanos() as u64);
    }
    ta.sort_unstable();
    tb.sort_unstable();
    (ta[reps / 2], tb[reps / 2])
}

/// One measurement row of the machine-readable benchmark trajectory
/// (`BENCH_pr2.json`); future PRs diff their numbers against these.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload name (`spmv`, `pcg`, `treecontract`, `planar`).
    pub workload: String,
    /// Problem dimension (vertices / rows).
    pub n: usize,
    /// Nonzeros (matrix workloads) or edges (graph workloads).
    pub nnz: usize,
    /// Thread cap the measurement ran under.
    pub threads: usize,
    /// Median wall-clock nanoseconds.
    pub median_ns: u64,
    /// `median_ns(1 thread) / median_ns(this)` for the same workload.
    pub speedup: f64,
}

/// One row of the kernel-level cost table: a kernel variant (e.g. blocked
/// vs unblocked SpMV) normalized to per-nonzero cost.
///
/// `ns_per_nnz` is wall-clock nanoseconds per processed nonzero — the
/// portable stand-in for cycles-per-nnz (multiply by the machine's GHz to
/// get cycles; no TSC calibration is attempted). `bytes_per_nnz` is the
/// *modelled* streamed memory traffic per nonzero (indices + values +
/// vector sweeps), a roofline denominator, not a measurement.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel family (`spmv`, `pcg`).
    pub kernel: String,
    /// Variant within the family (`unblocked`, `blocked`, `unfused`, `fused`).
    pub variant: String,
    /// Problem dimension (rows).
    pub n: usize,
    /// Nonzeros processed per kernel invocation.
    pub nnz: usize,
    /// Thread cap the measurement ran under.
    pub threads: usize,
    /// Median wall-clock nanoseconds per invocation.
    pub median_ns: u64,
    /// `median_ns / nnz` (for iterative kernels, per iteration·nnz).
    pub ns_per_nnz: f64,
    /// Modelled streamed bytes per nonzero.
    pub bytes_per_nnz: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the benchmark trajectory to pretty-printed JSON. `meta`
/// key/value pairs (machine description, date, mode) land in a top-level
/// `"meta"` object next to the `"results"` array. `kernels`, when
/// non-empty, lands under a top-level `"kernels"` array (the per-nnz cost
/// table). Each `(key, value)` in `sections` must be a pre-rendered JSON
/// value (e.g. the `hicond_obs` snapshot under `"metrics"`, the
/// observability cost gate under `"obs_overhead"`) and is embedded
/// verbatim under its top-level key, in order.
pub fn bench_json(
    meta: &[(&str, String)],
    records: &[BenchRecord],
    kernels: &[KernelRecord],
    sections: &[(&str, &str)],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"meta\": {\n");
    for (i, (k, v)) in meta.iter().enumerate() {
        let comma = if i + 1 < meta.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": \"{}\"{comma}\n",
            json_escape(k),
            json_escape(v)
        ));
    }
    s.push_str("  },\n");
    for (key, body) in sections {
        s.push_str(&format!("  \"{}\": ", json_escape(key)));
        s.push_str(body.trim());
        s.push_str(",\n");
    }
    if !kernels.is_empty() {
        s.push_str("  \"kernels\": [\n");
        for (i, k) in kernels.iter().enumerate() {
            let comma = if i + 1 < kernels.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"n\": {}, \"nnz\": {}, \"threads\": {}, \"median_ns\": {}, \"ns_per_nnz\": {:.4}, \"bytes_per_nnz\": {:.2}}}{comma}\n",
                json_escape(&k.kernel),
                json_escape(&k.variant),
                k.n,
                k.nnz,
                k.threads,
                k.median_ns,
                k.ns_per_nnz,
                k.bytes_per_nnz
            ));
        }
        s.push_str("  ],\n");
    }
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"nnz\": {}, \"threads\": {}, \"median_ns\": {}, \"speedup\": {:.4}}}{comma}\n",
            json_escape(&r.workload),
            r.n,
            r.nnz,
            r.threads,
            r.median_ns,
            r.speedup
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    // exact: only a literal zero should print as "0"
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// A deterministic consistent (zero-sum) right-hand side.
pub fn consistent_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64 + seed) * 2654435761) % 997) as f64 / 498.5 - 1.0)
        .collect();
    hicond_linalg::vector::deflate_constant(&mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // smoke: must not panic
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1234.5).contains('e'));
        assert!(fmt(0.001).contains('e'));
        assert_eq!(fmt(1.5), "1.5000");
    }

    #[test]
    fn rhs_consistent() {
        let b = consistent_rhs(100, 3);
        assert!(b.iter().sum::<f64>().abs() < 1e-10);
    }

    #[test]
    fn median_ns_positive() {
        let ns = timed_median_ns(3, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(ns > 0);
    }

    #[test]
    fn median_pair_interleaves() {
        let (a, b) = timed_median_pair_ns(
            5,
            || {
                std::hint::black_box((0..500).sum::<u64>());
            },
            || {
                std::hint::black_box((0..500).product::<u64>());
            },
        );
        assert!(a > 0 && b > 0);
    }

    #[test]
    fn bench_json_shape() {
        let recs = vec![BenchRecord {
            workload: "spmv".into(),
            n: 100,
            nnz: 500,
            threads: 4,
            median_ns: 1234,
            speedup: 2.5,
        }];
        let s = bench_json(&[("mode", "smoke \"quoted\"".into())], &recs, &[], &[]);
        assert!(s.contains("\"workload\": \"spmv\""));
        assert!(s.contains("\"median_ns\": 1234"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(!s.contains("\"metrics\""));
        assert!(!s.contains("\"kernels\""));
    }

    #[test]
    fn bench_json_embeds_prerendered_sections() {
        let s = bench_json(
            &[("mode", "smoke".into())],
            &[],
            &[],
            &[
                ("metrics", "{\"counters\": {\"cg/iterations\": 7}}"),
                ("obs_overhead", "{\"overhead_pct\": 1.25}"),
            ],
        );
        assert!(s.contains("\"metrics\": {\"counters\""));
        assert!(s.contains("\"cg/iterations\": 7"));
        assert!(s.contains("\"obs_overhead\": {\"overhead_pct\": 1.25}"));
    }

    #[test]
    fn bench_json_renders_kernel_table() {
        let kernels = vec![
            KernelRecord {
                kernel: "spmv".into(),
                variant: "blocked".into(),
                n: 100,
                nnz: 480,
                threads: 1,
                median_ns: 960,
                ns_per_nnz: 2.0,
                bytes_per_nnz: 21.67,
            },
            KernelRecord {
                kernel: "pcg".into(),
                variant: "fused".into(),
                n: 100,
                nnz: 480,
                threads: 1,
                median_ns: 4800,
                ns_per_nnz: 2.0,
                bytes_per_nnz: 43.33,
            },
        ];
        let s = bench_json(&[("mode", "smoke".into())], &[], &kernels, &[]);
        assert!(s.contains("\"kernels\": ["));
        assert!(s.contains("\"variant\": \"blocked\""));
        assert!(s.contains("\"ns_per_nnz\": 2.0000"));
        assert!(s.contains("\"bytes_per_nnz\": 21.67"));
        // Two rows: exactly one trailing-comma-free closer before "results".
        assert!(s.contains("\"variant\": \"fused\", "));
    }
}
