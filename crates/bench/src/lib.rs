//! Shared utilities for the experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the experiment index); this library provides the
//! table printer, timing helpers, and the standard workloads so all
//! experiments stay comparable.

use std::time::Instant;

/// Simple fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths = headers.iter().map(|h| h.len().max(8)).collect();
        Table {
            headers,
            widths,
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let line = |cells: &[String], widths: &[usize]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.headers, &self.widths);
        let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&sep, &self.widths);
        for r in &self.rows {
            line(r, &self.widths);
        }
    }
}

/// Times a closure, returning `(result, milliseconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64() * 1e3)
}

/// Median wall-clock milliseconds over `reps` runs (min 1).
pub fn timed_median<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let reps = reps.max(1);
    let mut times: Vec<f64> = (0..reps).map(|_| timed(&mut f).1).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Formats a float compactly for tables.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 || x.abs() < 0.01 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// A deterministic consistent (zero-sum) right-hand side.
pub fn consistent_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| (((i as u64 + seed) * 2654435761) % 997) as f64 / 498.5 - 1.0)
        .collect();
    hicond_linalg::vector::deflate_constant(&mut b);
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print(); // smoke: must not panic
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1234.5).contains('e'));
        assert!(fmt(0.001).contains('e'));
        assert_eq!(fmt(1.5), "1.5000");
    }

    #[test]
    fn rhs_consistent() {
        let b = consistent_rhs(100, 3);
        assert!(b.iter().sum::<f64>().abs() < 1e-10);
    }
}
