//! **E13 — Section 4's anticipated application**: computing (φ, γ)
//! decompositions of general graphs from the spectral portrait.
//!
//! Compares three routes on planted-community graphs of growing size:
//! eigenvector spectral clustering (one Lanczos/dense eigensolve),
//! random-walk *mixture* clustering (only `t` matvecs per mixture — the
//! paper's "straightforward" global computation), and each followed by the
//! greedy γ-refinement pass.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_portrait_clustering
//! ```

use hicond_bench::{fmt, timed, Table};
use hicond_core::{refine_gamma, RefineOptions};
use hicond_graph::{Graph, Partition};
use hicond_spectral::{
    spectral_clustering, walk_mixture_clustering, SpectralClusteringOptions, WalkClusteringOptions,
};
use rand::{Rng, SeedableRng};

fn noisy_blocks(k: usize, size: usize, p_in: f64, p_out: f64, seed: u64) -> (Graph, Vec<u32>) {
    let n = k * size;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let p = if i / size == j / size { p_in } else { p_out };
            if rng.random::<f64>() < p {
                edges.push((i, j, 1.0));
            }
        }
    }
    (
        Graph::from_edges(n, &edges),
        (0..n).map(|v| (v / size) as u32).collect(),
    )
}

fn accuracy(p: &Partition, truth: &[u32], k: usize) -> f64 {
    // Greedy label matching (adequate for well-separated recoveries).
    let n = truth.len();
    let mut counts = vec![vec![0usize; k]; k];
    for v in 0..n {
        // bounds: ground-truth labels are < k by construction; cluster ids clamp to k - 1
        counts[truth[v] as usize][p.cluster_of(v).min(k - 1)] += 1;
    }
    let mut used = vec![false; k];
    let mut correct = 0usize;
    for t in 0..k {
        let best = (0..k)
            .filter(|&c| !used[c])
            .max_by_key(|&c| counts[t][c])
            .unwrap();
        used[best] = true;
        correct += counts[t][best];
    }
    correct as f64 / n as f64
}

fn main() {
    println!("# Section 4 application: decompositions from the spectral portrait");
    let mut t = Table::new(&["n", "method", "accuracy", "gamma", "cut frac", "ms"]);
    for &(k, size) in &[(3usize, 20usize), (3, 40), (4, 50)] {
        let (g, truth) = noisy_blocks(k, size, 0.4, 0.01, 17);
        let n = g.num_vertices();

        let (pe, ms_e) = timed(|| {
            spectral_clustering(
                &g,
                &SpectralClusteringOptions {
                    k,
                    dense_limit: 120,
                    ..Default::default()
                },
            )
        });
        let qe = pe.quality(&g, 12);
        t.row(vec![
            n.to_string(),
            "eigenvectors".into(),
            fmt(accuracy(&pe, &truth, k)),
            fmt(qe.gamma),
            fmt(qe.cut_fraction),
            fmt(ms_e),
        ]);

        let (pw, ms_w) = timed(|| {
            walk_mixture_clustering(
                &g,
                &WalkClusteringOptions {
                    k,
                    num_mixtures: 8,
                    steps: 12,
                    ..Default::default()
                },
            )
        });
        let qw = pw.quality(&g, 12);
        t.row(vec![
            n.to_string(),
            "walk mixtures".into(),
            fmt(accuracy(&pw, &truth, k)),
            fmt(qw.gamma),
            fmt(qw.cut_fraction),
            fmt(ms_w),
        ]);

        let ((pr, stats), ms_r) = timed(|| refine_gamma(&g, &pw, &RefineOptions::default()));
        let qr = pr.quality(&g, 12);
        t.row(vec![
            n.to_string(),
            format!("walk + refine ({} moves)", stats.moves),
            fmt(accuracy(&pr, &truth, k)),
            fmt(qr.gamma),
            fmt(qr.cut_fraction),
            fmt(ms_w + ms_r),
        ]);
    }
    t.print();
    println!("\n# reading: walk mixtures (matvecs only) match the eigenvector route on");
    println!("# strongly clustered inputs, and the greedy refinement pass cleans up the");
    println!("# boundary — the practical (phi, gamma) computation Section 4 anticipates.");
}
