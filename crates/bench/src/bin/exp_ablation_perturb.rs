//! **A1 — ablation of Section 3.1 step \[1\]** (the random perturbation).
//! With the perturbation off, ties are broken deterministically by edge
//! id. On *uniform* weights the perturbation is what spreads the forest;
//! this ablation measures what it buys: forest shape, cluster quality and
//! PCG iterations, with and without it, on uniform and already-noisy
//! inputs.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_ablation_perturb
//! ```

use hicond_bench::{consistent_rhs, fmt, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{generators, laplacian, Graph};
use hicond_linalg::cg::{pcg_solve, CgOptions};
use hicond_precond::SteinerPreconditioner;

fn run(name: &str, g: &Graph, perturb: bool, t: &mut Table) {
    let p = decompose_fixed_degree(
        g,
        &FixedDegreeOptions {
            k: 8,
            perturb,
            ..Default::default()
        },
    );
    let q = p.quality(g, 16);
    let a = laplacian(g);
    let b = consistent_rhs(g.num_vertices(), 3);
    let pre = SteinerPreconditioner::new(g, &p, 50_000);
    let r = pcg_solve(&a, &pre, &b, &CgOptions::default());
    t.row(vec![
        name.into(),
        perturb.to_string(),
        p.num_clusters().to_string(),
        fmt(q.rho),
        fmt(q.phi),
        fmt(q.cut_fraction),
        r.iterations.to_string(),
    ]);
}

fn main() {
    println!("# Ablation A1: Section 3.1 step [1] (random perturbation) on/off");
    let mut t = Table::new(&[
        "graph",
        "perturb",
        "clusters",
        "rho",
        "phi(lb)",
        "cut frac",
        "PCG iters",
    ]);
    let uniform = generators::grid3d(12, 12, 12, |_, _, _| 1.0);
    let noisy = generators::oct_like_grid3d(12, 12, 12, 17, generators::OctParams::default());
    for pert in [true, false] {
        run("uniform grid3d 12^3", &uniform, pert, &mut t);
    }
    for pert in [true, false] {
        run("oct 12^3", &noisy, pert, &mut t);
    }
    t.print();
    println!("\n# reading: tie-broken deterministic selection still yields a forest (the");
    println!("# implementation guarantees it), but on uniform weights the perturbation");
    println!("# randomizes the forest shape; on noisy inputs the weights already break ties");
    println!("# and the ablation changes little — matching the paper's intent for step [1].");
}
