//! **E8 — Theorem 4.1**: spectral portraits. For graphs with planted and
//! algorithmically-found decompositions, prints one row per low
//! eigenvector of `Â`: eigenvalue λ, measured alignment `(xᵀz)²` with the
//! cluster subspace `Range(D^{1/2}R)`, and the bound
//! `1 − 3λ(1 + 2/(γφ²))`.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_spectral
//! ```

use hicond_bench::{fmt, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{Graph, Partition};
use hicond_spectral::normalized::normalized_eigenpairs_dense;
use hicond_spectral::portrait::portrait_check;

fn planted(k: usize, size: usize, bridge: f64) -> (Graph, Partition) {
    let n = k * size;
    let mut edges = Vec::new();
    for b in 0..k {
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((b * size + i, b * size + j, 1.0));
            }
        }
    }
    for b in 0..k - 1 {
        edges.push((b * size, (b + 1) * size, bridge));
    }
    let assignment: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
    (
        Graph::from_edges(n, &edges),
        Partition::from_assignment(assignment, k),
    )
}

fn report(title: &str, g: &Graph, p: &Partition, num_eigs: usize) {
    let q = p.quality(g, 20);
    println!(
        "\n## {title}: n = {}, m = {} clusters, phi = {}, gamma = {}",
        g.num_vertices(),
        p.num_clusters(),
        fmt(q.phi),
        fmt(q.gamma)
    );
    let (vals, vecs) = normalized_eigenpairs_dense(g);
    let rows = portrait_check(
        g,
        p,
        &vals[..num_eigs.min(vals.len())],
        &vecs[..num_eigs.min(vals.len())],
        q.phi,
        q.gamma.max(1e-12),
    );
    let mut t = Table::new(&["k", "lambda", "(x'z)^2", "bound", "holds"]);
    for (k, r) in rows.iter().enumerate() {
        t.row(vec![
            k.to_string(),
            fmt(r.lambda),
            fmt(r.alignment),
            fmt(r.bound),
            if r.alignment >= r.bound - 1e-9 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();
}

fn main() {
    println!("# Theorem 4.1: eigenvector alignment with Range(D^(1/2) R)");

    for bridge in [0.001, 0.01, 0.1] {
        let (g, p) = planted(4, 10, bridge);
        report(&format!("planted 4 blocks, bridge {bridge}"), &g, &p, 6);
    }

    // Algorithmically found decomposition on a grid: the bound is vacuous
    // for most eigenvalues (phi is modest), but must never be violated.
    let g = hicond_graph::generators::grid2d(7, 7, |_, _| 1.0);
    let p = decompose_fixed_degree(
        &g,
        &FixedDegreeOptions {
            k: 4,
            ..Default::default()
        },
    );
    report("grid2d 7x7, Section 3.1 decomposition", &g, &p, 8);

    println!("\n# shape check: tighter community structure (smaller bridges) pushes both");
    println!("# lambda down and the alignment toward 1; the bound is never violated.");
}
