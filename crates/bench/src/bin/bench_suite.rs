//! Machine-readable benchmark trajectory (DESIGN.md §7, §12).
//!
//! Times the hot workloads — SpMV, Jacobi-PCG, parallel tree
//! contraction (subtree sizes via list ranking), planar [φ, ρ]
//! decomposition, and the artifact build/load/solve triple — under thread
//! caps 1/2/4/8 and writes the results to
//! `BENCH_pr10.json` so every future PR can diff against them. Before any
//! timing, each workload's output at the maximum thread cap is checked
//! **bitwise** against the 1-thread output (the engine's determinism
//! contract), and the run aborts on any mismatch. The `hicond_obs`
//! metrics snapshot accumulated over the run (solver iterations, residual
//! traces, phase timers, pool counters) is embedded under a top-level
//! `"metrics"` key.
//!
//! A kernel-level phase additionally times each SpMV/PCG **variant pair**
//! (unblocked vs row-band blocked, unfused vs fused) single-threaded and
//! normalizes to ns-per-nnz and modelled bytes-per-nnz — the
//! cycles-per-nnz table of DESIGN.md §12. Each pair is gated bitwise
//! against its reference variant before any timing, so a fused or blocked
//! kernel that diverges by one ULP fails the run.
//!
//! Usage:
//!   bench_suite [--smoke] [--out PATH] [--baseline PATH]
//!
//! `--smoke` shrinks every workload and the repetition counts so CI can
//! exercise the full code path in a couple of seconds (the JSON is then
//! marked `"mode": "smoke"` and not meant for cross-PR comparison).
//! `--baseline PATH` points at a previous trajectory (default
//! `BENCH_pr8.json`, then `BENCH_pr7.json`/`BENCH_pr5.json`, when
//! present) whose single-thread PCG median seeds the
//! `pcg_speedup_vs_baseline_1t` meta field.
//!
//! A **batched-solve phase** sweeps the multi-client coalescing width
//! k ∈ {1, 2, 4, 8} on the planar benchmark: k sequential
//! `LaplacianSolver::solve` calls vs one `solve_block` over the same k
//! right-hand sides, interleaved. Each width is first gated bitwise —
//! every block column must equal its solo solve at 1 thread *and* at the
//! maximum cap — and in full mode the run aborts unless batched k=8
//! throughput strictly exceeds sequential k=1 (the `hicond serve
//! --listen` batching win). Results land under a top-level `"batch"` key.
//!
//! An **observability cost gate** times the same single-threaded PCG solve
//! with the flight recorder + metrics fully enabled (`HICOND_OBS=json`)
//! against the off mode (one relaxed load per instrumentation site),
//! interleaved so machine drift hits both arms equally. The per-iteration
//! overhead lands under a top-level `"obs_overhead"` key; in full (non
//! `--smoke`) mode the run **aborts** if the ring-enabled overhead exceeds
//! the 3% budget of DESIGN.md §13. The two arms are first gated bitwise:
//! recording must never feed back into the numerics.

use hicond_bench::{bench_json, consistent_rhs, timed_median_ns, BenchRecord, KernelRecord, Table};
use hicond_core::{decompose_planar, PlanarOptions};
use hicond_graph::{generators, laplacian, Graph, RootedForest};
use hicond_linalg::cg::{pcg_solve, CgOptions, JacobiPreconditioner};
use hicond_linalg::csr::CsrMatrix;
use hicond_precond::{decode_solver, encode_solver, LaplacianSolver, SolverOptions};
use hicond_treecontract::subtree_sizes_parallel;
use rayon::pool::with_thread_cap;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Hard ceiling on the ring-enabled PCG per-iteration cost relative to the
/// off mode (DESIGN.md §13). Enforced in full mode, reported in smoke.
const OBS_OVERHEAD_BUDGET_PCT: f64 = 3.0;

struct Config {
    smoke: bool,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        out: "BENCH_pr10.json".to_string(),
        baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            "--baseline" => cfg.baseline = Some(args.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_suite [--smoke] [--out PATH] [--baseline PATH]");
                std::process::exit(2);
            }
        }
    }
    if cfg.baseline.is_none() {
        for cand in ["BENCH_pr8.json", "BENCH_pr7.json", "BENCH_pr5.json"] {
            if std::path::Path::new(cand).exists() {
                cfg.baseline = Some(cand.to_string());
                break;
            }
        }
    }
    cfg
}

/// Pulls the single-thread PCG median out of a previous trajectory without
/// a JSON parser: scans the `"results"` rows for the pcg/threads=1 record.
/// Returns `None` on any shape surprise — the speedup meta field is then
/// simply omitted.
fn baseline_pcg_1t_ns(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"workload\": \"pcg\"") && line.contains("\"threads\": 1,") {
            let key = "\"median_ns\": ";
            let start = line.find(key)? + key.len();
            let rest = &line[start..];
            let end = rest.find(|c: char| !c.is_ascii_digit())?;
            return rest[..end].parse().ok();
        }
    }
    None
}

/// Modelled streamed bytes per nonzero for one CSR SpMV sweep: 8 B value +
/// 4 B column index + 8 B x-gather per nnz, plus the row-pointer stream and
/// the y write amortized over the nonzeros. The blocked layout streams u32
/// band-local pointers (one per row per band boundary) plus one usize band
/// offset per band instead of usize row pointers.
fn spmv_bytes_per_nnz(n: usize, nnz: usize, blocked: bool) -> f64 {
    let ptr_bytes = if blocked {
        let nbands = n.div_ceil(hicond_linalg::blocked::BAND_ROWS);
        4 * (n + nbands) + 8 * nbands
    } else {
        8 * (n + 1)
    };
    (12 * nnz + 8 * nnz + ptr_bytes + 8 * n) as f64 / nnz as f64
}

/// Modelled streamed bytes per iteration·nnz for Jacobi-PCG: one SpMV
/// sweep plus `sweeps` full n-vector streams (reads + writes) of the BLAS-1
/// tail. Unfused: z=Mr, r·z, α-denominator dot, x-axpy, r-axpy, ‖r‖², and
/// the p update — 16 vector streams. Fusion folds the preconditioner apply
/// into the r·z dot and the x/r updates into the norm sweep — 14 streams.
fn pcg_bytes_per_nnz(n: usize, nnz: usize, blocked: bool, sweeps: usize) -> f64 {
    spmv_bytes_per_nnz(n, nnz, blocked) + (8 * n * sweeps) as f64 / nnz as f64
}

/// Builds one normalized kernel row from a measured median. `work_nnz` is
/// the nonzeros processed per invocation × iterations (for iterative
/// kernels), the ns-per-nnz denominator.
fn kernel_record(
    kernel: &str,
    variant: &str,
    n: usize,
    nnz: usize,
    work_nnz: usize,
    median_ns: u64,
    bytes_per_nnz: f64,
) -> KernelRecord {
    KernelRecord {
        kernel: kernel.to_string(),
        variant: variant.to_string(),
        n,
        nnz,
        threads: 1,
        median_ns,
        ns_per_nnz: median_ns as f64 / work_nnz as f64,
        bytes_per_nnz,
    }
}

/// Bit-exact view of an f64 vector.
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// One workload: a setup-free closure producing a comparable output, run
/// under each thread cap.
fn measure<T, F>(
    name: &str,
    n: usize,
    nnz: usize,
    reps: usize,
    records: &mut Vec<BenchRecord>,
    run: F,
) where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    // Determinism gate: max-cap output must equal the 1-thread output.
    let seq = with_thread_cap(1, &run);
    let par = with_thread_cap(*THREADS.last().unwrap(), &run);
    assert!(
        seq == par,
        "{name}: output differs between 1 and {} threads",
        THREADS.last().unwrap()
    );
    let mut base_ns = 0u64;
    for &t in &THREADS {
        let ns = with_thread_cap(t, || timed_median_ns(reps, &run));
        if t == 1 {
            base_ns = ns;
        }
        records.push(BenchRecord {
            workload: name.to_string(),
            n,
            nnz,
            threads: t,
            median_ns: ns,
            speedup: base_ns as f64 / ns as f64,
        });
    }
}

fn grid_graph(side: usize) -> Graph {
    generators::grid2d(side, side, |u, v| 1.0 + ((u * 7 + v * 13) % 5) as f64)
}

fn main() {
    let cfg = parse_args();
    // Collect metrics for the whole run regardless of HICOND_OBS: the
    // snapshot is embedded in the JSON trajectory, not printed.
    hicond_obs::set_mode(hicond_obs::Mode::Json);
    hicond_obs::reset();
    // Full mode: n = 320² ≥ 10⁵ grid Laplacian per the acceptance bar.
    let (side, tree_n, planar_side, reps_fast, reps_slow) = if cfg.smoke {
        (40, 5_000, 16, 3, 1)
    } else {
        (320, 200_000, 96, 9, 3)
    };

    let grid = grid_graph(side);
    let a: CsrMatrix = laplacian(&grid);
    let n = a.nrows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let b = consistent_rhs(n, 42);
    let tree = generators::random_tree(tree_n, 7, 0.5, 2.0);
    let forest = RootedForest::from_graph(&tree).expect("random_tree is a tree");
    let planar_g = grid_graph(planar_side);

    let mut records: Vec<BenchRecord> = Vec::new();

    measure("spmv", n, a.nnz(), reps_fast, &mut records, || a.mul(&x));

    let pcg_opts = CgOptions {
        rel_tol: 0.0, // never met: fixed iteration count for comparability
        max_iter: if cfg.smoke { 5 } else { 50 },
        record_residuals: false,
    };
    let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
    // reps_fast: the single-thread pcg median is the trajectory's headline
    // cross-PR number, so it gets the larger repetition count — median of 3
    // is too fragile against CPU-steal spikes on shared runners.
    measure("pcg", n, a.nnz(), reps_fast, &mut records, || {
        let r = pcg_solve(&a, &m, &b, &pcg_opts);
        (r.x, r.iterations)
    });

    measure(
        "treecontract",
        tree_n,
        tree.num_edges(),
        reps_slow,
        &mut records,
        || subtree_sizes_parallel(&forest),
    );

    measure(
        "planar",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || {
            let d = decompose_planar(&planar_g, &PlanarOptions::default());
            d.partition.assignment().to_vec()
        },
    );

    // Artifact triple on the planar benchmark: building the preconditioner
    // from scratch vs deserializing the persisted artifact vs the per-rhs
    // solve it amortizes. The build output is the artifact bytes, so its
    // determinism gate doubles as a build∘encode fixpoint check at every
    // thread cap; load times checksum + decode + validation alone (the
    // `hicond serve` warm-start path).
    let solver_opts = SolverOptions::default();
    measure(
        "artifact_build",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || encode_solver(&LaplacianSolver::new(&planar_g, &solver_opts)),
    );
    let artifact_bytes = encode_solver(&LaplacianSolver::new(&planar_g, &solver_opts));
    measure(
        "artifact_load",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_fast,
        &mut records,
        || {
            let s = decode_solver(&artifact_bytes).expect("artifact decodes");
            (s.dim(), s.num_levels())
        },
    );
    let solver = decode_solver(&artifact_bytes).expect("artifact decodes");
    let planar_b = consistent_rhs(planar_g.num_vertices(), 1912);
    measure(
        "artifact_solve",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || solver.solve(&planar_b).expect("planar solve converges").x,
    );

    // ---- Kernel-level cycles-per-nnz phase (DESIGN.md §12) ----
    // Each variant pair is gated bitwise against its reference variant,
    // then timed single-threaded with invocations *interleaved* so slow
    // machine drift cannot masquerade as a variant difference. The global
    // dispatch threshold is forced on for the blocked/fused runs and
    // restored afterwards, so the workload phase above is unaffected.
    let mut kernels: Vec<KernelRecord> = Vec::new();
    let nnz = a.nnz();
    {
        // SpMV: unblocked reference vs row-band blocked layout. mul_into
        // is the plain reference kernel regardless of the threshold;
        // mul_into_with dispatches the blocked path once forced on.
        hicond_linalg::set_spmv_block_threshold(Some(0));
        let mut y_ref = vec![0.0; n];
        a.mul_into(&x, &mut y_ref);
        let mut y_blk = vec![0.0; n];
        with_thread_cap(1, || a.mul_into_with(&x, &mut y_blk, Default::default()));
        assert_eq!(
            bits(&y_ref),
            bits(&y_blk),
            "blocked SpMV diverges bitwise from the unblocked reference"
        );
        let mut y_a = vec![0.0; n];
        let mut y_b = vec![0.0; n];
        let (un_ns, bl_ns) = with_thread_cap(1, || {
            hicond_bench::timed_median_pair_ns(
                reps_fast,
                || a.mul_into(&x, &mut y_a),
                || a.mul_into_with(&x, &mut y_b, Default::default()),
            )
        });
        kernels.push(kernel_record(
            "spmv",
            "unblocked",
            n,
            nnz,
            nnz,
            un_ns,
            spmv_bytes_per_nnz(n, nnz, false),
        ));
        kernels.push(kernel_record(
            "spmv",
            "blocked",
            n,
            nnz,
            nnz,
            bl_ns,
            spmv_bytes_per_nnz(n, nnz, true),
        ));

        // PCG: unfused vs fused solver, both over the blocked SpMV so the
        // pair isolates the fusion win. Fixed iteration count (rel_tol 0)
        // keeps the two trajectories the same length.
        let (unfused, fused) = with_thread_cap(1, || {
            (
                hicond_linalg::pcg_solve_unfused(&a, &m, &b, &pcg_opts),
                pcg_solve(&a, &m, &b, &pcg_opts),
            )
        });
        assert_eq!(
            (bits(&unfused.x), unfused.iterations),
            (bits(&fused.x), fused.iterations),
            "fused PCG diverges bitwise from the unfused trajectory"
        );
        let iters = fused.iterations.max(1);
        let (unf_ns, fus_ns) = with_thread_cap(1, || {
            hicond_bench::timed_median_pair_ns(
                reps_fast,
                || {
                    hicond_linalg::pcg_solve_unfused(&a, &m, &b, &pcg_opts);
                },
                || {
                    pcg_solve(&a, &m, &b, &pcg_opts);
                },
            )
        });
        kernels.push(kernel_record(
            "pcg",
            "unfused",
            n,
            nnz,
            iters * nnz,
            unf_ns,
            pcg_bytes_per_nnz(n, nnz, true, 16),
        ));
        kernels.push(kernel_record(
            "pcg",
            "fused",
            n,
            nnz,
            iters * nnz,
            fus_ns,
            pcg_bytes_per_nnz(n, nnz, true, 14),
        ));
        hicond_linalg::set_spmv_block_threshold(None);
    }

    // ---- Observability cost gate (DESIGN.md §13) ----
    // The same fixed-length single-thread PCG solve with recording fully
    // off vs fully on (flight ring + registry + watchdog + milestone
    // events). The off arm flips the global mode latch inside its timed
    // closure — two relaxed stores, noise at solve scale — so the two arms
    // interleave under `timed_median_pair_ns` and machine drift hits both
    // equally. Gated bitwise first: recording must never feed back into
    // the numerics.
    let obs_overhead_json = {
        let (off_run, on_run) = with_thread_cap(1, || {
            hicond_obs::set_mode(hicond_obs::Mode::Off);
            let off = pcg_solve(&a, &m, &b, &pcg_opts);
            hicond_obs::set_mode(hicond_obs::Mode::Json);
            let on = pcg_solve(&a, &m, &b, &pcg_opts);
            (off, on)
        });
        assert_eq!(
            (bits(&off_run.x), off_run.iterations),
            (bits(&on_run.x), on_run.iterations),
            "recording-enabled PCG diverges bitwise from the off-mode trajectory"
        );
        let iters = on_run.iterations.max(1);
        let (off_ns, ring_ns) = with_thread_cap(1, || {
            hicond_bench::timed_median_pair_ns(
                reps_fast,
                || {
                    hicond_obs::set_mode(hicond_obs::Mode::Off);
                    pcg_solve(&a, &m, &b, &pcg_opts);
                    hicond_obs::set_mode(hicond_obs::Mode::Json);
                },
                || {
                    pcg_solve(&a, &m, &b, &pcg_opts);
                },
            )
        });
        let off_per_iter = off_ns as f64 / iters as f64;
        let ring_per_iter = ring_ns as f64 / iters as f64;
        let overhead_pct = (ring_per_iter - off_per_iter) / off_per_iter * 100.0;
        let within = overhead_pct < OBS_OVERHEAD_BUDGET_PCT;
        println!(
            "obs overhead: off {off_per_iter:.0} ns/iter, ring-enabled {ring_per_iter:.0} \
             ns/iter ({overhead_pct:+.3}% vs {OBS_OVERHEAD_BUDGET_PCT}% budget)"
        );
        if !cfg.smoke {
            assert!(
                within,
                "ring-enabled PCG overhead {overhead_pct:.3}% exceeds the \
                 {OBS_OVERHEAD_BUDGET_PCT}% budget (DESIGN.md §13)"
            );
        }
        format!(
            "{{\"workload\": \"pcg\", \"n\": {n}, \"nnz\": {nnz}, \"threads\": 1, \
             \"iterations\": {iters}, \"off_median_ns\": {off_ns}, \
             \"ring_median_ns\": {ring_ns}, \"off_ns_per_iter\": {off_per_iter:.1}, \
             \"ring_ns_per_iter\": {ring_per_iter:.1}, \"overhead_pct\": {overhead_pct:.3}, \
             \"budget_pct\": {OBS_OVERHEAD_BUDGET_PCT:.1}, \"within_budget\": {within}}}"
        )
    };
    hicond_obs::json::validate(&obs_overhead_json)
        .expect("obs_overhead section must be valid JSON");

    // ---- Batched-solve phase (multi-client coalescing width sweep) ----
    // The serve batch dispatcher folds k concurrent requests into one
    // `solve_block`; this phase measures what that coalescing buys on the
    // planar benchmark. Per width: bitwise gate (every block column ==
    // its solo solve, at 1 thread and at the max cap — the determinism
    // contract the serve tests rely on), then k sequential solves vs one
    // block solve, interleaved so drift hits both arms.
    let batch_rows: Vec<(usize, u64, u64, f64, f64)> = {
        let pn = planar_g.num_vertices();
        let mut rows = Vec::new();
        for k in [1usize, 2, 4, 8] {
            let rhss: Vec<Vec<f64>> = (0..k)
                .map(|j| consistent_rhs(pn, 2000 + j as u64))
                .collect();
            let solo: Vec<Vec<f64>> = with_thread_cap(1, || {
                rhss.iter()
                    .map(|b| solver.solve(b).expect("planar solo solve converges").x)
                    .collect()
            });
            for cap in [1, *THREADS.last().unwrap()] {
                let blk = with_thread_cap(cap, || solver.solve_block(&rhss));
                for (j, r) in blk.iter().enumerate() {
                    let x = &r.as_ref().expect("block column converges").x;
                    assert_eq!(
                        bits(x),
                        bits(&solo[j]),
                        "batch k={k}: column {j} at cap {cap} diverges bitwise from its solo solve"
                    );
                }
            }
            let (seq_ns, blk_ns) = hicond_bench::timed_median_pair_ns(
                reps_slow,
                || {
                    for b in &rhss {
                        solver.solve(b).expect("sequential solve converges");
                    }
                },
                || {
                    for r in solver.solve_block(&rhss) {
                        r.expect("block solve converges");
                    }
                },
            );
            let sps_seq = k as f64 * 1e9 / seq_ns.max(1) as f64;
            let sps_blk = k as f64 * 1e9 / blk_ns.max(1) as f64;
            rows.push((k, seq_ns, blk_ns, sps_seq, sps_blk));
        }
        rows
    };
    let sps_seq_k1 = batch_rows
        .iter()
        .find(|r| r.0 == 1)
        .map(|r| r.3)
        .unwrap_or(0.0);
    let sps_blk_k8 = batch_rows
        .iter()
        .find(|r| r.0 == 8)
        .map(|r| r.4)
        .unwrap_or(0.0);
    if !cfg.smoke {
        assert!(
            sps_blk_k8 > sps_seq_k1,
            "batched k=8 throughput ({sps_blk_k8:.1} solves/s) must strictly exceed \
             sequential k=1 ({sps_seq_k1:.1} solves/s) on the planar benchmark"
        );
    }
    let batch_json = format!(
        "[{}]",
        batch_rows
            .iter()
            .map(|(k, seq_ns, blk_ns, sps_seq, sps_blk)| {
                format!(
                    "{{\"k\": {k}, \"n\": {}, \"seq_median_ns\": {seq_ns}, \
                     \"block_median_ns\": {blk_ns}, \"seq_solves_per_sec\": {sps_seq:.2}, \
                     \"block_solves_per_sec\": {sps_blk:.2}, \"block_speedup\": {:.3}}}",
                    planar_g.num_vertices(),
                    *seq_ns as f64 / (*blk_ns).max(1) as f64,
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    );
    hicond_obs::json::validate(&batch_json).expect("batch section must be valid JSON");

    // Headline ratio for the trajectory: how much faster deserializing the
    // preconditioner is than rebuilding it (single-threaded medians).
    let median_of = |w: &str| {
        records
            .iter()
            .find(|r| r.workload == w && r.threads == 1)
            .map(|r| r.median_ns)
            .unwrap_or(0)
    };
    let load_speedup =
        median_of("artifact_build") as f64 / median_of("artifact_load").max(1) as f64;

    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut meta = vec![
        ("bench", "bench_suite".to_string()),
        ("mode", if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ("hardware_threads", hw_threads.to_string()),
        // Resolved execution-engine configuration: the thread count after
        // HICOND_THREADS parsing and the size-adaptive chunking policy the
        // BLAS-1 kernels partition under (both thread-count-blind).
        (
            "threads_resolved",
            rayon::pool::default_threads().to_string(),
        ),
        ("chunk_policy", rayon::pool::chunk_policy()),
        (
            "spmv_block_threshold",
            hicond_linalg::spmv_block_threshold().to_string(),
        ),
        (
            "note",
            format!(
                "thread caps above the {hw_threads} hardware thread(s) share cores \
                 by timeslicing; speedups are only meaningful up to the hardware width"
            ),
        ),
        (
            "kernel_note",
            "kernels[].ns_per_nnz is wall-clock ns per processed nonzero \
             (per iteration*nnz for pcg) at 1 thread — multiply by the core \
             clock in GHz for cycles-per-nnz; bytes_per_nnz is modelled \
             streamed traffic, and both depend on this machine's cache and \
             SIMD width, so compare across PRs only on the same hardware"
                .to_string(),
        ),
        (
            "determinism",
            "all workloads bitwise-identical at 1 vs max threads; kernel \
             variants (blocked/fused) gated bitwise against references"
                .to_string(),
        ),
        (
            "artifact_load_speedup_vs_build",
            format!("{load_speedup:.1}"),
        ),
        // Seeded scheduler perturbation slows every claim; timings from a
        // jittered run must never be compared against clean ones.
        (
            "sched_jitter",
            match rayon::pool::sched_jitter() {
                Some(seed) => format!("seed {seed} (timings perturbed — not comparable)"),
                None => "off".to_string(),
            },
        ),
    ];
    if let Some(base) = cfg.baseline.as_deref() {
        if let Some(base_ns) = baseline_pcg_1t_ns(base) {
            let speedup = base_ns as f64 / median_of("pcg").max(1) as f64;
            meta.push((
                "pcg_speedup_vs_baseline_1t",
                format!("{speedup:.3} (vs {base})"),
            ));
        } else {
            eprintln!("warning: no pcg/threads=1 record found in baseline {base}");
        }
    }
    let metrics = hicond_obs::render_json(&hicond_obs::snapshot());
    hicond_obs::json::validate(&metrics).expect("obs metrics snapshot must be valid JSON");
    let json = bench_json(
        &meta,
        &records,
        &kernels,
        &[
            ("metrics", metrics.as_str()),
            ("obs_overhead", obs_overhead_json.as_str()),
            ("batch", batch_json.as_str()),
        ],
    );
    hicond_obs::json::validate(&json).expect("bench trajectory must be valid JSON");
    std::fs::write(&cfg.out, &json).expect("write bench json");

    let mut table = Table::new(&["workload", "n", "nnz", "threads", "median_ns", "speedup"]);
    for r in &records {
        table.row(vec![
            r.workload.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.threads.to_string(),
            r.median_ns.to_string(),
            format!("{:.2}", r.speedup),
        ]);
    }
    table.print();
    let mut ktable = Table::new(&[
        "kernel",
        "variant",
        "n",
        "nnz",
        "median_ns",
        "ns/nnz",
        "bytes/nnz",
    ]);
    for k in &kernels {
        ktable.row(vec![
            k.kernel.clone(),
            k.variant.clone(),
            k.n.to_string(),
            k.nnz.to_string(),
            k.median_ns.to_string(),
            format!("{:.3}", k.ns_per_nnz),
            format!("{:.1}", k.bytes_per_nnz),
        ]);
    }
    ktable.print();
    let mut btable = Table::new(&[
        "batch_k",
        "seq_median_ns",
        "block_median_ns",
        "seq_solves/s",
        "block_solves/s",
        "speedup",
    ]);
    for (k, seq_ns, blk_ns, sps_seq, sps_blk) in &batch_rows {
        btable.row(vec![
            k.to_string(),
            seq_ns.to_string(),
            blk_ns.to_string(),
            format!("{sps_seq:.1}"),
            format!("{sps_blk:.1}"),
            format!("{:.2}", *seq_ns as f64 / (*blk_ns).max(1) as f64),
        ]);
    }
    btable.print();
    println!("wrote {} (with embedded obs metrics snapshot)", cfg.out);
}
