//! Machine-readable benchmark trajectory (DESIGN.md §7).
//!
//! Times the hot workloads — SpMV, Jacobi-PCG, parallel tree
//! contraction (subtree sizes via list ranking), planar [φ, ρ]
//! decomposition, and the artifact build/load/solve triple — under thread
//! caps 1/2/4/8 and writes the results to
//! `BENCH_pr5.json` so every future PR can diff against them. Before any
//! timing, each workload's output at the maximum thread cap is checked
//! **bitwise** against the 1-thread output (the engine's determinism
//! contract), and the run aborts on any mismatch. The `hicond_obs`
//! metrics snapshot accumulated over the run (solver iterations, residual
//! traces, phase timers, pool counters) is embedded under a top-level
//! `"metrics"` key.
//!
//! Usage:
//!   bench_suite [--smoke] [--out PATH]
//!
//! `--smoke` shrinks every workload and the repetition counts so CI can
//! exercise the full code path in a couple of seconds (the JSON is then
//! marked `"mode": "smoke"` and not meant for cross-PR comparison).

use hicond_bench::{bench_json, consistent_rhs, timed_median_ns, BenchRecord, Table};
use hicond_core::{decompose_planar, PlanarOptions};
use hicond_graph::{generators, laplacian, Graph, RootedForest};
use hicond_linalg::cg::{pcg_solve, CgOptions, JacobiPreconditioner};
use hicond_linalg::csr::CsrMatrix;
use hicond_precond::{decode_solver, encode_solver, LaplacianSolver, SolverOptions};
use hicond_treecontract::subtree_sizes_parallel;
use rayon::pool::with_thread_cap;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Config {
    smoke: bool,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        smoke: false,
        out: "BENCH_pr5.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => cfg.out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_suite [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// One workload: a setup-free closure producing a comparable output, run
/// under each thread cap.
fn measure<T, F>(
    name: &str,
    n: usize,
    nnz: usize,
    reps: usize,
    records: &mut Vec<BenchRecord>,
    run: F,
) where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    // Determinism gate: max-cap output must equal the 1-thread output.
    let seq = with_thread_cap(1, &run);
    let par = with_thread_cap(*THREADS.last().unwrap(), &run);
    assert!(
        seq == par,
        "{name}: output differs between 1 and {} threads",
        THREADS.last().unwrap()
    );
    let mut base_ns = 0u64;
    for &t in &THREADS {
        let ns = with_thread_cap(t, || timed_median_ns(reps, &run));
        if t == 1 {
            base_ns = ns;
        }
        records.push(BenchRecord {
            workload: name.to_string(),
            n,
            nnz,
            threads: t,
            median_ns: ns,
            speedup: base_ns as f64 / ns as f64,
        });
    }
}

fn grid_graph(side: usize) -> Graph {
    generators::grid2d(side, side, |u, v| 1.0 + ((u * 7 + v * 13) % 5) as f64)
}

fn main() {
    let cfg = parse_args();
    // Collect metrics for the whole run regardless of HICOND_OBS: the
    // snapshot is embedded in the JSON trajectory, not printed.
    hicond_obs::set_mode(hicond_obs::Mode::Json);
    hicond_obs::reset();
    // Full mode: n = 320² ≥ 10⁵ grid Laplacian per the acceptance bar.
    let (side, tree_n, planar_side, reps_fast, reps_slow) = if cfg.smoke {
        (40, 5_000, 16, 3, 1)
    } else {
        (320, 200_000, 96, 9, 3)
    };

    let grid = grid_graph(side);
    let a: CsrMatrix = laplacian(&grid);
    let n = a.nrows();
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let b = consistent_rhs(n, 42);
    let tree = generators::random_tree(tree_n, 7, 0.5, 2.0);
    let forest = RootedForest::from_graph(&tree).expect("random_tree is a tree");
    let planar_g = grid_graph(planar_side);

    let mut records: Vec<BenchRecord> = Vec::new();

    measure("spmv", n, a.nnz(), reps_fast, &mut records, || a.mul(&x));

    let pcg_opts = CgOptions {
        rel_tol: 0.0, // never met: fixed iteration count for comparability
        max_iter: if cfg.smoke { 5 } else { 50 },
        record_residuals: false,
    };
    let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
    measure("pcg", n, a.nnz(), reps_slow, &mut records, || {
        let r = pcg_solve(&a, &m, &b, &pcg_opts);
        (r.x, r.iterations)
    });

    measure(
        "treecontract",
        tree_n,
        tree.num_edges(),
        reps_slow,
        &mut records,
        || subtree_sizes_parallel(&forest),
    );

    measure(
        "planar",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || {
            let d = decompose_planar(&planar_g, &PlanarOptions::default());
            d.partition.assignment().to_vec()
        },
    );

    // Artifact triple on the planar benchmark: building the preconditioner
    // from scratch vs deserializing the persisted artifact vs the per-rhs
    // solve it amortizes. The build output is the artifact bytes, so its
    // determinism gate doubles as a build∘encode fixpoint check at every
    // thread cap; load times checksum + decode + validation alone (the
    // `hicond serve` warm-start path).
    let solver_opts = SolverOptions::default();
    measure(
        "artifact_build",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || encode_solver(&LaplacianSolver::new(&planar_g, &solver_opts)),
    );
    let artifact_bytes = encode_solver(&LaplacianSolver::new(&planar_g, &solver_opts));
    measure(
        "artifact_load",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_fast,
        &mut records,
        || {
            let s = decode_solver(&artifact_bytes).expect("artifact decodes");
            (s.dim(), s.num_levels())
        },
    );
    let solver = decode_solver(&artifact_bytes).expect("artifact decodes");
    let planar_b = consistent_rhs(planar_g.num_vertices(), 1912);
    measure(
        "artifact_solve",
        planar_g.num_vertices(),
        planar_g.num_edges(),
        reps_slow,
        &mut records,
        || solver.solve(&planar_b).expect("planar solve converges").x,
    );

    // Headline ratio for the trajectory: how much faster deserializing the
    // preconditioner is than rebuilding it (single-threaded medians).
    let median_of = |w: &str| {
        records
            .iter()
            .find(|r| r.workload == w && r.threads == 1)
            .map(|r| r.median_ns)
            .unwrap_or(0)
    };
    let load_speedup =
        median_of("artifact_build") as f64 / median_of("artifact_load").max(1) as f64;

    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let meta = [
        ("bench", "bench_suite".to_string()),
        ("mode", if cfg.smoke { "smoke" } else { "full" }.to_string()),
        ("hardware_threads", hw_threads.to_string()),
        (
            "note",
            format!(
                "thread caps above the {hw_threads} hardware thread(s) share cores \
                 by timeslicing; speedups are only meaningful up to the hardware width"
            ),
        ),
        (
            "determinism",
            "all workloads bitwise-identical at 1 vs max threads".to_string(),
        ),
        (
            "artifact_load_speedup_vs_build",
            format!("{load_speedup:.1}"),
        ),
        // Seeded scheduler perturbation slows every claim; timings from a
        // jittered run must never be compared against clean ones.
        (
            "sched_jitter",
            match rayon::pool::sched_jitter() {
                Some(seed) => format!("seed {seed} (timings perturbed — not comparable)"),
                None => "off".to_string(),
            },
        ),
    ];
    let metrics = hicond_obs::render_json(&hicond_obs::snapshot());
    hicond_obs::json::validate(&metrics).expect("obs metrics snapshot must be valid JSON");
    let json = bench_json(&meta, &records, Some(&metrics));
    hicond_obs::json::validate(&json).expect("bench trajectory must be valid JSON");
    std::fs::write(&cfg.out, &json).expect("write bench json");

    let mut table = Table::new(&["workload", "n", "nnz", "threads", "median_ns", "speedup"]);
    for r in &records {
        table.row(vec![
            r.workload.clone(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.threads.to_string(),
            r.median_ns.to_string(),
            format!("{:.2}", r.speedup),
        ]);
    }
    table.print();
    println!("wrote {} (with embedded obs metrics snapshot)", cfg.out);
}
