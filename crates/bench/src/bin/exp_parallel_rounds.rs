//! **E14 — the O(log n) parallel-round claims, measured structurally.**
//!
//! Theorems 2.1 and 2.2 claim O(log n) parallel time; the parallel depth
//! of our pipeline is governed by (i) pointer-jumping list-ranking rounds
//! over the Euler tour and (ii) rake/compress contraction rounds. This
//! experiment counts both as n grows: logarithmic growth in the table is
//! the claim, machine-independent.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_parallel_rounds
//! ```

use hicond_bench::{fmt, Table};
use hicond_graph::forest::RootedForest;
use hicond_graph::generators;
use hicond_treecontract::contraction::subtree_sums_contraction;
use hicond_treecontract::euler::euler_tour;
use hicond_treecontract::listrank::list_rank_parallel_with_rounds;

fn main() {
    println!("# Parallel round counts vs n (claims: O(log n))");
    let mut t = Table::new(&[
        "tree",
        "n",
        "log2 n",
        "listrank rounds",
        "contraction rounds",
    ]);
    for &exp in &[8u32, 10, 12, 14, 16, 18, 20] {
        let n = 1usize << exp;
        for (name, g) in [
            ("path", generators::path(n, |_| 1.0)),
            ("random", generators::random_tree(n, 7, 1.0, 1.0)),
        ] {
            let f = RootedForest::from_graph(&g).unwrap();
            let tour = euler_tour(&f);
            let (_, lr_rounds) = list_rank_parallel_with_rounds(&tour.succ);
            let values = vec![1.0; n];
            let contraction = subtree_sums_contraction(&f, &values);
            t.row(vec![
                name.into(),
                n.to_string(),
                fmt(exp as f64),
                lr_rounds.to_string(),
                contraction.rounds.to_string(),
            ]);
        }
    }
    t.print();
    println!("\n# shape check: both round counts grow by ~O(1) per doubling of n —");
    println!("# the machine-independent witness of the paper's O(log n) parallel time.");
}
