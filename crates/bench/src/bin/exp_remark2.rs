//! **E10 — Remark 2**: the cost structure of applying each preconditioner.
//! Steiner application is "completely independent" leaf elimination
//! (cluster-wise sums) plus a coarse solve; the subgraph preconditioner
//! replays an inherently sequential chain of degree-1/2 eliminations.
//! This experiment times setup and per-application cost of both, plus the
//! fraction of Steiner apply time spent in the parallel part.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_remark2 [side]
//! ```

use hicond_bench::{consistent_rhs, fmt, timed, timed_median, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::generators;
use hicond_linalg::Preconditioner;
use hicond_precond::{
    MultilevelOptions, MultilevelSteiner, SteinerPreconditioner, SubgraphOptions,
    SubgraphPreconditioner,
};

fn main() {
    // Default 16³ keeps the two-level quotient within dense-Cholesky range;
    // the multilevel rows are what scale beyond it.
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let g = generators::oct_like_grid3d(side, side, side, 33, generators::OctParams::default());
    let n = g.num_vertices();
    println!("# Remark 2: preconditioner cost structure (oct {side}^3, {n} vertices)");
    let r = consistent_rhs(n, 9);

    let mut t = Table::new(&["preconditioner", "setup ms", "apply ms (median of 20)"]);

    let (p, decomp_ms) = timed(|| {
        decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                k: 8,
                ..Default::default()
            },
        )
    });
    let (steiner, steiner_setup) = timed(|| SteinerPreconditioner::new(&g, &p, 50_000));
    let steiner_apply = timed_median(20, || steiner.apply(&r));
    t.row(vec![
        "Steiner (two-level)".into(),
        fmt(decomp_ms + steiner_setup),
        fmt(steiner_apply),
    ]);

    let (ml, ml_setup) = timed(|| MultilevelSteiner::new(&g, &MultilevelOptions::default()));
    let ml_apply = timed_median(20, || ml.apply(&r));
    t.row(vec![
        format!("Steiner (multilevel, {} lvls)", ml.num_levels()),
        fmt(ml_setup),
        fmt(ml_apply),
    ]);

    let (sub, sub_setup) = timed(|| SubgraphPreconditioner::new(&g, &SubgraphOptions::default()));
    let sub_apply = timed_median(20, || sub.apply(&r));
    t.row(vec![
        format!("Subgraph (core {})", sub.core_size),
        fmt(sub_setup),
        fmt(sub_apply),
    ]);

    t.print();
    println!("\n# shape check: Steiner setup is cheaper (no global tree + elimination");
    println!("# recording), and its per-apply work is data-parallel sums/broadcasts,");
    println!("# while the subgraph apply replays a sequential elimination chain.");
}
