//! **E1 — Theorem 2.1**: tree `[φ, ρ]`-decomposition quality across tree
//! families and sizes. Reports the measured minimum closure conductance φ
//! (exact for small closures, spider-verified/Cheeger-bounded otherwise),
//! the reduction factor ρ, the critical-vertex fraction, and the wall
//! time scaling.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_tree_decomp
//! ```

use hicond_bench::{fmt, timed, Table};
use hicond_core::decompose_forest;
use hicond_graph::closure::cluster_quality;
use hicond_graph::{generators, Graph};

fn measure(name: &str, g: &Graph, t: &mut Table) {
    let n = g.num_vertices();
    let (p, ms) = timed(|| decompose_forest(g));
    assert!(p.clusters_connected(g), "{name}: invalid decomposition");
    let mut phi = f64::INFINITY;
    let mut exact_all = true;
    let mut skipped = 0usize;
    for c in p.clusters() {
        let q = cluster_quality(g, &c, 16);
        if q.conductance.exact {
            phi = phi.min(q.conductance.lower);
        } else {
            skipped += 1;
            exact_all = false;
        }
    }
    t.row(vec![
        name.into(),
        n.to_string(),
        p.num_clusters().to_string(),
        fmt(p.reduction_factor()),
        fmt(phi),
        if exact_all {
            "yes".into()
        } else {
            format!("no ({skipped} big)")
        },
        fmt(ms),
    ]);
}

fn main() {
    println!("# Theorem 2.1: tree decompositions ([1/2, 6/5] claimed; >= 1/3 guaranteed)");
    let mut t = Table::new(&["family", "n", "clusters", "rho", "min phi", "exact", "ms"]);
    for &n in &[100usize, 1000, 10_000, 100_000] {
        measure(
            &format!("path u({n})"),
            &generators::path(n, |_| 1.0),
            &mut t,
        );
        measure(
            &format!("path w({n})"),
            &generators::path(n, |i| 1.0 + ((i * 37) % 19) as f64),
            &mut t,
        );
        measure(
            &format!("random({n})"),
            &generators::random_tree(n, 7, 0.01, 100.0),
            &mut t,
        );
        measure(
            &format!("caterpillar({n})"),
            &generators::caterpillar(n / 4, 3, |u, v| 1.0 + ((u + v) % 5) as f64),
            &mut t,
        );
    }
    measure(
        "star(1000)",
        &generators::star(1000, |i| (i % 9 + 1) as f64),
        &mut t,
    );
    measure(
        "binary(d=14)",
        &generators::balanced_binary(14, |u, v| 0.5 + ((u ^ v) % 7) as f64),
        &mut t,
    );
    t.print();
    println!("\n# shape check: rho >= 6/5 everywhere; measured phi >= 1/3 on exact rows;");
    println!("# typical phi is ~0.5 as the paper's [1/2, 6/5] statement suggests.");
}
