//! **E12 — sparsification extension**: the stretch-sampling sparsifier
//! (the Koutis–Miller–Peng-style follow-up of this paper's line of work).
//! Sweeps the oversampling factor and reports edge counts, the measured
//! condition number κ(G, H) of the pencil, and PCG iterations when H is
//! used (via its own multilevel Steiner preconditioner) to precondition G.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_sparsify
//! ```

use hicond_bench::{consistent_rhs, fmt, Table};
use hicond_core::{sparsify_by_stretch, SparsifyOptions};
use hicond_graph::{generators, laplacian};
use hicond_linalg::cg::{cg_solve, pcg_solve, CgOptions};
use hicond_linalg::pencil::{condition_number, PencilOptions};
use hicond_precond::{MultilevelOptions, MultilevelSteiner};

fn main() {
    println!("# Sparsification by stretch sampling (extension of the paper's pipeline)");
    let g = generators::triangulated_grid(24, 24, 11);
    let n = g.num_vertices();
    println!(
        "# triangulated mesh 24x24: {} vertices, {} edges",
        n,
        g.num_edges()
    );
    let la = laplacian(&g);
    let b = consistent_rhs(n, 2);
    let opts = CgOptions {
        rel_tol: 1e-8,
        max_iter: 5000,
        record_residuals: false,
    };
    let plain = cg_solve(&la, &b, &opts);
    println!("# plain CG on G: {} iterations", plain.iterations);

    let mut t = Table::new(&[
        "factor",
        "edges(H)",
        "kept off-tree",
        "kappa(G,H)",
        "PCG iters (H-ML precond)",
    ]);
    for &factor in &[20.0, 60.0, 200.0, 600.0] {
        let s = sparsify_by_stretch(&g, &SparsifyOptions { factor, seed: 3 });
        let lh = laplacian(&s.graph);
        let kappa = condition_number(&la, &lh, &PencilOptions::default());
        // Precondition G with a multilevel Steiner built on H.
        let ml = MultilevelSteiner::new(&s.graph, &MultilevelOptions::default());
        let r = pcg_solve(&la, &ml, &b, &opts);
        t.row(vec![
            fmt(factor),
            s.graph.num_edges().to_string(),
            format!("{}/{}", s.sampled_edges, s.off_tree_edges),
            fmt(kappa),
            format!(
                "{} ({})",
                r.iterations,
                if r.converged { "ok" } else { "!" }
            ),
        ]);
    }
    t.print();
    println!("\n# reading: kappa(G,H) falls monotonically with the sampling budget, and");
    println!("# past a modest budget the H-based preconditioner overtakes plain CG while");
    println!("# H keeps a fraction of G's off-tree edges — the sparsifier trade-off.");
}
