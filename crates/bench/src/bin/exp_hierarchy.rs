//! **E9 — Remark 3 + laminar hierarchies**: recursive contraction. Reports
//! per-level vertex counts and reduction factors, cluster "roundness"
//! (hop diameter vs size — Remark 3's observation that super-clusters are
//! round), and PCG iteration counts using the hierarchy at increasing
//! depth.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_hierarchy
//! ```

use hicond_bench::{consistent_rhs, fmt, Table};
use hicond_core::{build_hierarchy, FixedDegreeOptions, HierarchyOptions};
use hicond_graph::connectivity::set_diameter;
use hicond_graph::{generators, laplacian};
use hicond_linalg::cg::{pcg_solve, CgOptions};
use hicond_precond::{MultilevelOptions, MultilevelSteiner};

fn main() {
    println!("# Remark 3: recursive contraction hierarchies");
    let g = generators::oct_like_grid3d(16, 16, 16, 21, generators::OctParams::default());
    let n = g.num_vertices();
    println!("# oct-like 16^3: {n} vertices, {} edges", g.num_edges());

    let h = build_hierarchy(
        &g,
        &HierarchyOptions {
            coarse_size: 50,
            ..Default::default()
        },
    );

    println!("\n## per-level structure");
    let mut t = Table::new(&["level", "n", "edges", "reduction", "avg diam", "avg size"]);
    for (l, level) in h.levels.iter().enumerate() {
        let reduction = if l == 0 {
            "-".to_string()
        } else {
            fmt(h.levels[l - 1].graph.num_vertices() as f64 / level.graph.num_vertices() as f64)
        };
        // Cluster roundness at this level (diameter vs size of level-l
        // clusters inside the level-l graph).
        let (avg_diam, avg_size) = match &level.partition {
            Some(p) => {
                let clusters = p.clusters();
                let sample: Vec<_> = clusters.iter().filter(|c| c.len() >= 2).take(500).collect();
                let mut diam_sum = 0.0;
                let mut size_sum = 0.0;
                for c in &sample {
                    diam_sum += set_diameter(&level.graph, c) as f64;
                    size_sum += c.len() as f64;
                }
                let cnt = sample.len().max(1) as f64;
                (fmt(diam_sum / cnt), fmt(size_sum / cnt))
            }
            None => ("-".into(), "-".into()),
        };
        t.row(vec![
            l.to_string(),
            level.graph.num_vertices().to_string(),
            level.graph.num_edges().to_string(),
            reduction,
            avg_diam,
            avg_size,
        ]);
    }
    t.print();

    println!("\n## PCG with the multilevel Steiner preconditioner vs hierarchy depth");
    let a = laplacian(&g);
    let b = consistent_rhs(n, 6);
    let mut t = Table::new(&[
        "coarse size",
        "levels",
        "smoothing",
        "iterations",
        "rel res",
    ]);
    for &coarse in &[2000usize, 500, 50] {
        for smoothing in [false, true] {
            let ml = MultilevelSteiner::new(
                &g,
                &MultilevelOptions {
                    hierarchy: HierarchyOptions {
                        coarse_size: coarse,
                        fixed_degree: FixedDegreeOptions::default(),
                        ..Default::default()
                    },
                    smoothing,
                    omega: 2.0 / 3.0,
                },
            );
            let r = pcg_solve(
                &a,
                &ml,
                &b,
                &CgOptions {
                    rel_tol: 1e-8,
                    max_iter: 2000,
                    record_residuals: false,
                },
            );
            t.row(vec![
                coarse.to_string(),
                ml.num_levels().to_string(),
                smoothing.to_string(),
                r.iterations.to_string(),
                fmt(r.final_rel_residual),
            ]);
        }
    }
    t.print();
    println!("\n# shape check: per-level reduction is a stable constant (paper: 'constant in");
    println!("# average'), clusters stay round (diameter ~ size^(1/3) on 3D inputs), and");
    println!("# deeper hierarchies trade a few PCG iterations for much cheaper coarse solves.");
}
