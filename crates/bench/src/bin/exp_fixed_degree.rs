//! **E4 — Section 3.1**: the `[1/(2d²k), 2]` decomposition of fixed-degree
//! graphs. Sweeps the degree `d` (via graph family) and the size cap `k`,
//! comparing the measured minimum closure conductance against the paper's
//! bound, and reports the parallel speedup of the three-pass pipeline.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_fixed_degree
//! ```

use hicond_bench::{fmt, timed_median, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{generators, Graph};

fn sweep(name: &str, g: &Graph, t: &mut Table) {
    let d = g.max_degree() as f64;
    for &k in &[3usize, 4, 8, 16] {
        let p = decompose_fixed_degree(
            g,
            &FixedDegreeOptions {
                k,
                ..Default::default()
            },
        );
        let q = p.quality(g, 18);
        let bound = 1.0 / (2.0 * d * d * k as f64);
        t.row(vec![
            name.into(),
            format!("{d}"),
            k.to_string(),
            fmt(q.rho),
            fmt(q.phi),
            fmt(bound),
            fmt(q.phi / bound),
            if q.phi >= bound && q.rho >= 2.0 {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
}

fn main() {
    println!("# Section 3.1: fixed-degree [1/(2 d^2 k), 2] decompositions");
    let mut t = Table::new(&[
        "graph",
        "d",
        "k",
        "rho",
        "phi",
        "bound",
        "phi/bound",
        "holds",
    ]);
    sweep(
        "grid2d 20x20",
        &generators::grid2d(20, 20, |_, _| 1.0),
        &mut t,
    );
    sweep(
        "grid3d 8^3",
        &generators::grid3d(8, 8, 8, |_, _, _| 1.0),
        &mut t,
    );
    sweep(
        "torus 16x16",
        &generators::torus2d(16, 16, |_, _| 1.0),
        &mut t,
    );
    sweep("4-regular", &generators::random_regular(600, 4, 11), &mut t);
    sweep(
        "oct 8^3",
        &generators::oct_like_grid3d(8, 8, 8, 13, generators::OctParams::default()),
        &mut t,
    );
    t.print();

    println!("\n## parallel scaling of the three passes (grid3d, k = 8)");
    let mut t = Table::new(&["side", "n", "seq ms", "par ms", "speedup"]);
    for &side in &[20usize, 40, 60, 80] {
        let g = generators::grid3d(side, side, side, |u, v, a| {
            1.0 + (((u + v) * 13 + a) % 23) as f64 / 4.0
        });
        let seq = timed_median(3, || {
            decompose_fixed_degree(
                &g,
                &FixedDegreeOptions {
                    parallel: false,
                    ..Default::default()
                },
            )
        });
        let par = timed_median(3, || {
            decompose_fixed_degree(
                &g,
                &FixedDegreeOptions {
                    parallel: true,
                    ..Default::default()
                },
            )
        });
        t.row(vec![
            side.to_string(),
            g.num_vertices().to_string(),
            fmt(seq),
            fmt(par),
            fmt(seq / par),
        ]);
    }
    t.print();
    println!(
        "\n# rayon threads available: {}",
        rayon::current_num_threads()
    );
    println!("# shape check: phi beats the 1/(2 d^2 k) bound everywhere (bound is loose),");
    println!("# rho >= 2 always. The parallel path is exercised for correctness; wall-clock");
    println!("# speedup requires more than one core.");
}
