//! **A2 — ablation of the multilevel Steiner design**: cluster size cap
//! `k` sweep and smoothing on/off. Reports hierarchy depth, PCG iterations
//! and the PCG-rate-implied condition estimate for each configuration.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_ablation_multilevel
//! ```

use hicond_bench::{consistent_rhs, fmt, Table};
use hicond_core::{FixedDegreeOptions, HierarchyOptions};
use hicond_graph::{generators, laplacian};
use hicond_linalg::cg::{condition_estimate_from_history, pcg_solve, CgOptions};
use hicond_precond::{MultilevelOptions, MultilevelSteiner};

fn main() {
    println!("# Ablation A2: multilevel Steiner — cluster cap k and smoothing");
    let g = generators::oct_like_grid3d(14, 14, 14, 29, generators::OctParams::default());
    let n = g.num_vertices();
    let a = laplacian(&g);
    let b = consistent_rhs(n, 4);
    println!("# oct 14^3: {n} vertices");

    let mut t = Table::new(&[
        "k",
        "smoothing",
        "levels",
        "PCG iters",
        "kappa est",
        "rel res",
    ]);
    for &k in &[2usize, 4, 8, 16, 32] {
        for smoothing in [false, true] {
            let ml = MultilevelSteiner::new(
                &g,
                &MultilevelOptions {
                    hierarchy: HierarchyOptions {
                        fixed_degree: FixedDegreeOptions {
                            k,
                            ..Default::default()
                        },
                        coarse_size: 100,
                        ..Default::default()
                    },
                    smoothing,
                    omega: 2.0 / 3.0,
                },
            );
            let r = pcg_solve(
                &a,
                &ml,
                &b,
                &CgOptions {
                    rel_tol: 1e-8,
                    max_iter: 2000,
                    record_residuals: true,
                },
            );
            let kappa = condition_estimate_from_history(&r.residual_history)
                .map(fmt)
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                k.to_string(),
                smoothing.to_string(),
                ml.num_levels().to_string(),
                r.iterations.to_string(),
                kappa,
                fmt(r.final_rel_residual),
            ]);
        }
    }
    t.print();
    println!("\n# reading: moderate k (4-16) balances hierarchy depth against per-level");
    println!("# cluster quality; smoothing pays off most on deep hierarchies.");
}
