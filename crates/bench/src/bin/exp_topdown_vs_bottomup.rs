//! **E11 — top-down vs bottom-up decompositions** (paper Section 1).
//!
//! The introduction contrasts the recursive two-way-cut route to
//! (φ, γ_avg) decompositions (\[16\], Kannan–Vempala–Vetta) with the paper's
//! bottom-up constructions: the recursion costs many two-way cut
//! computations (each a global eigenvector solve) and gives no per-level
//! reduction guarantee, while the bottom-up pass is three linear sweeps.
//! This experiment decomposes the same graphs both ways and reports
//! quality and cost side by side, plus the local-clustering route (\[28\])
//! for a single seed.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_topdown_vs_bottomup
//! ```

use hicond_bench::{fmt, timed, Table};
use hicond_core::{
    decompose_fixed_degree, decompose_recursive_bisection, FixedDegreeOptions,
    RecursiveBisectionOptions,
};
use hicond_graph::{generators, Graph};
use hicond_spectral::{local_cluster, LocalClusterOptions};

fn compare(name: &str, g: &Graph, t: &mut Table) {
    let (bu, bu_ms) = timed(|| {
        decompose_fixed_degree(
            g,
            &FixedDegreeOptions {
                k: 8,
                ..Default::default()
            },
        )
    });
    let qb = bu.quality(g, 14);
    t.row(vec![
        name.into(),
        "bottom-up (Sec 3.1)".into(),
        bu.num_clusters().to_string(),
        fmt(qb.rho),
        fmt(qb.phi),
        fmt(qb.cut_fraction),
        "-".into(),
        fmt(bu_ms),
    ]);
    let ((td, stats), td_ms) = timed(|| {
        decompose_recursive_bisection(
            g,
            &RecursiveBisectionOptions {
                phi_target: 0.15,
                min_cluster: 8,
                ..Default::default()
            },
        )
    });
    let qt = td.quality(g, 14);
    t.row(vec![
        name.into(),
        "top-down ([16])".into(),
        td.num_clusters().to_string(),
        fmt(qt.rho),
        fmt(qt.phi),
        fmt(qt.cut_fraction),
        stats.cuts_computed.to_string(),
        fmt(td_ms),
    ]);
}

fn main() {
    println!("# Top-down (recursive two-way cuts) vs bottom-up (Section 3.1)");
    let mut t = Table::new(&[
        "graph",
        "method",
        "clusters",
        "rho",
        "phi(lb)",
        "cut frac",
        "2-way cuts",
        "ms",
    ]);
    compare(
        "grid2d 24x24",
        &generators::grid2d(24, 24, |_, _| 1.0),
        &mut t,
    );
    compare(
        "oct 8^3",
        &generators::oct_like_grid3d(8, 8, 8, 7, generators::OctParams::default()),
        &mut t,
    );
    compare(
        "mesh 20x20",
        &generators::triangulated_grid(20, 20, 3),
        &mut t,
    );
    t.print();

    println!("\n## local clustering ([28]) from single seeds (dumbbell of two K10)");
    let mut edges = Vec::new();
    for i in 0..10 {
        for j in (i + 1)..10 {
            edges.push((i, j, 1.0));
            edges.push((10 + i, 10 + j, 1.0));
        }
    }
    edges.push((0, 10, 0.02));
    let g = Graph::from_edges(20, &edges);
    let mut t = Table::new(&["seed", "cluster size", "conductance", "support"]);
    for seed in [2, 15] {
        let c = local_cluster(&g, seed, &LocalClusterOptions::default());
        t.row(vec![
            seed.to_string(),
            c.vertices.len().to_string(),
            fmt(c.conductance),
            c.support_size.to_string(),
        ]);
    }
    t.print();
    println!("\n# reading: the bottom-up pass is 1-2 orders of magnitude cheaper per");
    println!("# cluster and guarantees rho >= 2; the top-down route pays one global");
    println!("# eigen-solve per cut and its cluster count is workload-dependent —");
    println!("# the complexity gap the paper's introduction describes.");
}
