//! **E3 — Theorem 2.3**: decompositions of non-planar sparse graphs via
//! low-stretch spanning trees. Reports the measured average stretch of the
//! AKPW-style tree (the \[9\] substitute), core sizes, φ, ρ and timing on 3D
//! grids and bounded-degree random graphs.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_minor_free
//! ```

use hicond_bench::{fmt, timed, Table};
use hicond_core::lowstretch::{
    average_stretch, low_stretch_tree, tree_stretches, LowStretchOptions,
};
use hicond_core::spanning::mst_max_kruskal;
use hicond_core::{decompose_minor_free, decompose_planar, PlanarOptions, SpanningTreeKind};
use hicond_graph::{generators, Graph};

fn stretch_stats(g: &Graph) -> (f64, f64) {
    let ls = low_stretch_tree(g, &LowStretchOptions::default());
    let mst = mst_max_kruskal(g);
    (
        average_stretch(&tree_stretches(g, &ls)),
        average_stretch(&tree_stretches(g, &mst)),
    )
}

fn main() {
    println!("# Theorem 2.3: minor-free/bounded-genus pipeline with low-stretch trees");

    println!("\n## tree stretch (the [9] ingredient): AKPW-substitute vs max-weight MST");
    let mut t = Table::new(&["graph", "n", "avg stretch (LS)", "avg stretch (MST)"]);
    for (name, g) in [
        ("grid2d 40x40", generators::grid2d(40, 40, |_, _| 1.0)),
        ("grid3d 12^3", generators::grid3d(12, 12, 12, |_, _, _| 1.0)),
        (
            "oct 10^3",
            generators::oct_like_grid3d(10, 10, 10, 3, generators::OctParams::default()),
        ),
        ("random 4-reg", generators::random_regular(2000, 4, 5)),
    ] {
        let (ls, mst) = stretch_stats(&g);
        t.row(vec![
            name.into(),
            g.num_vertices().to_string(),
            fmt(ls),
            fmt(mst),
        ]);
    }
    t.print();

    println!("\n## decomposition quality (low-stretch pipeline, extra fraction 0.05)");
    let mut t = Table::new(&["graph", "n", "core |W|", "rho", "phi(lb)", "ms"]);
    for (name, g) in [
        ("grid3d 16^3", generators::grid3d(16, 16, 16, |_, _, _| 1.0)),
        (
            "oct 14^3",
            generators::oct_like_grid3d(14, 14, 14, 9, generators::OctParams::default()),
        ),
        ("random 6-reg", generators::random_regular(5000, 6, 8)),
        ("torus 50x50", generators::torus2d(50, 50, |_, _| 1.0)),
    ] {
        let (d, ms) = timed(|| decompose_minor_free(&g, 0.05, 4));
        let q = d.partition.quality(&g, 12);
        t.row(vec![
            name.into(),
            g.num_vertices().to_string(),
            d.core_size.to_string(),
            fmt(q.rho),
            fmt(q.phi),
            fmt(ms),
        ]);
    }
    t.print();

    println!("\n## low-stretch vs max-weight tree inside the same pipeline (oct 12^3)");
    let g = generators::oct_like_grid3d(12, 12, 12, 6, generators::OctParams::default());
    let mut t = Table::new(&["tree", "support k", "rho", "phi(lb)"]);
    for kind in [SpanningTreeKind::LowStretch, SpanningTreeKind::MaxWeight] {
        let d = decompose_planar(
            &g,
            &PlanarOptions {
                tree: kind,
                extra_fraction: 0.05,
                seed: 5,
                measure_support: true,
            },
        );
        let q = d.partition.quality(&g, 12);
        t.row(vec![
            format!("{kind:?}"),
            fmt(d.support_estimate.unwrap()),
            fmt(q.rho),
            fmt(q.phi),
        ]);
    }
    t.print();
    println!("\n# shape check: low-stretch trees give materially lower support k than");
    println!("# max-weight trees on weight-varying inputs, at comparable rho.");
}
