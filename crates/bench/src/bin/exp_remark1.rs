//! **E7 — Remark 1**: construction-time comparison on a weighted 3D grid
//! with 10⁶ vertices. The paper compares a (sequential, MATLAB) prototype
//! of the three-pass clustering against Boost's maximum-weight spanning
//! tree and reports a ≥ 4× advantage *before* parallelism; here we time
//! our own sequential and parallel clustering against Kruskal and Prim,
//! plus the quotient assembly Q = RᵀAR.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_remark1 [side]
//! ```

use hicond_bench::{fmt, timed, timed_median, Table};
use hicond_core::spanning::{mst_max_boruvka, mst_max_kruskal, mst_max_prim};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{generators, laplacian};

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    println!("# Remark 1 reproduction: weighted 3D grid {side}^3");
    let (g, gen_ms) = timed(|| {
        generators::grid3d(side, side, side, |u, v, axis| {
            1.0 + (((u * 31 + v * 17 + axis * 7) % 97) as f64) / 10.0
        })
    });
    let n = g.num_vertices();
    println!(
        "# {n} vertices, {} edges (generated in {:.0} ms)",
        g.num_edges(),
        gen_ms
    );
    let reps = if n >= 500_000 { 3 } else { 5 };

    let seq_ms = timed_median(reps, || {
        decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                parallel: false,
                ..Default::default()
            },
        )
    });
    let par_ms = timed_median(reps, || {
        decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                parallel: true,
                ..Default::default()
            },
        )
    });
    let kruskal_ms = timed_median(reps, || mst_max_kruskal(&g));
    let prim_ms = timed_median(reps, || mst_max_prim(&g));
    let boruvka_ms = timed_median(reps, || mst_max_boruvka(&g));

    // Quotient assembly (Remark 1: "computed via parallel sparse matrix
    // multiplication"): algebraic R^T A R route.
    let p = decompose_fixed_degree(&g, &FixedDegreeOptions::default());
    let a = laplacian(&g);
    let quotient_ms = timed_median(reps, || {
        let r = p.membership_matrix();
        r.transpose().matmul(&a.matmul(&r))
    });
    let quotient_graph_ms = timed_median(reps, || p.quotient_graph(&g));

    let mut t = Table::new(&["operation", "median ms", "vs Kruskal"]);
    let rel = |ms: f64| fmt(kruskal_ms / ms);
    t.row(vec![
        "clustering (sequential)".into(),
        fmt(seq_ms),
        rel(seq_ms),
    ]);
    t.row(vec![
        "clustering (parallel)".into(),
        fmt(par_ms),
        rel(par_ms),
    ]);
    t.row(vec![
        "MST Kruskal (baseline)".into(),
        fmt(kruskal_ms),
        "1.0".into(),
    ]);
    t.row(vec!["MST Prim".into(), fmt(prim_ms), rel(prim_ms)]);
    t.row(vec![
        "MST Boruvka (parallel-friendly)".into(),
        fmt(boruvka_ms),
        rel(boruvka_ms),
    ]);
    t.row(vec![
        "quotient Q = R'AR (spmm)".into(),
        fmt(quotient_ms),
        rel(quotient_ms),
    ]);
    t.row(vec![
        "quotient (edge pass)".into(),
        fmt(quotient_graph_ms),
        rel(quotient_graph_ms),
    ]);
    t.print();

    println!(
        "\n# paper shape check: clustering at least as fast as the MST -> {}",
        if seq_ms <= kruskal_ms {
            "REPRODUCED (sequential already wins)"
        } else if par_ms <= kruskal_ms {
            "REPRODUCED (with parallelism)"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "# parallel speedup over sequential clustering: {:.2}x (rayon threads: {})",
        seq_ms / par_ms,
        rayon::current_num_threads()
    );
}
