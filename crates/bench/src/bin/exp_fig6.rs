//! **E6 — Figure 6**: norm of the residual `‖Axᵢ − b‖₂` against PCG
//! iteration number, Steiner versus subgraph preconditioner, on a weighted
//! 3D grid with OCT-scan-like weight variation. Both preconditioners are
//! tuned to the same system-size reduction factor (≈ 4), as in the paper.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_fig6 [side]
//! ```
//!
//! Prints the two residual series (the data behind the figure) plus a
//! summary of iterations-to-tolerance.

use hicond_bench::{consistent_rhs, fmt, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions, SpanningTreeKind};
use hicond_graph::{generators, laplacian};
use hicond_linalg::cg::{pcg_solve, CgOptions, JacobiPreconditioner};
use hicond_linalg::{IncompleteCholesky, SsorPreconditioner};
use hicond_precond::{SteinerPreconditioner, SubgraphOptions, SubgraphPreconditioner};

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let target_reduction = 4.0;
    let g = generators::oct_like_grid3d(side, side, side, 2008, generators::OctParams::default());
    let n = g.num_vertices();
    println!(
        "# Figure 6 reproduction: weighted 3D grid {side}^3 ({n} vertices, {} edges)",
        g.num_edges()
    );

    // --- Steiner preconditioner at reduction ~= target ------------------
    let mut best_k = 4;
    let mut best_gap = f64::INFINITY;
    let mut best_p = None;
    for k in 2..=24 {
        let p = decompose_fixed_degree(
            &g,
            &FixedDegreeOptions {
                k,
                ..Default::default()
            },
        );
        let gap = (p.reduction_factor() - target_reduction).abs();
        if gap < best_gap {
            best_gap = gap;
            best_k = k;
            best_p = Some(p);
        }
    }
    let p = best_p.unwrap();
    println!(
        "# Steiner: k = {best_k}, reduction = {:.2} ({} clusters)",
        p.reduction_factor(),
        p.num_clusters()
    );
    let steiner = SteinerPreconditioner::new(&g, &p, 50_000);

    // --- Subgraph preconditioner at core reduction ~= target -------------
    let mut frac = 0.02;
    let mut sub = SubgraphPreconditioner::new(
        &g,
        &SubgraphOptions {
            extra_fraction: frac,
            core_dense_limit: n,
            ..Default::default()
        },
    );
    for _ in 0..12 {
        let reduction = n as f64 / sub.core_size.max(1) as f64;
        if (reduction - target_reduction).abs() < 0.4 {
            break;
        }
        frac *= if reduction > target_reduction {
            1.5
        } else {
            0.7
        };
        sub = SubgraphPreconditioner::new(
            &g,
            &SubgraphOptions {
                extra_fraction: frac,
                core_dense_limit: n,
                ..Default::default()
            },
        );
    }
    println!(
        "# Subgraph: tree = {:?}, extra fraction = {:.3}, core = {} (reduction {:.2})",
        SpanningTreeKind::MaxWeight,
        frac,
        sub.core_size,
        n as f64 / sub.core_size.max(1) as f64
    );

    // --- Run PCG, record residual trajectories ---------------------------
    let a = laplacian(&g);
    let b = consistent_rhs(n, 1);
    let opts = CgOptions {
        rel_tol: 1e-10,
        max_iter: 200,
        record_residuals: true,
    };
    let rs = pcg_solve(&a, &steiner, &b, &opts);
    let rg = pcg_solve(&a, &sub, &b, &opts);

    let norm = |h: &[f64]| -> Vec<f64> {
        let h0 = h.first().copied().unwrap_or(1.0);
        h.iter().map(|x| x / h0).collect()
    };
    let hs = norm(&rs.residual_history);
    let hg = norm(&rg.residual_history);

    println!("\n# residual series (normalized to 1 at iteration 0)");
    let mut t = Table::new(&["iter", "steiner", "subgraph"]);
    let max_len = hs.len().max(hg.len()).min(41);
    for i in 0..max_len {
        t.row(vec![
            i.to_string(),
            hs.get(i).map(|&x| fmt(x)).unwrap_or_else(|| "-".into()),
            hg.get(i).map(|&x| fmt(x)).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.print();

    // Classical point preconditioners as context (not in the paper's
    // figure, but the natural "what if you skip combinatorics" baselines).
    let jacobi = JacobiPreconditioner::from_diagonal(&a.diagonal());
    let rj = pcg_solve(&a, &jacobi, &b, &opts);
    let ssor = SsorPreconditioner::new(&a, 1.0);
    let rss = pcg_solve(&a, &ssor, &b, &opts);
    let ic = IncompleteCholesky::for_laplacian(&a);
    let ric = pcg_solve(&a, &ic, &b, &opts);
    let hj = norm(&rj.residual_history);
    let hss = norm(&rss.residual_history);
    let hic = norm(&ric.residual_history);

    let to_tol = |h: &[f64], tol: f64| h.iter().position(|&x| x <= tol);
    println!("\n# summary");
    let mut s = Table::new(&[
        "preconditioner",
        "iters to 1e-4",
        "iters to 1e-8",
        "final rel res",
    ]);
    let srow = |name: &str, h: &[f64], fr: f64, s: &mut Table| {
        s.row(vec![
            name.into(),
            to_tol(h, 1e-4).map(|i| i.to_string()).unwrap_or("-".into()),
            to_tol(h, 1e-8).map(|i| i.to_string()).unwrap_or("-".into()),
            fmt(fr),
        ]);
    };
    srow("Steiner", &hs, rs.final_rel_residual, &mut s);
    srow("Subgraph", &hg, rg.final_rel_residual, &mut s);
    srow("Jacobi", &hj, rj.final_rel_residual, &mut s);
    srow("SSOR", &hss, rss.final_rel_residual, &mut s);
    srow("IC(0)", &hic, ric.final_rel_residual, &mut s);
    s.print();
    let (si, gi) = (
        to_tol(&hs, 1e-8).unwrap_or(usize::MAX),
        to_tol(&hg, 1e-8).unwrap_or(usize::MAX),
    );
    println!(
        "\n# paper shape check: Steiner converges several times faster -> {}",
        if si < gi {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
