//! **E5 — Theorem 3.5**: exact Steiner support numbers versus the
//! theoretical bound `σ(S_P, A) ≤ 3(1 + 2/φ³)`. For verification-scale
//! graphs the Schur complement `B` of `S_P` is computed explicitly and
//! `σ(B, A)`, `σ(A, B)` and `κ(A, B)` are found by dense generalized
//! eigenvalues.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_support
//! ```

use hicond_bench::{fmt, Table};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{generators, laplacian, Graph};
use hicond_linalg::schur::schur_complement;
use hicond_precond::steiner_laplacian;
use hicond_support::support_matrices_dense;

fn run(name: &str, g: &Graph, k: usize, t: &mut Table) {
    let p = decompose_fixed_degree(
        g,
        &FixedDegreeOptions {
            k,
            ..Default::default()
        },
    );
    let q = p.quality(g, 20);
    if !q.phi_exact {
        return;
    }
    let sp = steiner_laplacian(g, &p);
    let n = g.num_vertices();
    let ids: Vec<usize> = (n..n + p.num_clusters()).collect();
    let (b, _) = schur_complement(&sp, &ids);
    let a = laplacian(g);
    let sigma_ba = support_matrices_dense(&b, &a);
    let sigma_ab = support_matrices_dense(&a, &b);
    let bound = 3.0 * (1.0 + 2.0 / (q.phi * q.phi * q.phi));
    t.row(vec![
        name.into(),
        n.to_string(),
        k.to_string(),
        fmt(q.phi),
        fmt(sigma_ba),
        fmt(bound),
        fmt(sigma_ba / bound),
        fmt(sigma_ab),
        fmt(sigma_ba * sigma_ab),
        if sigma_ba <= bound + 1e-6 {
            "yes".into()
        } else {
            "NO".into()
        },
    ]);
}

fn main() {
    println!("# Theorem 3.5: sigma(S_P, A) vs the 3(1 + 2/phi^3) bound (exact dense)");
    let mut t = Table::new(&[
        "graph",
        "n",
        "k",
        "phi",
        "sigma(B,A)",
        "bound",
        "ratio",
        "sigma(A,B)",
        "kappa",
        "holds",
    ]);
    run(
        "grid2d 5x5",
        &generators::grid2d(5, 5, |_, _| 1.0),
        3,
        &mut t,
    );
    run(
        "grid2d 6x6",
        &generators::grid2d(6, 6, |_, _| 1.0),
        4,
        &mut t,
    );
    run(
        "grid2d w 6x6",
        &generators::grid2d(6, 6, |u, v| 1.0 + ((u * 3 + v) % 5) as f64),
        4,
        &mut t,
    );
    run(
        "mesh 6x6",
        &generators::triangulated_grid(6, 6, 3),
        4,
        &mut t,
    );
    run(
        "grid3d 4^3",
        &generators::grid3d(4, 4, 4, |_, _, _| 1.0),
        6,
        &mut t,
    );
    run(
        "4-regular n=40",
        &generators::random_regular(40, 4, 7),
        4,
        &mut t,
    );
    run(
        "cycle 36",
        &generators::cycle(36, |i| 1.0 + (i % 3) as f64),
        4,
        &mut t,
    );
    run(
        "oct 4^3",
        &generators::oct_like_grid3d(4, 4, 4, 5, generators::OctParams::default()),
        6,
        &mut t,
    );
    t.print();
    println!("\n# shape check: the bound holds with a comfortable margin everywhere");
    println!("# (the measured sigma is typically an order of magnitude below it),");
    println!("# and kappa = sigma(B,A)*sigma(A,B) is a small constant.");
}
