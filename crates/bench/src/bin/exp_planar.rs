//! **E2 — Theorem 2.2**: planar `[φ, ρ]`-decompositions via the spanning
//! subgraph pipeline. Sweeps the graph size (time should scale ~linearly)
//! and the extra-edge budget (the paper's k trade-off: larger B-core ↔
//! better conductance transfer). Reports core size, measured support
//! k = σ(A,B), φ, ρ and the product φ·ρ.
//!
//! ```text
//! cargo run --release -p hicond-bench --bin exp_planar
//! ```

use hicond_bench::{fmt, timed, Table};
use hicond_core::{decompose_planar, PlanarOptions, SpanningTreeKind};
use hicond_graph::generators;

fn main() {
    println!("# Theorem 2.2: planar decompositions (phi*rho should stay bounded)");

    println!("\n## size sweep (triangulated meshes, extra fraction 0.05)");
    let mut t = Table::new(&[
        "side", "n", "core |W|", "clusters", "rho", "phi(lb)", "phi*rho", "ms",
    ]);
    for &side in &[10usize, 20, 40, 80, 160] {
        let g = generators::triangulated_grid(side, side, 1);
        let (d, ms) = timed(|| {
            decompose_planar(
                &g,
                &PlanarOptions {
                    tree: SpanningTreeKind::MaxWeight,
                    extra_fraction: 0.05,
                    seed: 1,
                    measure_support: false,
                },
            )
        });
        let q = d.partition.quality(&g, 14);
        t.row(vec![
            side.to_string(),
            g.num_vertices().to_string(),
            d.core_size.to_string(),
            d.partition.num_clusters().to_string(),
            fmt(q.rho),
            fmt(q.phi),
            fmt(q.phi * q.rho),
            fmt(ms),
        ]);
    }
    t.print();

    println!("\n## extra-edge budget sweep (40x40 mesh; the paper's k trade-off)");
    let g = generators::triangulated_grid(40, 40, 2);
    let mut t = Table::new(&[
        "extra frac",
        "extra edges",
        "core |W|",
        "support k",
        "rho",
        "phi(lb)",
        "phi >= (1/3)/k",
    ]);
    for &frac in &[0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let d = decompose_planar(
            &g,
            &PlanarOptions {
                tree: SpanningTreeKind::MaxWeight,
                extra_fraction: frac,
                seed: 2,
                measure_support: true,
            },
        );
        let q = d.partition.quality(&g, 14);
        let k = d.support_estimate.unwrap();
        t.row(vec![
            fmt(frac),
            d.extra_edges.to_string(),
            d.core_size.to_string(),
            fmt(k),
            fmt(q.rho),
            fmt(q.phi),
            if q.phi >= (1.0 / 3.0) / k {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();
    println!("\n# shape check: wall time ~linear in n; rho stays constant as n grows;");
    println!(
        "# more extra edges -> smaller support k (better conductance transfer) but bigger core."
    );
}
