//! Criterion microbenchmarks for the decomposition algorithms: tree
//! decomposition (Theorem 2.1), 3-critical vertex computation, planar
//! pipeline (Theorem 2.2), low-stretch tree construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hicond_core::lowstretch::{low_stretch_tree, LowStretchOptions};
use hicond_core::{decompose_forest, decompose_planar, PlanarOptions};
use hicond_graph::forest::RootedForest;
use hicond_graph::generators;
use hicond_treecontract::critical::critical_vertices;
use hicond_treecontract::euler::subtree_sizes_parallel;

fn bench_tree_decomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_decomp");
    for n in [10_000usize, 100_000] {
        let g = generators::random_tree(n, 3, 0.1, 10.0);
        group.bench_with_input(BenchmarkId::new("decompose_forest", n), &g, |b, g| {
            b.iter(|| decompose_forest(g))
        });
        let f = RootedForest::from_graph(&g).unwrap();
        group.bench_with_input(BenchmarkId::new("critical_vertices", n), &f, |b, f| {
            b.iter(|| {
                let sizes = subtree_sizes_parallel(f);
                critical_vertices(f, &sizes, 3)
            })
        });
    }
    group.finish();
}

fn bench_planar(c: &mut Criterion) {
    let mut group = c.benchmark_group("planar_decomp");
    group.sample_size(10);
    for side in [32usize, 64] {
        let g = generators::triangulated_grid(side, side, 1);
        group.bench_with_input(BenchmarkId::new("decompose_planar", side), &g, |b, g| {
            b.iter(|| decompose_planar(g, &PlanarOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("low_stretch_tree", side), &g, |b, g| {
            b.iter(|| low_stretch_tree(g, &LowStretchOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_decomp, bench_planar);
criterion_main!(benches);
