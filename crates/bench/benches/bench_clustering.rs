//! Criterion microbenchmark: the Section 3.1 clustering pipeline versus
//! the MST baselines (the kernel behind E7 / Remark 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hicond_core::spanning::{mst_max_kruskal, mst_max_prim};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::generators;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_vs_mst");
    for side in [16usize, 32] {
        let g = generators::grid3d(side, side, side, |u, v, a| {
            1.0 + (((u + v) * 13 + a) % 23) as f64 / 4.0
        });
        group.bench_with_input(BenchmarkId::new("fixed_degree_seq", side), &g, |b, g| {
            b.iter(|| {
                decompose_fixed_degree(
                    g,
                    &FixedDegreeOptions {
                        parallel: false,
                        ..Default::default()
                    },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("fixed_degree_par", side), &g, |b, g| {
            b.iter(|| decompose_fixed_degree(g, &FixedDegreeOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("mst_kruskal", side), &g, |b, g| {
            b.iter(|| mst_max_kruskal(g))
        });
        group.bench_with_input(BenchmarkId::new("mst_prim", side), &g, |b, g| {
            b.iter(|| mst_max_prim(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
