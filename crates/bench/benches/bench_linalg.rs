//! Criterion microbenchmarks for the linear-algebra kernels: Laplacian
//! matvec (sequential vs row-parallel), quotient assembly `Q = RᵀAR`, and
//! one full PCG solve per preconditioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{generators, laplacian};
use hicond_linalg::cg::{pcg_solve, CgOptions};
use hicond_precond::{
    MultilevelOptions, MultilevelSteiner, SteinerPreconditioner, SubgraphOptions,
    SubgraphPreconditioner,
};

fn consistent_rhs(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| ((i as u64 * 2654435761) % 997) as f64 / 498.5 - 1.0)
        .collect();
    hicond_linalg::vector::deflate_constant(&mut b);
    b
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec");
    for side in [32usize, 64] {
        let g = generators::grid3d(side, side, side, |_, _, _| 1.0);
        let a = laplacian(&g);
        let x = consistent_rhs(g.num_vertices());
        let mut y = vec![0.0; g.num_vertices()];
        group.bench_with_input(BenchmarkId::new("sequential", side), &a, |b, a| {
            b.iter(|| a.mul_into(&x, &mut y))
        });
        group.bench_with_input(BenchmarkId::new("parallel", side), &a, |b, a| {
            b.iter(|| a.par_mul_into(&x, &mut y))
        });
    }
    group.finish();
}

fn bench_quotient(c: &mut Criterion) {
    let mut group = c.benchmark_group("quotient");
    let g = generators::grid3d(24, 24, 24, |_, _, _| 1.0);
    let p = decompose_fixed_degree(&g, &FixedDegreeOptions::default());
    let a = laplacian(&g);
    group.bench_function("algebraic_rtar", |b| {
        b.iter(|| {
            let r = p.membership_matrix();
            r.transpose().matmul(&a.matmul(&r))
        })
    });
    group.bench_function("edge_pass", |b| b.iter(|| p.quotient_graph(&g)));
    group.finish();
}

fn bench_pcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("pcg_solve_oct12");
    group.sample_size(10);
    let g = generators::oct_like_grid3d(12, 12, 12, 3, generators::OctParams::default());
    let a = laplacian(&g);
    let b = consistent_rhs(g.num_vertices());
    let opts = CgOptions {
        rel_tol: 1e-8,
        max_iter: 5000,
        record_residuals: false,
    };
    let p = decompose_fixed_degree(&g, &FixedDegreeOptions::default());
    let steiner = SteinerPreconditioner::new(&g, &p, 10_000);
    let ml = MultilevelSteiner::new(&g, &MultilevelOptions::default());
    let sub = SubgraphPreconditioner::new(&g, &SubgraphOptions::default());
    group.bench_function("steiner_two_level", |bch| {
        bch.iter(|| pcg_solve(&a, &steiner, &b, &opts))
    });
    group.bench_function("steiner_multilevel", |bch| {
        bch.iter(|| pcg_solve(&a, &ml, &b, &opts))
    });
    group.bench_function("subgraph", |bch| {
        bch.iter(|| pcg_solve(&a, &sub, &b, &opts))
    });
    group.finish();
}

criterion_group!(benches, bench_matvec, bench_quotient, bench_pcg);
criterion_main!(benches);
