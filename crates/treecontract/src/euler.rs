//! Euler tours of rooted forests and tour-based parallel subtree sizes.
//!
//! The Euler tour of a rooted tree visits every edge twice (down and up).
//! Linearizing the tour into a linked list and list-ranking it yields the
//! classic O(log n)-time parallel computation of subtree sizes — the
//! quantity `|descendants(v)|` that defines 3-critical vertices.

use crate::listrank::{list_rank_parallel, list_rank_sequential};
use hicond_graph::forest::RootedForest;
use hicond_graph::InvariantViolation;
use rayon::prelude::*;

/// Euler tour of a rooted forest in successor-array form.
///
/// Arc `2v` is the *down* arc `parent(v) → v`; arc `2v+1` is the *up* arc
/// `v → parent(v)`. Arcs of roots are unused and marked as self-loop
/// singletons so the ranking treats them as isolated tails.
#[derive(Debug, Clone)]
pub struct EulerTour {
    /// Successor of each arc in the tour (`succ[a] == a` at tour tails and
    /// unused root slots).
    pub succ: Vec<u32>,
    /// First arc of each tree's tour, indexed like `forest.roots()`
    /// (`u32::MAX` for single-vertex trees).
    pub first_arc: Vec<u32>,
}

impl EulerTour {
    /// Validates the tour against its forest: `succ` covers `2n` arcs,
    /// and following `succ` from each tree's first arc yields a valid
    /// walk — every arc of the tree visited exactly once, ending at the
    /// tour tail, with exactly `2(size − 1)` arcs per tree (the closed
    /// Euler walk of Section 2's tree-contraction machinery).
    ///
    /// Always compiled; use [`EulerTour::debug_invariants`] for the
    /// zero-cost-in-release variant.
    pub fn check_invariants(&self, forest: &RootedForest) -> Result<(), InvariantViolation> {
        let n = forest.num_vertices();
        let fail = |rule: &'static str, message: String, witness: Vec<usize>| {
            Err(InvariantViolation::new(
                "hicond-treecontract",
                "EulerTour",
                rule,
                message,
                witness,
            ))
        };
        if self.succ.len() != 2 * n {
            return fail(
                "succ-len",
                format!("succ has {} arcs, expected 2n = {}", self.succ.len(), 2 * n),
                vec![],
            );
        }
        if self.first_arc.len() != forest.roots().len() {
            return fail(
                "first-arc-len",
                format!(
                    "{} first arcs for {} roots",
                    self.first_arc.len(),
                    forest.roots().len()
                ),
                vec![],
            );
        }
        let mut seen = vec![false; 2 * n];
        for (ri, &r) in forest.roots().iter().enumerate() {
            let expected = 2 * (forest.subtree_size(r as usize) - 1);
            let fa = self.first_arc[ri];
            if fa == u32::MAX {
                if expected != 0 {
                    return fail(
                        "tour-missing",
                        format!("tree at root {r} has edges but no first arc"),
                        vec![ri, r as usize],
                    );
                }
                continue;
            }
            let mut a = fa as usize;
            let mut visited = 0usize;
            loop {
                if a >= 2 * n || seen[a] {
                    return fail(
                        "tour-walk",
                        format!("tour of root {r} revisits or escapes at arc {a}"),
                        vec![ri, a],
                    );
                }
                seen[a] = true;
                visited += 1;
                let s = self.succ[a] as usize;
                if s == a {
                    break;
                }
                a = s;
            }
            if visited != expected {
                return fail(
                    "tour-length",
                    format!("tour of root {r} has {visited} arcs, expected {expected}"),
                    vec![ri, r as usize],
                );
            }
        }
        Ok(())
    }

    /// Panics on any violation of [`EulerTour::check_invariants`].
    /// Compiles to a no-op in release builds unless the
    /// `check-invariants` feature is enabled.
    ///
    /// # Panics
    /// Panics with the structured violation report when a tour invariant
    /// fails and checks are compiled in.
    #[inline]
    pub fn debug_invariants(&self, forest: &RootedForest) {
        #[cfg(any(debug_assertions, feature = "check-invariants"))]
        hicond_graph::invariant::enforce(self.check_invariants(forest));
        #[cfg(not(any(debug_assertions, feature = "check-invariants")))]
        let _ = forest;
    }
}

/// Builds the Euler tour of `forest`.
pub fn euler_tour(forest: &RootedForest) -> EulerTour {
    let n = forest.num_vertices();
    let mut succ: Vec<u32> = (0..2 * n as u32).collect();
    for v in 0..n {
        let children = forest.children(v);
        let down = 2 * v as u32;
        let up = down + 1;
        // succ(down into v): first child's down arc, else v's up arc.
        if forest.parent(v).is_some() {
            succ[down as usize] = match children.first() {
                Some(&c0) => 2 * c0,
                None => up,
            };
        }
        // succ(up from v): next sibling's down arc, else parent's up arc
        // (or tail if parent is a root at its last child).
        if let Some(p) = forest.parent(v) {
            let siblings = forest.children(p);
            // audit: allow(panic-path) — v is a child of p by the parent() lookup above, so it appears in p's child list
            let my_pos = siblings.iter().position(|&c| c as usize == v).unwrap();
            succ[up as usize] = if my_pos + 1 < siblings.len() {
                2 * siblings[my_pos + 1]
            } else if forest.parent(p).is_some() {
                2 * p as u32 + 1
            } else {
                up // tail of this tree's tour
            };
        }
    }
    let first_arc: Vec<u32> = forest
        .roots()
        .iter()
        .map(|&r| match forest.children(r as usize).first() {
            Some(&c0) => 2 * c0,
            None => u32::MAX,
        })
        .collect();
    let tour = EulerTour { succ, first_arc };
    tour.debug_invariants(forest);
    tour
}

/// Subtree sizes (`|descendants(v)|`, including `v`) via Euler tour +
/// parallel list ranking. Matches [`RootedForest::subtree_size`] but runs
/// in O(log n) parallel rounds.
pub fn subtree_sizes_parallel(forest: &RootedForest) -> Vec<u32> {
    subtree_sizes_impl(forest, true)
}

/// Sequential-ranking variant (for baseline timing comparisons).
pub fn subtree_sizes_sequential_ranking(forest: &RootedForest) -> Vec<u32> {
    subtree_sizes_impl(forest, false)
}

fn subtree_sizes_impl(forest: &RootedForest, parallel: bool) -> Vec<u32> {
    let n = forest.num_vertices();
    let tour = euler_tour(forest);
    let rank = if parallel {
        list_rank_parallel(&tour.succ)
    } else {
        list_rank_sequential(&tour.succ)
    };
    let mut size: Vec<u32> = (0..n)
        .into_par_iter()
        .map(|v| {
            if forest.parent(v).is_some() {
                // Arcs between down(v) and up(v), inclusive, count 2·size(v):
                // rank(down) - rank(up) = 2·size(v) − 1.
                (rank[2 * v] - rank[2 * v + 1] + 1) / 2
            } else {
                0 // placeholder, filled below
            }
        })
        .collect();
    for (ri, &r) in forest.roots().iter().enumerate() {
        let fa = tour.first_arc[ri];
        size[r as usize] = if fa == u32::MAX {
            1
        } else {
            // Whole tour of the tree has rank(first)+1 arcs = 2·(size−1).
            (rank[fa as usize] + 1) / 2 + 1
        };
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_graph::Graph;

    fn forest_of(g: &Graph) -> RootedForest {
        RootedForest::from_graph(g).expect("input must be a forest")
    }

    fn check_matches_reference(g: &Graph) {
        let f = forest_of(g);
        let par = subtree_sizes_parallel(&f);
        let seq = subtree_sizes_sequential_ranking(&f);
        assert_eq!(par, seq);
        for v in 0..f.num_vertices() {
            assert_eq!(
                par[v] as usize,
                f.subtree_size(v),
                "vertex {v}: tour {} vs dfs {}",
                par[v],
                f.subtree_size(v)
            );
        }
    }

    #[test]
    fn path_sizes() {
        check_matches_reference(&generators::path(10, |_| 1.0));
    }

    #[test]
    fn star_sizes() {
        check_matches_reference(&generators::star(8, |_| 1.0));
    }

    #[test]
    fn binary_tree_sizes() {
        check_matches_reference(&generators::balanced_binary(5, |_, _| 1.0));
    }

    #[test]
    fn caterpillar_sizes() {
        check_matches_reference(&generators::caterpillar(6, 3, |_, _| 1.0));
    }

    #[test]
    fn random_trees_many_seeds() {
        for seed in 0..20 {
            check_matches_reference(&generators::random_tree(200, seed, 1.0, 1.0));
        }
    }

    #[test]
    fn multi_component_forest() {
        let g = Graph::from_edges(7, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (5, 6, 1.0)]);
        check_matches_reference(&g);
    }

    #[test]
    fn single_vertex_tree() {
        let g = Graph::from_edges(1, &[]);
        let f = forest_of(&g);
        assert_eq!(subtree_sizes_parallel(&f), vec![1]);
    }

    #[test]
    fn tour_visits_every_arc_once() {
        let g = generators::balanced_binary(3, |_, _| 1.0);
        let f = forest_of(&g);
        let tour = euler_tour(&f);
        let n = f.num_vertices();
        // Follow the tour from the first arc; must visit 2(n-1) arcs.
        let mut seen = std::collections::HashSet::new();
        let mut a = tour.first_arc[0];
        loop {
            assert!(seen.insert(a), "arc repeated");
            let s = tour.succ[a as usize];
            if s == a {
                break;
            }
            a = s;
        }
        assert_eq!(seen.len(), 2 * (n - 1));
    }
}

/// Property tests for the Euler-tour invariant layer: tours built by
/// [`euler_tour`] over random forests always pass, and corrupting the
/// successor array (broken walk, wrong length) is caught.
#[cfg(test)]
mod invariant_props {
    use super::*;
    use hicond_graph::generators;
    use proptest::prelude::*;

    fn random_forest(seed: u64) -> RootedForest {
        let g = generators::random_tree(12, seed, 0.5, 2.0);
        RootedForest::from_graph(&g).expect("random_tree is a forest")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn tour_of_random_tree_satisfies_invariants(seed in any::<u64>()) {
            let f = random_forest(seed);
            let tour = euler_tour(&f);
            prop_assert!(tour.check_invariants(&f).is_ok());
        }

        #[test]
        fn corrupted_successor_is_rejected(seed in any::<u64>(), pick in any::<usize>()) {
            let f = random_forest(seed);
            let mut tour = euler_tour(&f);
            // Collect the arcs actually on the walk (corrupting unused
            // root slots is undetectable by design — they carry no tour
            // structure), then break one of them.
            let mut walk = Vec::new();
            let mut a = tour.first_arc[0] as usize;
            loop {
                walk.push(a);
                let s = tour.succ[a] as usize;
                if s == a {
                    break;
                }
                a = s;
            }
            let victim = walk[pick % walk.len()];
            if tour.succ[victim] == victim as u32 {
                // The tail: redirect back to the start, forcing a revisit.
                tour.succ[victim] = tour.first_arc[0];
            } else {
                // Interior arc: make it a premature tail.
                // bounds: arc ids < 2n = 24 fit in u32
                tour.succ[victim] = victim as u32;
            }
            prop_assert!(tour.check_invariants(&f).is_err());
        }

        #[test]
        fn truncated_succ_is_rejected(seed in any::<u64>()) {
            let f = random_forest(seed);
            let mut tour = euler_tour(&f);
            tour.succ.pop();
            let err = tour.check_invariants(&f).expect_err("short succ must be rejected");
            prop_assert_eq!(err.rule, "succ-len");
        }
    }
}
