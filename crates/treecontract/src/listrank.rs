//! List ranking: distance of every element to the end of its linked list.
//!
//! Input is a successor array `next` where `next[i] == i` marks a list
//! tail. The parallel version is Wyllie's pointer jumping — O(log n)
//! rounds of O(n) work each, the textbook PRAM routine the paper's
//! reference \[26\] builds tree contraction on. The sequential version is
//! the linear-work baseline used for verification and small inputs.

use rayon::prelude::*;

/// Sequential list ranking. `rank[i]` = number of hops from `i` to its
/// list tail (tails get 0).
///
/// # Panics
/// Panics if the successor structure contains a cycle.
pub fn list_rank_sequential(next: &[u32]) -> Vec<u32> {
    let n = next.len();
    let mut rank = vec![u32::MAX; n];
    let mut stack = Vec::new();
    for start in 0..n {
        if rank[start] != u32::MAX {
            continue;
        }
        // Walk to a known rank or the tail, stacking the path.
        let mut cur = start;
        loop {
            if rank[cur] != u32::MAX {
                break;
            }
            if next[cur] as usize == cur {
                rank[cur] = 0;
                break;
            }
            stack.push(cur);
            assert!(
                stack.len() <= n,
                "list_rank_sequential: successor array contains a cycle"
            );
            cur = next[cur] as usize;
        }
        while let Some(v) = stack.pop() {
            rank[v] = rank[next[v] as usize] + 1;
        }
    }
    rank
}

/// Parallel list ranking by pointer jumping: O(log n) rounds, O(n log n)
/// work, deterministic.
pub fn list_rank_parallel(next: &[u32]) -> Vec<u32> {
    list_rank_parallel_with_rounds(next).0
}

/// [`list_rank_parallel`] that also reports the number of pointer-jumping
/// rounds executed — the quantity behind the O(log n) parallel-time claims
/// of Theorems 2.1–2.2 (measured in `exp_parallel_rounds`).
pub fn list_rank_parallel_with_rounds(next: &[u32]) -> (Vec<u32>, usize) {
    let n = next.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut rank: Vec<u32> = next
        .par_iter()
        .enumerate()
        .map(|(i, &s)| if s as usize == i { 0 } else { 1 })
        .collect();
    let mut ptr: Vec<u32> = next.to_vec();
    let mut rounds = 0usize;
    loop {
        let done = ptr
            .par_iter()
            .enumerate()
            .all(|(i, &p)| p as usize == i || ptr[p as usize] as usize == p as usize);
        if done {
            // One final half-step below handles the already-converged state.
        }
        let (new_rank, new_ptr): (Vec<u32>, Vec<u32>) = (0..n)
            .into_par_iter()
            .map(|i| {
                let p = ptr[i] as usize;
                if p == i {
                    (rank[i], ptr[i])
                } else {
                    // saturating: a cycle would otherwise overflow before
                    // the round-limit check below fires
                    (rank[i].saturating_add(rank[p]), ptr[p])
                }
            })
            .unzip();
        rank = new_rank;
        ptr = new_ptr;
        rounds += 1;
        if done {
            break;
        }
        assert!(
            rounds <= 64,
            "list_rank_parallel: cycle detected (no convergence)"
        );
    }
    if hicond_obs::enabled() {
        hicond_obs::counter_add("treecontract/listrank_runs", 1);
        hicond_obs::counter_add("treecontract/listrank_rounds", rounds as u64);
    }
    (rank, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Vec<u32> {
        // i -> i+1, tail at n-1.
        (0..n)
            .map(|i| if i + 1 < n { (i + 1) as u32 } else { i as u32 })
            .collect()
    }

    #[test]
    fn single_element() {
        assert_eq!(list_rank_sequential(&[0]), vec![0]);
        assert_eq!(list_rank_parallel(&[0]), vec![0]);
    }

    #[test]
    fn simple_chain() {
        let next = chain(5);
        let expect = vec![4, 3, 2, 1, 0];
        assert_eq!(list_rank_sequential(&next), expect);
        assert_eq!(list_rank_parallel(&next), expect);
    }

    #[test]
    fn multiple_lists() {
        // Two lists: 0->1->2 (tail 2), 4->3 (tail 3), 5 singleton.
        let next = vec![1, 2, 2, 3, 3, 5];
        let expect = vec![2, 1, 0, 0, 1, 0];
        assert_eq!(list_rank_sequential(&next), expect);
        assert_eq!(list_rank_parallel(&next), expect);
    }

    #[test]
    fn scrambled_large_matches_sequential() {
        // Build a permuted chain of 10_000 elements.
        let n = 10_000;
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Deterministic shuffle.
        let mut state = 12345u64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut next = vec![0u32; n];
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        let tail = *order.last().unwrap();
        next[tail as usize] = tail;
        let s = list_rank_sequential(&next);
        let p = list_rank_parallel(&next);
        assert_eq!(s, p);
        assert_eq!(s[order[0] as usize], (n - 1) as u32);
        assert_eq!(s[tail as usize], 0);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn sequential_detects_cycle() {
        list_rank_sequential(&[1, 0]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn parallel_detects_cycle() {
        list_rank_parallel(&[1, 2, 0]);
    }
}
