//! m-critical vertices and bridge decomposition (paper Section 2 /
//! reference \[26\]).
//!
//! Given a rooted tree with subtree sizes `|descendants(v)|` (including
//! `v`), a vertex `v` is **m-critical** iff (i) it is not a leaf and
//! (ii) `⌈size(v)/m⌉ > ⌈size(w)/m⌉` for every child `w`. For `m = 3`
//! these are the separators of Theorem 2.1. Removing the critical
//! vertices splits the remaining vertices into **bridge** components.
//!
//! Structural facts (proved by the sandwich argument on `⌈size/3⌉` and
//! asserted in debug builds / property tests):
//!
//! * every 3-critical vertex has `size ≥ 4`, so trees with `n ≤ 3` have none;
//! * a bridge contains at most **one** vertex with a critical child;
//! * a bridge with a critical child (paper: *internal* bridge) has at most
//!   2 vertices; one without (paper: *external*) has at most 3.

use hicond_graph::forest::RootedForest;
use hicond_graph::InvariantViolation;
use rayon::prelude::*;

/// Flags the m-critical vertices. `sizes[v]` must be `|descendants(v)|`
/// including `v` (use [`crate::euler::subtree_sizes_parallel`] or
/// [`RootedForest::subtree_size`]).
pub fn critical_vertices(forest: &RootedForest, sizes: &[u32], m: u32) -> Vec<bool> {
    assert!(m >= 2, "criticality needs m >= 2");
    let n = forest.num_vertices();
    assert_eq!(sizes.len(), n);
    let ceil_div = |s: u32| s.div_ceil(m);
    (0..n)
        .into_par_iter()
        .map(|v| {
            let children = forest.children(v);
            if children.is_empty() {
                return false;
            }
            let my = ceil_div(sizes[v]);
            children.iter().all(|&w| my > ceil_div(sizes[w as usize]))
        })
        .collect()
}

/// Validates a claimed m-critical set against its definition (paper
/// Section 2 / Theorem 2.1): `critical[v]` must hold exactly when `v` has
/// children and `⌈size(v)/m⌉ > ⌈size(w)/m⌉` for every child `w`. For
/// `m = 3` the structural fact that every critical vertex has subtree
/// size ≥ 4 is checked too (the sandwich argument of Theorem 2.1).
///
/// Always compiled; pair with [`hicond_graph::invariant::enforce`] (or
/// construct through [`critical_vertices`], which recomputes from the
/// definition) for boundary enforcement.
pub fn check_critical_set(
    forest: &RootedForest,
    sizes: &[u32],
    critical: &[bool],
    m: u32,
) -> Result<(), InvariantViolation> {
    let n = forest.num_vertices();
    let fail = |rule: &'static str, message: String, witness: Vec<usize>| {
        Err(InvariantViolation::new(
            "hicond-treecontract",
            "CriticalSet",
            rule,
            message,
            witness,
        ))
    };
    if sizes.len() != n || critical.len() != n {
        return fail(
            "lengths",
            format!(
                "{} sizes / {} flags for {} vertices",
                sizes.len(),
                critical.len(),
                n
            ),
            vec![],
        );
    }
    let ceil_div = |s: u32| s.div_ceil(m);
    for v in 0..n {
        let children = forest.children(v);
        let by_def = !children.is_empty() && {
            let my = ceil_div(sizes[v]);
            // bounds: children are vertex ids < n == sizes.len()
            children.iter().all(|&w| my > ceil_div(sizes[w as usize]))
        };
        if critical[v] != by_def {
            return fail(
                "definition",
                format!(
                    "vertex {v} flagged {} but definition says {}",
                    critical[v], by_def
                ),
                vec![v],
            );
        }
        if m == 3 && critical[v] && sizes[v] < 4 {
            return fail(
                "min-size",
                format!("3-critical vertex {v} has subtree size {}", sizes[v]),
                vec![v],
            );
        }
    }
    Ok(())
}

impl Bridges {
    /// Validates the bridge decomposition against its forest: bridges
    /// cover the non-critical vertices exactly once (critical vertices in
    /// none), each bridge's recorded attachments are consistent with the
    /// tree structure, and the [`BridgeKind`] matches the attachments.
    ///
    /// Always compiled; use [`Bridges::debug_invariants`] for the
    /// zero-cost-in-release variant.
    pub fn check_invariants(&self, forest: &RootedForest) -> Result<(), InvariantViolation> {
        let n = forest.num_vertices();
        let fail = |rule: &'static str, message: String, witness: Vec<usize>| {
            Err(InvariantViolation::new(
                "hicond-treecontract",
                "Bridges",
                rule,
                message,
                witness,
            ))
        };
        if self.critical.len() != n {
            return fail(
                "lengths",
                format!("{} flags for {} vertices", self.critical.len(), n),
                vec![],
            );
        }
        let mut owner = vec![usize::MAX; n];
        for (bi, br) in self.bridges.iter().enumerate() {
            for &v in &br.vertices {
                let v = v as usize;
                if v >= n || self.critical[v] || owner[v] != usize::MAX {
                    return fail(
                        "cover-once",
                        format!("vertex {v} mis-covered by bridge {bi}"),
                        vec![bi, v],
                    );
                }
                owner[v] = bi;
            }
            let top = match br.vertices.first() {
                Some(&t) => t as usize,
                None => {
                    return fail("non-empty", format!("bridge {bi} is empty"), vec![bi]);
                }
            };
            let expected_parent = forest.parent(top).map(|p| p as u32);
            // bounds: parents are vertex ids < n == critical.len()
            if br.parent_critical != expected_parent.filter(|&p| self.critical[p as usize]) {
                return fail(
                    "parent-attachment",
                    format!(
                        "bridge {bi} records parent_critical {:?}, tree has {:?}",
                        br.parent_critical, expected_parent
                    ),
                    vec![bi, top],
                );
            }
            if let Some((host, child)) = br.critical_child {
                let host_in_bridge = br.vertices.contains(&host);
                let child_ok = self.critical.get(child as usize) == Some(&true)
                    && forest.parent(child as usize) == Some(host as usize);
                if !host_in_bridge || !child_ok {
                    return fail(
                        "child-attachment",
                        format!("bridge {bi} records bad critical child ({host}, {child})"),
                        vec![bi, host as usize, child as usize],
                    );
                }
            }
            let expected_kind = match (br.parent_critical.is_some(), br.critical_child.is_some()) {
                (true, true) => BridgeKind::Internal,
                (false, false) => BridgeKind::Isolated,
                _ => BridgeKind::External,
            };
            if br.kind != expected_kind {
                return fail(
                    "kind",
                    format!(
                        "bridge {bi} classified {:?}, attachments say {expected_kind:?}",
                        br.kind
                    ),
                    vec![bi],
                );
            }
        }
        for v in 0..n {
            if !self.critical[v] && owner[v] == usize::MAX {
                return fail(
                    "cover-all",
                    format!("non-critical vertex {v} is in no bridge"),
                    vec![v],
                );
            }
        }
        Ok(())
    }

    /// Panics on any violation of [`Bridges::check_invariants`]. Compiles
    /// to a no-op in release builds unless the `check-invariants` feature
    /// is enabled.
    ///
    /// # Panics
    /// Panics with the structured violation report when a bridge
    /// invariant fails and checks are compiled in.
    #[inline]
    pub fn debug_invariants(&self, forest: &RootedForest) {
        #[cfg(any(debug_assertions, feature = "check-invariants"))]
        hicond_graph::invariant::enforce(self.check_invariants(forest));
        #[cfg(not(any(debug_assertions, feature = "check-invariants")))]
        let _ = forest;
    }
}

/// Which critical attachments a bridge has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeKind {
    /// No critical vertex anywhere (whole tree non-critical; `n ≤ m`).
    Isolated,
    /// Exactly one critical attachment (above or below).
    External,
    /// Critical attachments both above and below.
    Internal,
}

/// A maximal connected component of non-critical vertices.
#[derive(Debug, Clone)]
pub struct Bridge {
    /// Component vertices; `vertices\[0\]` is the top (closest to the root).
    pub vertices: Vec<u32>,
    /// The critical parent of the top vertex, if any.
    pub parent_critical: Option<u32>,
    /// `(bridge vertex, its critical child)` if the component has one.
    pub critical_child: Option<(u32, u32)>,
    /// Classification.
    pub kind: BridgeKind,
}

/// All bridges of the forest plus the critical flags they were built from.
#[derive(Debug, Clone)]
pub struct Bridges {
    /// Critical flags per vertex.
    pub critical: Vec<bool>,
    /// Bridge components covering exactly the non-critical vertices.
    pub bridges: Vec<Bridge>,
}

/// Decomposes the non-critical vertices into bridge components
/// (parallel over components).
pub fn bridges(forest: &RootedForest, critical: &[bool]) -> Bridges {
    let n = forest.num_vertices();
    assert_eq!(critical.len(), n);
    // Tops: non-critical vertices whose parent is critical or absent.
    let tops: Vec<usize> = (0..n)
        .filter(|&v| {
            !critical[v]
                && match forest.parent(v) {
                    None => true,
                    Some(p) => critical[p],
                }
        })
        .collect();
    let bridges: Vec<Bridge> = tops
        .into_par_iter()
        .map(|top| {
            let mut vertices = Vec::new();
            let mut critical_child = None;
            let mut stack = vec![top as u32];
            while let Some(v) = stack.pop() {
                vertices.push(v);
                for &c in forest.children(v as usize) {
                    if critical[c as usize] {
                        debug_assert!(critical_child.is_none(), "bridge has two critical children");
                        critical_child = Some((v, c));
                    } else {
                        stack.push(c);
                    }
                }
            }
            let parent_critical = forest.parent(top).map(|p| p as u32);
            let kind = match (parent_critical.is_some(), critical_child.is_some()) {
                (true, true) => BridgeKind::Internal,
                (false, false) => BridgeKind::Isolated,
                _ => BridgeKind::External,
            };
            debug_assert!(
                match kind {
                    BridgeKind::Internal => vertices.len() <= 2,
                    BridgeKind::External if parent_critical.is_some() => vertices.len() <= 3,
                    _ => true,
                },
                "bridge size bound violated: kind {kind:?}, {} vertices",
                vertices.len()
            );
            Bridge {
                vertices,
                parent_critical,
                critical_child,
                kind,
            }
        })
        .collect();
    let out = Bridges {
        critical: critical.to_vec(),
        bridges,
    };
    out.debug_invariants(forest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::subtree_sizes_parallel;
    use hicond_graph::generators;
    use hicond_graph::Graph;

    fn analyze(g: &Graph) -> (RootedForest, Vec<bool>, Bridges) {
        let f = RootedForest::from_graph(g).unwrap();
        let sizes = subtree_sizes_parallel(&f);
        let crit = critical_vertices(&f, &sizes, 3);
        let b = bridges(&f, &crit);
        (f, crit, b)
    }

    #[test]
    fn small_trees_have_no_criticals() {
        for n in 1..=3 {
            let g = generators::path(n, |_| 1.0);
            let (_, crit, b) = analyze(&g);
            assert!(crit.iter().all(|&c| !c));
            if n >= 1 {
                assert_eq!(b.bridges.len(), 1);
                assert_eq!(b.bridges[0].kind, BridgeKind::Isolated);
            }
        }
    }

    #[test]
    fn path7_critical_pattern() {
        // Path rooted at 0; sizes from root: 7,6,5,4,3,2,1.
        // ceil/3:            3,2,2,2,1,1,1 -> critical where value drops:
        // vertex 0 (3>2) and vertex 3 (2>1).
        let g = generators::path(7, |_| 1.0);
        let (_, crit, b) = analyze(&g);
        assert_eq!(crit, vec![true, false, false, true, false, false, false]);
        // Bridges: {1,2} internal, {4,5,6} external.
        assert_eq!(b.bridges.len(), 2);
        let internal = b
            .bridges
            .iter()
            .find(|br| br.kind == BridgeKind::Internal)
            .unwrap();
        assert_eq!(internal.vertices.len(), 2);
        assert_eq!(internal.parent_critical, Some(0));
        assert_eq!(internal.critical_child.unwrap().1, 3);
        let external = b
            .bridges
            .iter()
            .find(|br| br.kind == BridgeKind::External)
            .unwrap();
        assert_eq!(external.vertices.len(), 3);
        assert_eq!(external.parent_critical, Some(3));
    }

    #[test]
    fn star_center_critical() {
        let g = generators::star(6, |_| 1.0);
        let (_, crit, b) = analyze(&g);
        assert!(crit[0]);
        assert!(crit[1..].iter().all(|&c| !c));
        // 5 singleton external bridges.
        assert_eq!(b.bridges.len(), 5);
        assert!(b
            .bridges
            .iter()
            .all(|br| br.kind == BridgeKind::External && br.vertices.len() == 1));
    }

    #[test]
    fn criticals_have_size_at_least_4() {
        for seed in 0..30 {
            let g = generators::random_tree(150, seed, 1.0, 1.0);
            let f = RootedForest::from_graph(&g).unwrap();
            let sizes = subtree_sizes_parallel(&f);
            let crit = critical_vertices(&f, &sizes, 3);
            for v in 0..150 {
                if crit[v] {
                    assert!(sizes[v] >= 4, "critical vertex with size {}", sizes[v]);
                }
            }
        }
    }

    #[test]
    fn critical_count_bounded() {
        // Reid-Miller et al.: at most 2n/m − 1 m-critical vertices.
        for seed in 0..30 {
            let n = 200;
            let g = generators::random_tree(n, seed, 1.0, 1.0);
            let (_, crit, _) = analyze(&g);
            let count = crit.iter().filter(|&&c| c).count();
            assert!(count <= 2 * n / 3, "too many criticals: {count}");
        }
    }

    #[test]
    fn bridges_cover_noncriticals_exactly_once() {
        for seed in 0..20 {
            let g = generators::random_tree(120, seed, 0.5, 2.0);
            let (_, crit, b) = analyze(&g);
            let mut seen = vec![0usize; 120];
            for br in &b.bridges {
                for &v in &br.vertices {
                    seen[v as usize] += 1;
                }
            }
            for v in 0..120 {
                assert_eq!(seen[v], if crit[v] { 0 } else { 1 }, "vertex {v}");
            }
        }
    }

    #[test]
    fn bridge_size_bounds_hold() {
        for seed in 0..50 {
            let g = generators::random_tree(300, seed, 1.0, 1.0);
            let (_, _, b) = analyze(&g);
            for br in &b.bridges {
                match br.kind {
                    BridgeKind::Internal => assert!(br.vertices.len() <= 2),
                    BridgeKind::External => {
                        if br.parent_critical.is_some() {
                            assert!(br.vertices.len() <= 3)
                        }
                    }
                    BridgeKind::Isolated => {}
                }
            }
        }
    }

    #[test]
    fn binary_tree_bridges() {
        let g = generators::balanced_binary(6, |_, _| 1.0);
        let (_, crit, b) = analyze(&g);
        assert!(crit.iter().any(|&c| c));
        // All non-critical vertices covered.
        let covered: usize = b.bridges.iter().map(|br| br.vertices.len()).sum();
        let non_critical = crit.iter().filter(|&&c| !c).count();
        assert_eq!(covered, non_critical);
    }
}
