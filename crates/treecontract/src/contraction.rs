//! Generic parallel tree contraction by rake and compress (\[26\]).
//!
//! The classic scheme: repeatedly **rake** leaves into their parents and
//! **compress** single-child internal vertices out of chains, until every
//! vertex has contracted. Each round's *classification* is a data-parallel
//! map over the live vertices (the PRAM structure Theorems 2.1–2.2 cite
//! for their O(log n) parallel-time claims); the state updates are applied
//! in a deterministic sweep.
//!
//! The module instantiates the scheme for weighted subtree sums. Each live
//! vertex `v` carries `acc[v]` (the value mass of `v`'s finished subtree
//! pieces) and `carry[v]` (mass spliced onto `v` from compressed ancestors
//! that must flow *past* `v` to its parent but does not belong to `v`'s
//! subtree). Raking a leaf finishes it; compressing `v` with single child
//! `c` records `finished(v) = acc[v] + finished(c)` for later resolution
//! and re-parents `c`.

use hicond_graph::forest::RootedForest;
use rayon::prelude::*;

/// Result of a contraction run.
#[derive(Debug, Clone)]
pub struct ContractionResult {
    /// Aggregate per vertex: Σ `value[u]` over `u` in the subtree of `v`.
    pub subtree_sum: Vec<f64>,
    /// Number of rake+compress rounds executed.
    pub rounds: usize,
}

/// Computes all subtree sums of `value` over the forest by rake-and-
/// compress contraction.
pub fn subtree_sums_contraction(forest: &RootedForest, value: &[f64]) -> ContractionResult {
    let n = forest.num_vertices();
    assert_eq!(value.len(), n);
    let mut parent: Vec<u32> = (0..n as u32)
        .map(|v| forest.parent(v as usize).map(|p| p as u32).unwrap_or(v))
        .collect();
    let mut child_count: Vec<u32> = (0..n).map(|v| forest.children(v).len() as u32).collect();
    let mut acc = value.to_vec();
    let mut carry = vec![0.0; n];
    let mut finished = vec![f64::NAN; n];
    // When v splices ancestors over multiple rounds, the subtree of a newly
    // spliced ancestor p is snapshot + subtree of the *previous* spliced
    // ancestor on v's chain (p's original child on the path), not of v
    // itself. chain_top[v] tracks that previous ancestor.
    let mut chain_top: Vec<u32> = (0..n as u32).collect();
    // (spliced vertex, heir, acc snapshot); heirs resolve topologically.
    let mut pending: Vec<(u32, u32, f64)> = Vec::new();
    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;

    while !alive.is_empty() {
        rounds += 1;
        assert!(rounds <= 4 * 64, "contraction failed to converge");
        // --- Parallel classification ---------------------------------
        #[derive(Clone, Copy, PartialEq)]
        enum Action {
            Rake,
            FinishRoot,
            Keep,
        }
        let actions: Vec<Action> = alive
            .par_iter()
            .map(|&v| {
                let vu = v as usize;
                let is_root = parent[vu] == v;
                match (child_count[vu], is_root) {
                    (0, true) => Action::FinishRoot,
                    (0, false) => Action::Rake,
                    _ => Action::Keep,
                }
            })
            .collect();
        // --- Rake sweep (deterministic apply) --------------------------
        let mut survivors = Vec::with_capacity(alive.len());
        for (i, &v) in alive.iter().enumerate() {
            let vu = v as usize;
            match actions[i] {
                Action::FinishRoot => {
                    finished[vu] = acc[vu];
                }
                Action::Rake => {
                    finished[vu] = acc[vu];
                    let p = parent[vu] as usize;
                    acc[p] += acc[vu] + carry[vu];
                    child_count[p] -= 1;
                }
                Action::Keep => survivors.push(v),
            }
        }
        // --- Compress sweep, child-driven: a live non-root vertex whose
        // parent is a single-child non-root splices the parent out
        // (child-driven avoids maintaining child pointers).
        let mut next_alive = Vec::with_capacity(survivors.len());
        let mut spliced = std::collections::HashSet::new();
        for &v in &survivors {
            let vu = v as usize;
            let p = parent[vu];
            let pu = p as usize;
            let splice_ok = p != v
                && child_count[pu] == 1
                && parent[pu] != p // parent not a root
                && !spliced.contains(&p)
                && !spliced.contains(&v)
                && finished[pu].is_nan();
            if splice_ok {
                let grand = parent[pu];
                pending.push((p, chain_top[vu], acc[pu]));
                // p may itself have absorbed ancestors; the merged chain's
                // top is p's top, not p.
                chain_top[vu] = chain_top[pu];
                carry[vu] += acc[pu] + carry[pu];
                parent[vu] = grand;
                // Grandparent's child count is unchanged: loses p, gains v.
                spliced.insert(p);
            }
        }
        for &v in &survivors {
            if !spliced.contains(&v) {
                next_alive.push(v);
            }
        }
        alive = next_alive;
    }
    // Resolve spliced vertices topologically: each depends only on its
    // heir, which is either already finished (raked) or another pending
    // entry; follow heir chains with an explicit stack.
    let mut entry_of: std::collections::HashMap<u32, (u32, f64)> =
        pending.iter().map(|&(v, h, s)| (v, (h, s))).collect();
    for &(v, _, _) in &pending {
        if !finished[v as usize].is_nan() {
            continue;
        }
        let mut stack = vec![v];
        while let Some(&top) = stack.last() {
            let (heir, snapshot) = entry_of[&top];
            if finished[heir as usize].is_nan() {
                stack.push(heir);
                continue;
            }
            finished[top as usize] = snapshot + finished[heir as usize];
            stack.pop();
        }
    }
    entry_of.clear();
    debug_assert!(finished.iter().all(|x| !x.is_nan()));
    if hicond_obs::enabled() {
        hicond_obs::counter_add("treecontract/contractions", 1);
        hicond_obs::counter_add("treecontract/contraction_rounds", rounds as u64);
        hicond_obs::hist_record("treecontract/rounds_per_contraction", rounds as f64);
    }
    ContractionResult {
        subtree_sum: finished,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_graph::Graph;

    fn check(g: &Graph) -> usize {
        let f = RootedForest::from_graph(g).unwrap();
        let value: Vec<f64> = (0..g.num_vertices())
            .map(|v| 1.0 + (v % 5) as f64)
            .collect();
        let res = subtree_sums_contraction(&f, &value);
        let mut want = value.clone();
        let pre = f.preorder();
        for i in (0..pre.len()).rev() {
            let v = pre[i] as usize;
            if let Some(p) = f.parent(v) {
                want[p] += want[v];
            }
        }
        for v in 0..g.num_vertices() {
            assert!(
                (res.subtree_sum[v] - want[v]).abs() < 1e-9,
                "vertex {v}: {} vs {}",
                res.subtree_sum[v],
                want[v]
            );
        }
        res.rounds
    }

    #[test]
    fn star_contracts_in_few_rounds() {
        let g = generators::star(100, |_| 1.0);
        let rounds = check(&g);
        assert!(rounds <= 4, "rounds {rounds}");
    }

    #[test]
    fn binary_tree_sums() {
        check(&generators::balanced_binary(7, |_, _| 1.0));
    }

    #[test]
    fn long_path_contracts_fast() {
        let n = 4096;
        let g = generators::path(n, |_| 1.0);
        let rounds = check(&g);
        // Chains compress aggressively; far below the O(log n)-round cap.
        let cap = 6 * (usize::BITS - n.leading_zeros()) as usize;
        assert!(rounds <= cap, "rounds {rounds} > {cap}");
    }

    #[test]
    fn caterpillar_sums() {
        check(&generators::caterpillar(50, 3, |_, _| 1.0));
    }

    #[test]
    fn random_trees_match_reference() {
        for seed in 0..10 {
            check(&generators::random_tree(300, seed, 0.5, 2.0));
        }
    }

    #[test]
    fn forest_components() {
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]);
        check(&g);
    }

    #[test]
    fn single_vertex() {
        let g = Graph::from_edges(1, &[]);
        let f = RootedForest::from_graph(&g).unwrap();
        let res = subtree_sums_contraction(&f, &[7.0]);
        assert_eq!(res.subtree_sum, vec![7.0]);
        assert_eq!(res.rounds, 1);
    }
}
