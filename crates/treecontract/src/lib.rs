//! Parallel tree contraction machinery (\[26\] in the paper): list ranking,
//! Euler tours, parallel subtree sizes, and the **3-critical vertices**
//! with their **3-bridges** that drive the tree decomposition of
//! Theorem 2.1.
//!
//! The paper's Theorem 2.1 computes a `[1/2, 6/5]`-decomposition of a tree
//! whose "basic step is to compute an appropriate vertex separator of T,
//! the so-called 3-critical vertices", doable "with linear work in
//! O(log n) parallel time using the parallel tree contraction algorithms".
//! This crate provides exactly that separator computation:
//!
//! * [`listrank`] — pointer-jumping list ranking (the PRAM classic, O(log n)
//!   rounds), with a sequential linear-work fallback;
//! * [`euler`] — Euler tours of rooted forests and parallel subtree sizes
//!   derived from tour ranks;
//! * [`critical`] — m-critical vertices and the decomposition of the tree
//!   vertices into external/internal bridge components.

pub mod contraction;
pub mod critical;
pub mod euler;
pub mod listrank;

pub use contraction::{subtree_sums_contraction, ContractionResult};
pub use critical::{bridges, check_critical_set, critical_vertices, Bridge, BridgeKind, Bridges};
pub use euler::{euler_tour, subtree_sizes_parallel, EulerTour};
pub use listrank::{list_rank_parallel, list_rank_parallel_with_rounds, list_rank_sequential};
