//! Property-based tests for the tree-contraction substrate.

use hicond_graph::forest::RootedForest;
use hicond_graph::Graph;
use hicond_treecontract::contraction::subtree_sums_contraction;
use hicond_treecontract::critical::{bridges, critical_vertices, BridgeKind};
use hicond_treecontract::euler::{euler_tour, subtree_sizes_parallel};
use hicond_treecontract::listrank::{list_rank_parallel, list_rank_sequential};
use proptest::prelude::*;

fn random_forest(n: usize) -> impl Strategy<Value = Graph> {
    // Random attachment per vertex, some vertices left as roots.
    prop::collection::vec((any::<u64>(), any::<bool>()), n - 1).prop_map(move |spec| {
        let mut edges = Vec::new();
        for (i, &(s, attach)) in spec.iter().enumerate() {
            let child = i + 1;
            if attach || child == 1 {
                let parent = (s as usize) % child.max(1);
                edges.push((parent, child, 1.0 + (s % 7) as f64));
            }
        }
        Graph::from_edges(n, &edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn list_rank_parallel_matches_sequential(perm_seed in any::<u64>(), n in 2usize..400) {
        // Permuted chain.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut state = perm_seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut next = vec![0u32; n];
        for w in order.windows(2) {
            next[w[0] as usize] = w[1];
        }
        let tail = *order.last().unwrap();
        next[tail as usize] = tail;
        prop_assert_eq!(list_rank_sequential(&next), list_rank_parallel(&next));
    }

    #[test]
    fn euler_sizes_match_dfs(g in random_forest(80)) {
        let f = RootedForest::from_graph(&g).unwrap();
        let sizes = subtree_sizes_parallel(&f);
        for v in 0..80 {
            prop_assert_eq!(sizes[v] as usize, f.subtree_size(v));
        }
    }

    #[test]
    fn contraction_sums_match_dfs(g in random_forest(60),
                                  vals in prop::collection::vec(-3.0..3.0f64, 60)) {
        let f = RootedForest::from_graph(&g).unwrap();
        let res = subtree_sums_contraction(&f, &vals);
        let mut want = vals.clone();
        let pre = f.preorder();
        for i in (0..pre.len()).rev() {
            let v = pre[i] as usize;
            if let Some(p) = f.parent(v) {
                want[p] += want[v];
            }
        }
        for v in 0..60 {
            prop_assert!((res.subtree_sum[v] - want[v]).abs() < 1e-9,
                "vertex {}: {} vs {}", v, res.subtree_sum[v], want[v]);
        }
    }

    #[test]
    fn tour_arc_count(g in random_forest(50)) {
        let f = RootedForest::from_graph(&g).unwrap();
        let tour = euler_tour(&f);
        // Every non-root vertex contributes exactly two live arcs; count
        // arcs reachable from the first arcs of all trees.
        let mut live = 0usize;
        for (ri, &fa) in tour.first_arc.iter().enumerate() {
            if fa == u32::MAX {
                continue;
            }
            let mut a = fa;
            loop {
                live += 1;
                prop_assert!(live <= 2 * 50, "tour loops");
                let s = tour.succ[a as usize];
                if s == a {
                    break;
                }
                a = s;
            }
            let _ = ri;
        }
        let non_roots = (0..50).filter(|&v| f.parent(v).is_some()).count();
        prop_assert_eq!(live, 2 * non_roots);
    }

    #[test]
    fn critical_structure_invariants(g in random_forest(120)) {
        let f = RootedForest::from_graph(&g).unwrap();
        let sizes = subtree_sizes_parallel(&f);
        let crit = critical_vertices(&f, &sizes, 3);
        // Criticals have size >= 4 and are not leaves.
        for v in 0..120 {
            if crit[v] {
                prop_assert!(sizes[v] >= 4);
                prop_assert!(!f.is_leaf(v));
            }
        }
        // Bridges partition the non-criticals with the size bounds.
        let b = bridges(&f, &crit);
        let mut covered = vec![false; 120];
        for br in &b.bridges {
            for &v in &br.vertices {
                prop_assert!(!covered[v as usize], "double cover");
                covered[v as usize] = true;
                prop_assert!(!crit[v as usize]);
            }
            match br.kind {
                BridgeKind::Internal => prop_assert!(br.vertices.len() <= 2),
                BridgeKind::External if br.parent_critical.is_some() => {
                    prop_assert!(br.vertices.len() <= 3)
                }
                _ => {}
            }
        }
        for v in 0..120 {
            prop_assert_eq!(covered[v], !crit[v]);
        }
    }
}
