//! Property-based tests for the spectral machinery: Theorem 4.1 must hold
//! for arbitrary decompositions of arbitrary graphs, random walks must
//! conserve mass, and projections must be contractions.

use hicond_core::{decompose_fixed_degree, FixedDegreeOptions};
use hicond_graph::{Graph, Partition};
use hicond_spectral::normalized::normalized_eigenpairs_dense;
use hicond_spectral::portrait::{portrait_check, portrait_projection};
use hicond_spectral::randwalk::random_walk_mixture;
use proptest::prelude::*;

fn connected_graph(n: usize) -> impl Strategy<Value = Graph> {
    (
        prop::collection::vec(0.1..10.0f64, n - 1),
        prop::collection::vec((0..n, 0..n, 0.1..10.0f64), 0..n),
    )
        .prop_map(move |(tw, ex)| {
            let mut edges = Vec::new();
            for (i, &w) in tw.iter().enumerate() {
                let child = i + 1;
                edges.push(((i * 3 + 1) % child.max(1), child, w));
            }
            for (u, v, w) in ex {
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn theorem_4_1_never_violated(g in connected_graph(14)) {
        let p = decompose_fixed_degree(&g, &FixedDegreeOptions { k: 4, ..Default::default() });
        let q = p.quality(&g, 16);
        prop_assume!(q.phi_exact && q.phi > 0.0);
        let (vals, vecs) = normalized_eigenpairs_dense(&g);
        let rows = portrait_check(&g, &p, &vals, &vecs, q.phi, q.gamma.max(1e-12));
        for r in rows {
            prop_assert!(r.alignment >= r.bound - 1e-8,
                "alignment {} < bound {} at lambda {}", r.alignment, r.bound, r.lambda);
            prop_assert!(r.alignment <= 1.0 + 1e-8);
        }
    }

    #[test]
    fn projection_is_contraction(g in connected_graph(12), raw in prop::collection::vec(-3.0..3.0f64, 12)) {
        let assignment: Vec<u32> = (0..12).map(|v| (v % 4) as u32).collect();
        let p = Partition::from_assignment(assignment, 4);
        let d_sqrt: Vec<f64> = g.volumes().iter().map(|&d| d.sqrt()).collect();
        let norm_sq: f64 = raw.iter().map(|x| x * x).sum();
        prop_assume!(norm_sq > 1e-6);
        let proj = portrait_projection(&raw, &d_sqrt, &p);
        prop_assert!(proj >= -1e-10);
        prop_assert!(proj <= norm_sq + 1e-8 * norm_sq);
    }

    #[test]
    fn walk_conserves_mass_and_nonnegativity(g in connected_graph(15), t in 0usize..30, src in 0usize..15) {
        let mut w = vec![0.0; 15];
        w[src] = 1.0;
        let out = random_walk_mixture(&g, &w, t);
        let total: f64 = out.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for &x in &out {
            prop_assert!(x >= -1e-12);
        }
    }

    #[test]
    fn normalized_spectrum_bounds(g in connected_graph(12)) {
        let (vals, _) = normalized_eigenpairs_dense(&g);
        prop_assert!(vals[0].abs() < 1e-7, "kernel eigenvalue {}", vals[0]);
        for &v in &vals {
            prop_assert!(v >= -1e-8 && v <= 2.0 + 1e-8);
        }
    }
}
