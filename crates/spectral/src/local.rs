//! Local clustering by truncated random walks — the Spielman–Teng-style
//! routine (\[28\] in the paper) that the introduction contrasts with the
//! global distribution-mixture view of Section 4.
//!
//! "A particle doing a random walk tends to get 'trapped' in clusters of
//! high conductance when the vertices of the cluster are connected to the
//! exterior with relatively light edges; then the probability distribution
//! Pᵗ_v after a small number t of steps ... is expected to provide
//! information about the cluster where v belongs."
//!
//! [`local_cluster`] runs a truncated lazy walk from a seed vertex, orders
//! vertices by the degree-normalized probability, and sweeps prefixes for
//! the best-conductance local cut — without ever touching the rest of the
//! graph beyond the walk's support.

use hicond_graph::Graph;
use std::collections::HashMap;

/// Options for [`local_cluster`].
#[derive(Debug, Clone, Copy)]
pub struct LocalClusterOptions {
    /// Walk steps `t` (the paper's "small number t").
    pub steps: usize,
    /// Probability mass below which entries are truncated away (keeps the
    /// walk support — and the work — local).
    pub truncate_eps: f64,
    /// Cap on the volume of the returned cluster, as a fraction of the
    /// graph's total volume.
    pub max_vol_fraction: f64,
}

impl Default for LocalClusterOptions {
    fn default() -> Self {
        LocalClusterOptions {
            steps: 12,
            truncate_eps: 1e-7,
            max_vol_fraction: 0.5,
        }
    }
}

/// Result of a local clustering attempt.
#[derive(Debug, Clone)]
pub struct LocalCluster {
    /// Cluster vertices (contains the seed).
    pub vertices: Vec<usize>,
    /// Sparsity of the cut around the cluster.
    pub conductance: f64,
    /// Number of vertices the truncated walk touched.
    pub support_size: usize,
}

/// One lazy-walk step with truncation, on a sparse distribution.
fn lazy_step(g: &Graph, dist: &HashMap<usize, f64>, eps: f64) -> HashMap<usize, f64> {
    let mut next: HashMap<usize, f64> = HashMap::with_capacity(dist.len() * 2);
    for (&v, &mass) in dist {
        // Lazy walk: keep half, spread half (guarantees convergence and
        // the standard sweep analysis).
        *next.entry(v).or_insert(0.0) += 0.5 * mass;
        let dv = g.vol(v);
        if dv <= 0.0 {
            *next.entry(v).or_insert(0.0) += 0.5 * mass;
            continue;
        }
        let share = 0.5 * mass / dv;
        for (u, w, _) in g.neighbors(v) {
            *next.entry(u).or_insert(0.0) += share * w;
        }
    }
    next.retain(|_, m| *m >= eps);
    next
}

/// Finds a low-conductance cluster around `seed` by a truncated lazy walk
/// plus a sweep cut over the walk's support.
pub fn local_cluster(g: &Graph, seed: usize, opts: &LocalClusterOptions) -> LocalCluster {
    assert!(seed < g.num_vertices());
    let mut dist: HashMap<usize, f64> = HashMap::new();
    dist.insert(seed, 1.0);
    for _ in 0..opts.steps {
        dist = lazy_step(g, &dist, opts.truncate_eps);
    }
    let support_size = dist.len();
    // Sweep by p(v)/vol(v).
    let mut order: Vec<(usize, f64)> = dist
        .iter()
        .map(|(&v, &m)| {
            let dv = g.vol(v).max(f64::MIN_POSITIVE);
            (v, m / dv)
        })
        .collect();
    // total_cmp: the ratios are finite, so this matches partial_cmp while
    // staying panic-free on any input.
    order.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total_vol = g.total_volume();
    let vol_cap = opts.max_vol_fraction * total_vol;
    let mut in_set = vec![false; g.num_vertices()];
    let mut vol_in = 0.0;
    let mut cap = 0.0;
    let mut best = f64::INFINITY;
    let mut best_prefix = 1usize;
    for (idx, &(v, _)) in order.iter().enumerate() {
        in_set[v] = true;
        vol_in += g.vol(v);
        for (u, w, _) in g.neighbors(v) {
            if in_set[u] {
                cap -= w;
            } else {
                cap += w;
            }
        }
        if vol_in > vol_cap {
            break;
        }
        let denom = vol_in.min(total_vol - vol_in);
        if denom > 0.0 && cap / denom < best {
            best = cap / denom;
            best_prefix = idx + 1;
        }
    }
    let vertices: Vec<usize> = order.iter().take(best_prefix).map(|&(v, _)| v).collect();
    LocalCluster {
        vertices,
        conductance: best,
        support_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;

    fn dumbbell(k: usize, bridge: f64) -> Graph {
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j, 1.0));
                edges.push((k + i, k + j, 1.0));
            }
        }
        edges.push((0, k, bridge));
        Graph::from_edges(2 * k, &edges)
    }

    #[test]
    fn finds_the_bell_around_the_seed() {
        let g = dumbbell(8, 0.01);
        let c = local_cluster(&g, 3, &LocalClusterOptions::default());
        let mut got: Vec<usize> = c.vertices.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>(), "got {got:?}");
        assert!(c.conductance < 0.01, "conductance {}", c.conductance);
        // From the other side, finds the other bell.
        let c2 = local_cluster(&g, 12, &LocalClusterOptions::default());
        let mut got2 = c2.vertices.clone();
        got2.sort_unstable();
        assert_eq!(got2, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn truncation_keeps_support_local() {
        // Large ring of cliques: the walk from one clique must not touch
        // distant cliques.
        let k = 6;
        let blocks = 20;
        let mut edges = Vec::new();
        for b in 0..blocks {
            for i in 0..k {
                for j in (i + 1)..k {
                    edges.push((b * k + i, b * k + j, 1.0));
                }
            }
            edges.push((b * k, ((b + 1) % blocks) * k + 1, 0.05));
        }
        let g = Graph::from_edges(blocks * k, &edges);
        // On a ring of cliques every arc of cliques is sparser than a
        // single clique (same bridge capacity, more volume), so the volume
        // cap must bind to keep the answer local: allow ~1.5 cliques.
        let c = local_cluster(
            &g,
            0,
            &LocalClusterOptions {
                steps: 10,
                truncate_eps: 1e-4,
                max_vol_fraction: 0.08,
            },
        );
        assert!(
            c.support_size < blocks * k / 2,
            "walk touched {} of {} vertices",
            c.support_size,
            blocks * k
        );
        // The found cluster is the seed's clique (possibly plus a
        // neighbor or two).
        assert!(c.vertices.contains(&0));
        assert!(c.vertices.len() <= 2 * k);
        assert!(c.conductance < 0.1);
    }

    #[test]
    fn expander_gives_no_sparse_cut() {
        let g = generators::complete(20, 1.0);
        let c = local_cluster(&g, 0, &LocalClusterOptions::default());
        // Best local conductance on a clique is high.
        assert!(c.conductance > 0.4, "conductance {}", c.conductance);
    }

    #[test]
    fn cluster_contains_seed() {
        let g = generators::grid2d(10, 10, |_, _| 1.0);
        for seed in [0, 37, 99] {
            let c = local_cluster(&g, seed, &LocalClusterOptions::default());
            assert!(c.vertices.contains(&seed), "seed {seed} missing");
        }
    }
}
