//! Theorem 4.1 — the spectral portrait.
//!
//! For a `(φ, γ)` decomposition with membership matrix `R`, the subspace
//! `Range(D^{1/2} R)` consists of cluster-wise constant vectors scaled by
//! `√vol`. Theorem 4.1: any unit vector `x` in the span of `Â`-eigenvectors
//! with eigenvalues `< λᵢ` satisfies
//!
//! ```text
//! ‖proj_{Range(D^{1/2}R)} x‖² ≥ 1 − 3λᵢ(1 + 2/(γφ²)).
//! ```
//!
//! Because clusters are disjoint, the columns of `D^{1/2}R` have disjoint
//! support and the projection is computed cluster-by-cluster in O(n).

use hicond_graph::{Graph, Partition};

/// Squared norm of the projection of `x` onto `Range(D^{1/2} R)`.
///
/// `d_sqrt[v] = √vol(v)`. For unit `x` the returned value is `(xᵀz)²` in
/// the paper's notation; `1 −` it is the squared distance to the subspace.
pub fn portrait_projection(x: &[f64], d_sqrt: &[f64], p: &Partition) -> f64 {
    let n = x.len();
    assert_eq!(d_sqrt.len(), n);
    assert_eq!(p.num_vertices(), n);
    let m = p.num_clusters();
    let mut dots = vec![0.0; m];
    let mut norms = vec![0.0; m];
    for v in 0..n {
        let c = p.cluster_of(v);
        dots[c] += x[v] * d_sqrt[v];
        norms[c] += d_sqrt[v] * d_sqrt[v];
    }
    let mut proj = 0.0;
    for c in 0..m {
        if norms[c] > 0.0 {
            proj += dots[c] * dots[c] / norms[c];
        }
    }
    proj
}

/// One row of a Theorem 4.1 check.
#[derive(Debug, Clone, Copy)]
pub struct PortraitRow {
    /// Eigenvalue `λ` of the checked eigenvector.
    pub lambda: f64,
    /// Measured alignment `(xᵀz)² = ‖proj‖²`.
    pub alignment: f64,
    /// The theorem's lower bound `1 − 3λ(1 + 2/(γφ²))` (may be negative —
    /// then the bound is vacuous).
    pub bound: f64,
}

/// Evaluates Theorem 4.1 for each of the given eigenpairs against the
/// decomposition `p` with measured parameters `phi` and `gamma`.
pub fn portrait_check(
    g: &Graph,
    p: &Partition,
    eigenvalues: &[f64],
    eigenvectors: &[Vec<f64>],
    phi: f64,
    gamma: f64,
) -> Vec<PortraitRow> {
    assert_eq!(eigenvalues.len(), eigenvectors.len());
    let d_sqrt: Vec<f64> = g.volumes().iter().map(|&d| d.sqrt()).collect();
    eigenvalues
        .iter()
        .zip(eigenvectors)
        .map(|(&lambda, x)| {
            let nrm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
            let unit: Vec<f64> = x.iter().map(|a| a / nrm).collect();
            let alignment = portrait_projection(&unit, &d_sqrt, p);
            let bound = 1.0 - 3.0 * lambda * (1.0 + 2.0 / (gamma * phi * phi));
            PortraitRow {
                lambda,
                alignment,
                bound,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalized::normalized_eigenpairs_dense;

    /// Two K6 bells joined by a light edge; the natural 2-clustering.
    fn dumbbell(bridge: f64) -> (Graph, Partition) {
        let k = 6;
        let mut edges = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j, 1.0));
                edges.push((k + i, k + j, 1.0));
            }
        }
        edges.push((0, k, bridge));
        let g = Graph::from_edges(2 * k, &edges);
        let assignment: Vec<u32> = (0..2 * k).map(|v| (v >= k) as u32).collect();
        (g, Partition::from_assignment(assignment, 2))
    }

    #[test]
    fn projection_of_subspace_vector_is_full() {
        // x = D^{1/2} R c lies in the subspace: projection = ‖x‖².
        let (g, p) = dumbbell(0.01);
        let d_sqrt: Vec<f64> = g.volumes().iter().map(|&d| d.sqrt()).collect();
        let x: Vec<f64> = (0..12)
            .map(|v| d_sqrt[v] * if v < 6 { 2.0 } else { -1.0 })
            .collect();
        let norm_sq: f64 = x.iter().map(|a| a * a).sum();
        let proj = portrait_projection(&x, &d_sqrt, &p);
        assert!((proj - norm_sq).abs() < 1e-9 * norm_sq);
    }

    #[test]
    fn projection_of_orthogonal_vector_is_zero() {
        let (g, p) = dumbbell(0.01);
        let d_sqrt: Vec<f64> = g.volumes().iter().map(|&d| d.sqrt()).collect();
        // A vector D^{1/2}-orthogonal to cluster indicators within cluster 0.
        let mut x = vec![0.0; 12];
        x[0] = d_sqrt[1];
        x[1] = -d_sqrt[0];
        let proj = portrait_projection(&x, &d_sqrt, &p);
        assert!(proj.abs() < 1e-12);
    }

    #[test]
    fn theorem_4_1_on_dumbbell() {
        let (g, p) = dumbbell(0.01);
        let q = p.quality(&g, 20);
        assert!(q.phi_exact);
        let (vals, vecs) = normalized_eigenpairs_dense(&g);
        // Check the two lowest eigenvectors (kernel + Fiedler).
        let rows = portrait_check(&g, &p, &vals[..2], &vecs[..2], q.phi, q.gamma);
        for row in &rows {
            assert!(
                row.alignment >= row.bound - 1e-9,
                "Theorem 4.1 violated: alignment {} < bound {} at λ={}",
                row.alignment,
                row.bound,
                row.lambda
            );
        }
        // The Fiedler vector of a strongly clustered graph should be almost
        // entirely inside the cluster subspace AND the bound non-vacuous.
        assert!(rows[1].bound > 0.5, "bound too weak: {}", rows[1].bound);
        assert!(rows[1].alignment > 0.95, "alignment {}", rows[1].alignment);
    }

    #[test]
    fn theorem_4_1_across_spectrum() {
        // All eigenvectors must satisfy the inequality (vacuous or not).
        let (g, p) = dumbbell(0.05);
        let q = p.quality(&g, 20);
        let (vals, vecs) = normalized_eigenpairs_dense(&g);
        let rows = portrait_check(&g, &p, &vals, &vecs, q.phi, q.gamma);
        for row in rows {
            assert!(row.alignment >= row.bound - 1e-9);
            assert!(row.alignment <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn tighter_bridge_means_tighter_alignment() {
        let (g1, p1) = dumbbell(0.001);
        let (g2, p2) = dumbbell(0.3);
        let (v1, e1) = normalized_eigenpairs_dense(&g1);
        let (v2, e2) = normalized_eigenpairs_dense(&g2);
        let q1 = p1.quality(&g1, 20);
        let q2 = p2.quality(&g2, 20);
        let r1 = portrait_check(&g1, &p1, &v1[1..2], &e1[1..2], q1.phi, q1.gamma);
        let r2 = portrait_check(&g2, &p2, &v2[1..2], &e2[1..2], q2.phi, q2.gamma);
        assert!(r1[0].alignment >= r2[0].alignment - 1e-9);
    }

    use hicond_graph::Graph;
}
