//! A spectral portrait of (φ, γ) decompositions — paper Section 4.
//!
//! The paper's Section 4 connects the low-frequency eigenvectors of the
//! normalized Laplacian `Â = D^{-1/2} A D^{-1/2}` with the cluster
//! structure of a `(φ, γ)` decomposition: Theorem 4.1 shows every unit
//! vector in the span of eigenvectors with eigenvalues below `λᵢ` has a
//! projection of squared norm at least `1 − 3λᵢ(1 + 2/(γφ²))` onto
//! `Range(D^{1/2} R)` — the cluster-wise constant vectors scaled by the
//! square roots of the vertex volumes.
//!
//! * [`normalized`] — the normalized Laplacian as an operator with exact
//!   (dense) and iterative (Lanczos) eigenpairs;
//! * [`randwalk`] — random-walk transition powers and distribution
//!   mixtures `Pᵗ w`, computable in `O(t·m)` as the paper emphasizes;
//! * [`portrait`] — the Theorem 4.1 projection machinery and bound checks;
//! * [`clustering`] — the "anticipated application": a practical spectral /
//!   random-walk embedding clustering heuristic seeded by the portrait.

pub mod clustering;
pub mod local;
pub mod normalized;
pub mod portrait;
pub mod randwalk;

pub use clustering::{
    embedding_kmeans, spectral_clustering, walk_mixture_clustering, SpectralClusteringOptions,
    WalkClusteringOptions,
};
pub use local::{local_cluster, LocalCluster, LocalClusterOptions};
pub use normalized::{
    normalized_eigenpairs_dense, normalized_eigenpairs_lanczos, NormalizedLaplacian,
};
pub use portrait::{portrait_check, portrait_projection, PortraitRow};
pub use randwalk::{random_walk_mixture, stationary_distribution, walk_alignment};
