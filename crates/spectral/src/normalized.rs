//! The normalized Laplacian `Â = D^{-1/2} A D^{-1/2}` as an operator.

use hicond_graph::{laplacian, normalized_laplacian_scaling, Graph};
use hicond_linalg::dense::jacobi_eigen;
use hicond_linalg::lanczos::{lanczos_extreme, LanczosOptions, SpectrumEnd};
use hicond_linalg::ops::{DiagonalCongruence, LinearOperator};
use hicond_linalg::CsrMatrix;

/// Owned normalized-Laplacian operator for a graph.
pub struct NormalizedLaplacian {
    lap: CsrMatrix,
    /// `d_v` (volumes).
    pub d: Vec<f64>,
    /// `d_v^{-1/2}` (0 for isolated vertices).
    pub d_inv_sqrt: Vec<f64>,
    /// `d_v^{1/2}`.
    pub d_sqrt: Vec<f64>,
}

impl NormalizedLaplacian {
    /// Builds from a graph.
    pub fn new(g: &Graph) -> Self {
        let lap = laplacian(g);
        let (d, d_inv_sqrt, d_sqrt) = normalized_laplacian_scaling(g);
        NormalizedLaplacian {
            lap,
            d,
            d_inv_sqrt,
            d_sqrt,
        }
    }
}

impl LinearOperator for NormalizedLaplacian {
    fn dim(&self) -> usize {
        self.lap.nrows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        let op = DiagonalCongruence::new(&self.lap, &self.d_inv_sqrt);
        op.apply_into(x, y);
    }
}

/// Exact eigenpairs of `Â` (ascending) by dense Jacobi. O(n³); for
/// verification-scale graphs.
pub fn normalized_eigenpairs_dense(g: &Graph) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = g.num_vertices();
    let norm = NormalizedLaplacian::new(g);
    let mut dense = norm.lap.to_dense();
    for i in 0..n {
        for j in 0..n {
            dense[(i, j)] *= norm.d_inv_sqrt[i] * norm.d_inv_sqrt[j];
        }
    }
    let (vals, vecs) = jacobi_eigen(&dense);
    let cols = (0..n)
        .map(|k| (0..n).map(|r| vecs[(r, k)]).collect())
        .collect();
    (vals, cols)
}

/// The lowest `k` *nonzero-frequency* eigenpairs of `Â` by Lanczos with the
/// kernel direction `D^{1/2}·1` deflated (per connected component this is
/// only exact for connected graphs; pass connected inputs).
pub fn normalized_eigenpairs_lanczos(g: &Graph, k: usize, tol: f64) -> (Vec<f64>, Vec<Vec<f64>>) {
    let norm = NormalizedLaplacian::new(g);
    let res = lanczos_extreme(
        &norm,
        &LanczosOptions {
            num_pairs: k,
            which: SpectrumEnd::Smallest,
            deflate: vec![norm.d_sqrt.clone()],
            max_subspace: (8 * k + 60).min(g.num_vertices()),
            tol,
            ..Default::default()
        },
    );
    (res.eigenvalues, res.eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;

    #[test]
    fn spectrum_in_unit_range() {
        let g = generators::triangulated_grid(5, 5, 1);
        let (vals, _) = normalized_eigenpairs_dense(&g);
        assert!(vals[0].abs() < 1e-9, "kernel eigenvalue {}", vals[0]);
        for v in &vals {
            assert!(*v >= -1e-9 && *v <= 2.0 + 1e-9);
        }
    }

    #[test]
    fn complete_graph_spectrum() {
        // Â of K_n has eigenvalues 0 and n/(n-1) (multiplicity n-1).
        let n = 6;
        let g = generators::complete(n, 1.0);
        let (vals, _) = normalized_eigenpairs_dense(&g);
        assert!(vals[0].abs() < 1e-9);
        for v in &vals[1..] {
            assert!((*v - n as f64 / (n as f64 - 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn lanczos_matches_dense_low_end() {
        let g = generators::grid2d(6, 5, |u, v| 1.0 + ((u + v) % 3) as f64);
        let (dense_vals, _) = normalized_eigenpairs_dense(&g);
        let (lan_vals, lan_vecs) = normalized_eigenpairs_lanczos(&g, 3, 1e-9);
        for (k, lam) in lan_vals.iter().enumerate() {
            // dense_vals[0] ~ 0 is the kernel; Lanczos deflated it.
            assert!(
                (lam - dense_vals[k + 1]).abs() < 1e-6,
                "pair {k}: {lam} vs {}",
                dense_vals[k + 1]
            );
        }
        // Eigenvectors D^{1/2}-orthogonal to the kernel.
        let norm = NormalizedLaplacian::new(&g);
        for v in &lan_vecs {
            let dot: f64 = v.iter().zip(&norm.d_sqrt).map(|(a, b)| a * b).sum();
            assert!(dot.abs() < 1e-7);
        }
    }

    #[test]
    fn eigenvalue_residuals() {
        let g = generators::cycle(14, |i| 1.0 + (i % 2) as f64);
        let norm = NormalizedLaplacian::new(&g);
        let (vals, vecs) = normalized_eigenpairs_dense(&g);
        for k in [1, 3, 7] {
            let av = norm.apply(&vecs[k]);
            for i in 0..14 {
                assert!((av[i] - vals[k] * vecs[k][i]).abs() < 1e-8);
            }
        }
    }
}
