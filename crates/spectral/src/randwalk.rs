//! Random walks and distribution mixtures (Section 4's opening).
//!
//! The transition matrix is `P = I − A D⁻¹` (paper notation): column `i` of
//! `Pᵗ` is the distribution of a `t`-step walk from vertex `i`. Computing a
//! single `Pᵗ eᵢ` already costs `t` matvecs, but so does *any mixture*
//! `Σᵢ wᵢ Pᵗ eᵢ = Pᵗ w` — "this can be done in time linear in t and the
//! number of edges in the graph", which is the paper's motivation for the
//! global spectral view.

use hicond_graph::Graph;

/// One step of the walk: `w ← P w = w − A(D⁻¹ w)`.
///
/// Equivalent formulation: mass at `v` redistributes to neighbors
/// proportionally to edge weights (no laziness).
pub fn walk_step(g: &Graph, w: &[f64]) -> Vec<f64> {
    let n = g.num_vertices();
    assert_eq!(w.len(), n);
    let mut out = vec![0.0; n];
    for v in 0..n {
        let dv = g.vol(v);
        if dv <= 0.0 {
            out[v] += w[v]; // isolated mass stays put
            continue;
        }
        let share = w[v] / dv;
        for (u, wt, _) in g.neighbors(v) {
            out[u] += share * wt;
        }
    }
    out
}

/// `Pᵗ w` for an arbitrary mixture `w`, in `O(t·m)` time.
pub fn random_walk_mixture(g: &Graph, w: &[f64], t: usize) -> Vec<f64> {
    let mut cur = w.to_vec();
    for _ in 0..t {
        cur = walk_step(g, &cur);
    }
    cur
}

/// The stationary distribution `π(v) = vol(v)/vol(V)` of the walk on a
/// connected non-bipartite graph.
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    let total = g.total_volume();
    assert!(total > 0.0, "graph has no edges");
    (0..g.num_vertices()).map(|v| g.vol(v) / total).collect()
}

/// Section 4's "global question" made quantitative: how does the mixture
/// `Pᵗ w` look in terms of the clusters of a decomposition?
///
/// Maps the distribution `q = Pᵗ w` to the normalized-Laplacian coordinate
/// `x = D^{-1/2} q` (eigenvectors of `P` are `D^{1/2}`-scalings of `Â`'s)
/// and returns the squared cosine of `x` against `Range(D^{1/2} R)` — the
/// cluster-wise constant subspace of Theorem 4.1. Values near 1 mean the
/// walk has mixed *within* clusters but not across them.
pub fn walk_alignment(g: &Graph, p: &hicond_graph::Partition, w: &[f64], t: usize) -> f64 {
    let q = random_walk_mixture(g, w, t);
    let x: Vec<f64> = (0..g.num_vertices())
        .map(|v| {
            let d = g.vol(v);
            if d > 0.0 {
                q[v] / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let norm_sq: f64 = x.iter().map(|a| a * a).sum();
    if norm_sq <= 0.0 {
        return 0.0;
    }
    let d_sqrt: Vec<f64> = g.volumes().iter().map(|&d| d.sqrt()).collect();
    crate::portrait::portrait_projection(&x, &d_sqrt, p) / norm_sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;

    #[test]
    fn mass_conserved() {
        let g = generators::triangulated_grid(5, 5, 3);
        let n = g.num_vertices();
        let mut w = vec![0.0; n];
        w[7] = 1.0;
        let out = random_walk_mixture(&g, &w, 13);
        let total: f64 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn stationary_is_fixed_point() {
        let g = generators::complete(6, 1.0);
        let pi = stationary_distribution(&g);
        let out = walk_step(&g, &pi);
        for (a, b) in out.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn convergence_to_stationary_nonbipartite() {
        // Triangle-rich graph converges to π.
        let g = generators::complete(5, 1.0);
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        let out = random_walk_mixture(&g, &w, 60);
        let pi = stationary_distribution(&g);
        for (a, b) in out.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn walk_trapped_in_high_conductance_cluster() {
        // Dumbbell: two K5's joined by one light edge. A short walk from
        // inside one bell keeps almost all mass there (the paper's
        // 'trapped particle' intuition).
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j, 1.0));
                edges.push((5 + i, 5 + j, 1.0));
            }
        }
        edges.push((0, 5, 0.01));
        let g = Graph::from_edges(10, &edges);
        let mut w = vec![0.0; 10];
        w[2] = 1.0;
        let out = random_walk_mixture(&g, &w, 8);
        let left: f64 = out[..5].iter().sum();
        assert!(left > 0.95, "mass leaked: left = {left}");
    }

    #[test]
    fn walk_alignment_grows_with_t_on_clustered_graph() {
        use hicond_graph::Partition;
        // Dumbbell of two K5: walk from one vertex aligns with the
        // 2-cluster subspace as t grows.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j, 1.0));
                edges.push((5 + i, 5 + j, 1.0));
            }
        }
        edges.push((0, 5, 0.01));
        let g = Graph::from_edges(10, &edges);
        let p = Partition::from_assignment((0..10).map(|v| (v >= 5) as u32).collect(), 2);
        let mut w = vec![0.0; 10];
        w[2] = 1.0;
        let a0 = walk_alignment(&g, &p, &w, 0);
        let a5 = walk_alignment(&g, &p, &w, 5);
        let a30 = walk_alignment(&g, &p, &w, 30);
        assert!(a5 > a0, "a5 {a5} <= a0 {a0}");
        assert!(a30 > 0.999, "a30 {a30}");
    }

    #[test]
    fn mixture_linearity() {
        // P^t(a·u + b·v) = a·P^t u + b·P^t v.
        let g = generators::cycle(9, |_| 1.0);
        let u: Vec<f64> = (0..9).map(|i| (i as f64).sin()).collect();
        let v: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let mix: Vec<f64> = u.iter().zip(&v).map(|(a, b)| 2.0 * a - 3.0 * b).collect();
        let lhs = random_walk_mixture(&g, &mix, 5);
        let pu = random_walk_mixture(&g, &u, 5);
        let pv = random_walk_mixture(&g, &v, 5);
        for i in 0..9 {
            assert!((lhs[i] - (2.0 * pu[i] - 3.0 * pv[i])).abs() < 1e-12);
        }
    }

    use hicond_graph::Graph;
}
