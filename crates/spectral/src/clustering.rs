//! Spectral / random-walk clustering — the paper's anticipated application
//! ("we anticipate that this characterization may find applications in the
//! practical computation of (φ, γ) decompositions for general graphs").
//!
//! Theorem 4.1 says low eigenvectors of `Â` live near `Range(D^{1/2}R)`,
//! so the rows of `D^{-1/2}·[x₁ … x_k]` are nearly cluster-wise constant:
//! embedding vertices by those rows and running a small k-means recovers
//! the decomposition when it is strong. [`spectral_clustering`] implements
//! exactly that.

use crate::normalized::{normalized_eigenpairs_dense, normalized_eigenpairs_lanczos};
use hicond_graph::{Graph, Partition};

/// Options for [`spectral_clustering`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralClusteringOptions {
    /// Number of clusters `k`.
    pub k: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// k-means++-lite seeding and tie-breaking seed.
    pub seed: u64,
    /// Use the dense eigensolver below this size (exact), Lanczos above.
    pub dense_limit: usize,
}

impl Default for SpectralClusteringOptions {
    fn default() -> Self {
        SpectralClusteringOptions {
            k: 2,
            kmeans_iters: 40,
            seed: 3,
            dense_limit: 200,
        }
    }
}

/// Plain Lloyd k-means on points of dimension `dim`, deterministic in
/// `seed` (greedy farthest-point init from a seeded start).
pub fn embedding_kmeans(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> Vec<u32> {
    let n = points.len();
    assert!(k >= 1 && k <= n, "k out of range");
    let dim = points[0].len();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
    // Farthest-point seeding from a seed-derived start.
    let mut centers: Vec<Vec<f64>> = vec![points[(seed as usize) % n].clone()];
    while centers.len() < k {
        // Manual scan instead of max_by(partial_cmp): no panic path, and
        // `>=` keeps the last maximum, matching Iterator::max_by exactly.
        let mut far = 0usize;
        let mut far_d = f64::NEG_INFINITY;
        for v in 0..n {
            let d: f64 = centers
                .iter()
                .map(|c| dist2(&points[v], c))
                .fold(f64::MAX, f64::min);
            if d >= far_d {
                far_d = d;
                far = v;
            }
        }
        centers.push(points[far].clone());
    }
    let mut assign = vec![0u32; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, pt) in points.iter().enumerate() {
            // Strict `<` keeps the first minimum, matching Iterator::min_by.
            let mut best_c = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(pt, center);
                if d < best_d {
                    best_d = d;
                    best_c = c;
                }
            }
            let best = best_c as u32;
            if best != assign[i] {
                assign[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, pt) in points.iter().enumerate() {
            let c = assign[i] as usize;
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(pt) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            }
        }
    }
    assign
}

/// Spectral clustering into `k` parts via the `k` lowest nonzero
/// eigenvectors of `Â`, embedded as `D^{-1/2} x` rows.
pub fn spectral_clustering(g: &Graph, opts: &SpectralClusteringOptions) -> Partition {
    let n = g.num_vertices();
    let k = opts.k;
    // k−1 nonzero-frequency eigenvectors carry the k-way structure (the
    // kernel direction is cluster-constant already); using more mixes in
    // within-cluster oscillation.
    let dims = (k - 1).max(1);
    let vecs = if n <= opts.dense_limit {
        let (v, e) = normalized_eigenpairs_dense(g);
        // Skip the kernel eigenvector(s) ~ 0.
        let start = v.iter().position(|&x| x > 1e-9).unwrap_or(1);
        e[start..(start + dims).min(n)].to_vec()
    } else {
        normalized_eigenpairs_lanczos(g, dims, 1e-7).1
    };
    let d_inv_sqrt: Vec<f64> = g
        .volumes()
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|v| vecs.iter().map(|x| x[v] * d_inv_sqrt[v]).collect())
        .collect();
    let assign = embedding_kmeans(&points, k, opts.kmeans_iters, opts.seed);
    Partition::from_assignment(assign, k).compact()
}

/// Options for [`walk_mixture_clustering`].
#[derive(Debug, Clone, Copy)]
pub struct WalkClusteringOptions {
    /// Number of clusters `k`.
    pub k: usize,
    /// Number of independent mixtures (embedding dimension); the paper's
    /// `O(log n)`-ish handful.
    pub num_mixtures: usize,
    /// Walk length `t` per mixture.
    pub steps: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
    /// Seed for mixtures and k-means.
    pub seed: u64,
}

impl Default for WalkClusteringOptions {
    fn default() -> Self {
        WalkClusteringOptions {
            k: 2,
            num_mixtures: 6,
            steps: 10,
            kmeans_iters: 40,
            seed: 5,
        }
    }
}

/// Clustering from random-walk *distribution mixtures* — the paper's
/// Section 4 proposal made concrete. Instead of eigenvectors (one global
/// eigensolve each), embed every vertex by a handful of mixtures
/// `Pᵗ w₁, …, Pᵗ w_r` with random `wᵢ` (each costs `t` matvecs — "time
/// linear in t and the number of edges"), degree-normalize, and k-means.
/// By Theorem 4.1 the mixtures concentrate near `Range(D^{1/2}R)`, so the
/// embedding is nearly cluster-wise constant when the decomposition is
/// strong.
pub fn walk_mixture_clustering(g: &Graph, opts: &WalkClusteringOptions) -> Partition {
    use crate::randwalk::random_walk_mixture;
    let n = g.num_vertices();
    // Deterministic pseudo-random ±1 mixtures, deflated against the
    // stationary direction so the kernel does not swamp the signal.
    let mut embeddings: Vec<Vec<f64>> = Vec::with_capacity(opts.num_mixtures);
    for m in 0..opts.num_mixtures {
        let mut w: Vec<f64> = (0..n)
            .map(|v| {
                let h = (v as u64)
                    .wrapping_add(opts.seed.wrapping_mul(0x9E3779B97F4A7C15))
                    .wrapping_add(m as u64)
                    .wrapping_mul(0xBF58476D1CE4E5B9);
                if (h >> 33) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        // Remove the stationary component: subtract vol-weighted mean.
        let total_vol = g.total_volume();
        if total_vol > 0.0 {
            let coeff: f64 = w.iter().sum::<f64>() / total_vol;
            for (v, wv) in w.iter_mut().enumerate() {
                *wv -= coeff * g.vol(v);
            }
        }
        let q = random_walk_mixture(g, &w, opts.steps);
        // Degree-normalize: cluster-wise ~constant coordinates.
        let coords: Vec<f64> = (0..n)
            .map(|v| {
                let d = g.vol(v);
                if d > 0.0 {
                    q[v] / d
                } else {
                    0.0
                }
            })
            .collect();
        embeddings.push(coords);
    }
    let points: Vec<Vec<f64>> = (0..n)
        .map(|v| embeddings.iter().map(|e| e[v]).collect())
        .collect();
    let assign = embedding_kmeans(&points, opts.k, opts.kmeans_iters, opts.seed);
    Partition::from_assignment(assign, opts.k).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted_blocks(k: usize, size: usize, p_bridge: f64) -> (Graph, Vec<u32>) {
        // k cliques of `size`, chained by light bridges.
        let n = k * size;
        let mut edges = Vec::new();
        for b in 0..k {
            for i in 0..size {
                for j in (i + 1)..size {
                    edges.push((b * size + i, b * size + j, 1.0));
                }
            }
        }
        for b in 0..k - 1 {
            edges.push((b * size, (b + 1) * size, p_bridge));
        }
        let truth: Vec<u32> = (0..n).map(|v| (v / size) as u32).collect();
        (Graph::from_edges(n, &edges), truth)
    }

    fn agreement(a: &[u32], b: &[u32], k: usize) -> f64 {
        // Best-permutation agreement for small k by brute force.
        let n = a.len();
        let perms: Vec<Vec<u32>> = permutations(k as u32);
        let mut best = 0usize;
        for perm in &perms {
            let matches = (0..n).filter(|&i| perm[a[i] as usize] == b[i]).count();
            best = best.max(matches);
        }
        best as f64 / n as f64
    }

    fn permutations(k: u32) -> Vec<Vec<u32>> {
        if k == 1 {
            return vec![vec![0]];
        }
        let smaller = permutations(k - 1);
        let mut out = Vec::new();
        for p in smaller {
            for pos in 0..=p.len() {
                let mut q = p.clone();
                q.insert(pos, k - 1);
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn recovers_two_blocks() {
        let (g, truth) = planted_blocks(2, 8, 0.01);
        let p = spectral_clustering(
            &g,
            &SpectralClusteringOptions {
                k: 2,
                ..Default::default()
            },
        );
        let acc = agreement(p.assignment(), &truth, 2);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn recovers_three_blocks() {
        let (g, truth) = planted_blocks(3, 7, 0.02);
        let p = spectral_clustering(
            &g,
            &SpectralClusteringOptions {
                k: 3,
                ..Default::default()
            },
        );
        let acc = agreement(p.assignment(), &truth, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn clusters_have_high_conductance_closures() {
        // The recovered decomposition of a strongly clustered graph should
        // itself be a good (φ, γ) decomposition.
        let (g, _) = planted_blocks(2, 8, 0.01);
        let p = spectral_clustering(
            &g,
            &SpectralClusteringOptions {
                k: 2,
                ..Default::default()
            },
        );
        let q = p.quality(&g, 20);
        assert!(q.phi > 0.5, "phi {}", q.phi);
        assert!(q.gamma > 0.5, "gamma {}", q.gamma);
    }

    #[test]
    fn walk_mixture_recovers_two_blocks() {
        let (g, truth) = planted_blocks(2, 8, 0.01);
        let p = walk_mixture_clustering(
            &g,
            &WalkClusteringOptions {
                k: 2,
                ..Default::default()
            },
        );
        let acc = agreement(p.assignment(), &truth, 2);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn walk_mixture_recovers_three_blocks() {
        let (g, truth) = planted_blocks(3, 8, 0.01);
        let p = walk_mixture_clustering(
            &g,
            &WalkClusteringOptions {
                k: 3,
                num_mixtures: 8,
                steps: 14,
                ..Default::default()
            },
        );
        let acc = agreement(p.assignment(), &truth, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn walk_mixture_matches_eigen_route_quality() {
        // Both routes should produce low-cut decompositions on a strongly
        // clustered graph; the walk route uses only matvecs.
        let (g, _) = planted_blocks(2, 10, 0.02);
        let eig = spectral_clustering(
            &g,
            &SpectralClusteringOptions {
                k: 2,
                ..Default::default()
            },
        );
        let walk = walk_mixture_clustering(
            &g,
            &WalkClusteringOptions {
                k: 2,
                ..Default::default()
            },
        );
        let qe = eig.quality(&g, 14);
        let qw = walk.quality(&g, 14);
        assert!(
            qw.cut_fraction <= 2.0 * qe.cut_fraction + 0.05,
            "walk {} vs eigen {}",
            qw.cut_fraction,
            qe.cut_fraction
        );
    }

    #[test]
    fn kmeans_separates_obvious_points() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let assign = embedding_kmeans(&points, 2, 20, 1);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[0], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_ne!(assign[0], assign[3]);
    }

    use hicond_graph::Graph;
}
