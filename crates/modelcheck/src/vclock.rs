//! Vector clocks for happens-before tracking.
//!
//! Every model thread carries a [`VClock`]; component `i` counts the
//! operations thread `i` has executed that this thread has (transitively)
//! observed. An event `a` happens-before an event `b` exactly when the
//! clock snapshot taken at `a` is component-wise `<=` the clock of the
//! thread executing `b`. Clocks grow lazily: a component that was never
//! written reads as zero, so freshly spawned threads need no global
//! resizing pass.

/// A grow-on-demand vector clock. Component `i` is thread `i`'s count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    t: Vec<u32>,
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self { t: Vec::new() }
    }

    /// Component for `tid` (zero if never set).
    pub fn get(&self, tid: usize) -> u32 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    fn ensure(&mut self, tid: usize) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
    }

    /// Increments this thread's own component.
    pub fn tick(&mut self, tid: usize) {
        self.ensure(tid);
        self.t[tid] += 1;
    }

    /// Component-wise maximum (observing everything `other` observed).
    pub fn join(&mut self, other: &VClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }

    /// `true` iff `self` is component-wise `<=` `other` (happens-before,
    /// when `self` is an event snapshot and `other` a thread clock).
    pub fn le(&self, other: &VClock) -> bool {
        self.t.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut c = a.clone();
        c.join(&b);
        assert!(a.le(&c));
        assert!(b.le(&c));
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
    }

    #[test]
    fn zero_le_everything() {
        let z = VClock::new();
        let mut a = VClock::new();
        a.tick(3);
        assert!(z.le(&a));
        assert!(z.le(&z));
        assert_eq!(z.get(7), 0);
    }
}
