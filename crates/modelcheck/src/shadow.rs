//! Shadow synchronization types.
//!
//! Drop-in replacements for `std::sync::atomic::*`, `std::sync::Mutex`
//! and `std::sync::Condvar` that participate in model exploration when
//! the calling thread is inside [`crate::explore`], and pass straight
//! through to the underlying std primitive otherwise. The `sync` facade
//! modules in `crates/obs` and `vendor/rayon` re-export these under the
//! `model` cargo feature, so the production sources are compiled
//! unchanged in both worlds.
//!
//! Identity is by address: the engine registers each primitive the first
//! time a modeled operation touches it, reading the initial value from
//! the inner std atomic (which modeled executions never write, so it
//! still holds the constructor value). A primitive must stay alive for
//! the whole execution — models keep their shared state in `Arc`s or
//! statics, which satisfies this naturally.

use std::mem::ManuallyDrop;
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

use crate::engine::{self, RmwKind};

macro_rules! shadow_atomic {
    ($name:ident, $prim:ty, $std:ty, $doc:expr) => {
        #[doc = $doc]
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            #[inline]
            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Constructor value: modeled executions never write the
            /// inner atomic, so it still holds the initial value.
            #[inline]
            fn init(&self) -> u64 {
                self.inner.load(Ordering::Relaxed) as u64
            }

            #[inline]
            pub fn load(&self, ord: Ordering) -> $prim {
                match engine::model_load(self.addr(), self.init(), ord) {
                    Some(v) => v as $prim,
                    None => self.inner.load(ord),
                }
            }

            #[inline]
            pub fn store(&self, val: $prim, ord: Ordering) {
                if engine::model_store(self.addr(), self.init(), val as u64, ord).is_none() {
                    self.inner.store(val, ord);
                }
            }

            #[inline]
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Swap, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.swap(val, ord),
                }
            }

            #[inline]
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Add, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_add(val, ord),
                }
            }

            #[inline]
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Sub, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_sub(val, ord),
                }
            }

            #[inline]
            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Or, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_or(val, ord),
                }
            }

            #[inline]
            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::And, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_and(val, ord),
                }
            }

            #[inline]
            pub fn fetch_xor(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Xor, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_xor(val, ord),
                }
            }

            #[inline]
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Max, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_max(val, ord),
                }
            }

            #[inline]
            pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                match engine::model_rmw(self.addr(), self.init(), RmwKind::Min, val as u64, ord) {
                    Some(v) => v as $prim,
                    None => self.inner.fetch_min(val, ord),
                }
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match engine::model_cas(
                    self.addr(),
                    self.init(),
                    current as u64,
                    new as u64,
                    success,
                    failure,
                ) {
                    Some(Ok(v)) => Ok(v as $prim),
                    Some(Err(v)) => Err(v as $prim),
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }

            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // Modeled as the strong variant: spurious failure adds no
                // behaviors the strong CAS misses in this memory model.
                self.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                // Exclusive access: no concurrency to model.
                self.inner.get_mut()
            }

            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

shadow_atomic!(
    AtomicU8,
    u8,
    std::sync::atomic::AtomicU8,
    "Shadow of `std::sync::atomic::AtomicU8` (see module docs)."
);
shadow_atomic!(
    AtomicU32,
    u32,
    std::sync::atomic::AtomicU32,
    "Shadow of `std::sync::atomic::AtomicU32` (see module docs)."
);
shadow_atomic!(
    AtomicU64,
    u64,
    std::sync::atomic::AtomicU64,
    "Shadow of `std::sync::atomic::AtomicU64` (see module docs)."
);
shadow_atomic!(
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize,
    "Shadow of `std::sync::atomic::AtomicUsize` (see module docs)."
);

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Shadow of `std::sync::Mutex`. In a model execution, lock acquisition
/// goes through the scheduler (so lock-based interleavings are explored
/// and deadlocks detected) and the real inner mutex is then taken
/// uncontended; outside a model it is the plain std mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases the model lock (when modeled) and the
/// inner std lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    modeled: bool,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let modeled = engine::model_lock(self.addr());
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(g),
                modeled,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(p.into_inner()),
                modeled,
            })),
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        // Exclusive access: no concurrency to model.
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is taken exactly once — either here or in
        // `Condvar::wait`, which forgets the guard before rebuilding it.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.modeled {
            engine::model_unlock(self.lock.addr());
        }
    }
}

/// Shadow of `std::sync::Condvar`. In a model execution, waiting releases
/// the model lock and parks in the scheduler until a modeled notify
/// re-arms the thread as a lock re-acquire; lost wakeups therefore show
/// up as modeled deadlocks.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let modeled = guard.modeled;
        // SAFETY: the std guard is moved out exactly once; `guard` is
        // forgotten immediately after so its Drop cannot double-release.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        if modeled {
            drop(std_guard);
            engine::model_cv_wait(self.addr(), lock.addr());
            // The model re-acquired the lock for us; take the inner std
            // mutex (uncontended up to the physical release window of the
            // previous holder) and rebuild the guard.
            // analyze: allow(lock-order) — re-acquisition after a modeled
            // cv wait: the engine's scheduler has already granted this
            // thread the modeled lock, so ordering is enforced there, not
            // by this physical mutex; the apparent wait-within-lock
            // self-cycle is the cv protocol itself.
            let g = match lock.inner.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            Ok(MutexGuard {
                lock,
                inner: ManuallyDrop::new(g),
                modeled,
            })
        } else {
            match self.inner.wait(std_guard) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: ManuallyDrop::new(g),
                    modeled,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: ManuallyDrop::new(p.into_inner()),
                    modeled,
                })),
            }
        }
    }

    pub fn notify_one(&self) {
        if !engine::model_cv_notify(self.addr(), false) {
            self.inner.notify_one();
        }
    }

    pub fn notify_all(&self) {
        if !engine::model_cv_notify(self.addr(), true) {
            self.inner.notify_all();
        }
    }
}
