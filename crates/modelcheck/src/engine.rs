//! The exploration engine: deterministic scheduler, DFS over the schedule
//! tree with dynamic partial-order reduction, and a small axiomatic memory
//! model (per-variable store histories with release/acquire synchronization
//! clocks).
//!
//! ## Execution architecture
//!
//! Model threads are real OS threads (reused "runner" threads), but only
//! one ever runs user code at a time. Every shadow operation goes through
//! an announce/grant handshake on a single shared mutex:
//!
//! 1. the thread announces its pending operation and parks on a condvar;
//! 2. the explorer, once every live thread has announced, picks the next
//!    thread (a *schedule decision*) and grants it;
//! 3. the granted thread executes the operation's effect on the model
//!    state under the lock, then keeps running user code until its next
//!    operation.
//!
//! The sequence of decisions forms a path in a DFS tree kept in
//! [`Engine::stack`]. After each execution the deepest decision with an
//! untried alternative is advanced and the prefix is replayed. Schedule
//! decisions carry DPOR backtrack sets (Flanagan–Godefroid): when thread
//! `p` executes an operation dependent on an earlier operation of thread
//! `q`, `p` is added to the backtrack set of the decision just before
//! `q`'s operation. Value decisions (which store a relaxed load reads
//! from) are always explored exhaustively and never pruned.
//!
//! ## Failure handling
//!
//! The first failure (assertion, data race, deadlock, step budget) stops
//! the exploration. Once the abort flag is set, `perform` never blocks
//! and never unwinds: every operation takes an effect-only fast path so
//! drop-time operations of an already-unwinding thread cannot double
//! panic, and remaining threads free-run to completion. A thread that
//! reaches a condvar wait after the abort parks forever instead (its
//! runner is intentionally leaked — the process is about to report the
//! counterexample and exit). Models should therefore block on condvars
//! rather than spin on loads, so aborted executions wind down.
//!
//! ## Memory model
//!
//! Each atomic variable keeps its full modification order as a vector of
//! stores. A store records the writer's clock (`seen`) and, when it is a
//! release operation, a synchronization clock (`sync`) that acquire loads
//! join into their thread clock. Read-modify-writes always read the
//! latest store and inherit the previous store's `sync` clock, modeling
//! release sequences. A plain load may read from any store that is not
//! hidden by coherence: per-(thread, variable) floors rule out stores the
//! thread already passed, and a store is hidden when a later store's
//! `seen` clock is `<=` the reading thread's clock. `SeqCst` is treated
//! as `AcqRel` — a documented simplification; no certified protocol in
//! this workspace relies on the seqcst total order beyond RMW atomicity.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::vclock::VClock;
use crate::{Config, Counterexample, Outcome, Report};

/// Panic payload used to unwind a model thread that woke into a stale
/// epoch (defense in depth; clean executions end with every thread
/// finished, so this should never fire).
pub(crate) struct ModelAbort;

// ---------------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------------

struct Ctx {
    shared: Arc<Shared>,
    tid: usize,
    epoch: u64,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// `true` iff the calling OS thread is currently executing inside a model
/// exploration. Shadow types pass through to the real primitive when this
/// is `false`.
pub fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RmwKind {
    Add,
    Sub,
    Or,
    And,
    Xor,
    Max,
    Min,
    Swap,
}

impl RmwKind {
    fn apply(self, prev: u64, operand: u64) -> u64 {
        match self {
            RmwKind::Add => prev.wrapping_add(operand),
            RmwKind::Sub => prev.wrapping_sub(operand),
            RmwKind::Or => prev | operand,
            RmwKind::And => prev & operand,
            RmwKind::Xor => prev ^ operand,
            RmwKind::Max => prev.max(operand),
            RmwKind::Min => prev.min(operand),
            RmwKind::Swap => operand,
        }
    }

    fn name(self) -> &'static str {
        match self {
            RmwKind::Add => "fetch_add",
            RmwKind::Sub => "fetch_sub",
            RmwKind::Or => "fetch_or",
            RmwKind::And => "fetch_and",
            RmwKind::Xor => "fetch_xor",
            RmwKind::Max => "fetch_max",
            RmwKind::Min => "fetch_min",
            RmwKind::Swap => "swap",
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Op {
    Load {
        addr: usize,
        init: u64,
        acquire: bool,
    },
    Store {
        addr: usize,
        init: u64,
        val: u64,
        release: bool,
    },
    Rmw {
        addr: usize,
        init: u64,
        kind: RmwKind,
        operand: u64,
        acquire: bool,
        release: bool,
    },
    Cas {
        addr: usize,
        init: u64,
        expect: u64,
        new: u64,
        acquire: bool,
        release: bool,
        fail_acquire: bool,
    },
    CellRead {
        addr: usize,
    },
    CellWrite {
        addr: usize,
    },
    Lock {
        addr: usize,
    },
    Unlock {
        addr: usize,
    },
    CvWait {
        cv: usize,
        mutex: usize,
    },
    CvNotify {
        cv: usize,
        all: bool,
    },
    Spawn,
    Join {
        target: usize,
    },
    Finish,
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

#[derive(Debug)]
pub(crate) enum OpResult {
    Unit,
    Val(u64),
    Cas(Result<u64, u64>),
    Spawned(usize),
}

/// Object identity + access class used for the DPOR dependence relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Obj {
    Var(usize),
    Mutex(usize),
    Cv(usize),
    Cell(usize),
    Thread(usize),
    None,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Access {
    Read,
    Write,
    Sync,
    /// Mutex release. Never co-enabled with a competing operation on the
    /// same mutex (the contender's lock is blocked while the holder can
    /// release), so it creates no DPOR backtrack points — without this
    /// refinement the backward scan stops at the unlock (where only the
    /// holder is runnable) and never reaches the lock-vs-lock decision
    /// that actually reorders acquisitions (e.g. ABBA deadlocks).
    Free,
}

fn dependent(a: (Obj, Access), b: (Obj, Access)) -> bool {
    a.0 != Obj::None
        && a.0 == b.0
        && !(a.1 == Access::Read && b.1 == Access::Read)
        && a.1 != Access::Free
        && b.1 != Access::Free
}

// ---------------------------------------------------------------------------
// Model state
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Store {
    val: u64,
    /// Writer's clock at the store: used for coherence/visibility.
    seen: VClock,
    /// Release clock joined by acquire loads (release sequences included).
    sync: Option<VClock>,
}

struct VarState {
    stores: Vec<Store>,
}

struct MutexState {
    locked_by: Option<usize>,
    /// Accumulated release clock: every lock acquisition happens-after all
    /// prior unlocks of the same mutex (they are totally ordered).
    clock: VClock,
}

struct CvState {
    waiters: Vec<usize>,
}

struct CellState {
    last_write: Option<(usize, u32)>,
    reads: Vec<(usize, u32)>,
}

#[derive(Clone, Debug)]
enum TStat {
    /// Spawned but has not announced its first operation yet; the
    /// scheduler defers all decisions until no thread is `Starting`, so
    /// the enabled set is deterministic.
    Starting,
    Want(Op),
    CvWait {
        cv: usize,
        mutex: usize,
    },
    Finished,
}

struct MThread {
    stat: TStat,
    granted: bool,
    clock: VClock,
    /// Per-variable minimum modification-order index this thread may
    /// still read (coherence floor).
    floor: HashMap<usize, usize>,
}

struct Decision {
    /// `true` for a value (read-from) decision, `false` for a schedule
    /// decision.
    read: bool,
    /// Enabled thread ids (schedule) or candidate store indices (read),
    /// in deterministic ascending order.
    options: Vec<usize>,
    chosen: usize,
    explored: BTreeSet<usize>,
    /// DPOR backtrack set (schedule decisions only).
    backtrack: BTreeSet<usize>,
    /// Preemptions accumulated strictly before this decision.
    preempt_before: u32,
    /// Thread that ran the previous schedule decision (for preemption
    /// accounting).
    prev_tid: Option<usize>,
    step_tid: usize,
    step_sig: (Obj, Access),
}

struct Failure {
    kind: &'static str,
    message: String,
    trace: String,
    schedule: String,
}

enum DispatchOutcome {
    Dispatched,
    NoEnabled,
    Failed,
}

pub(crate) struct Engine {
    cfg: Config,
    // --- persistent across executions -------------------------------------
    stack: Vec<Decision>,
    schedules: u64,
    transitions: u64,
    max_depth: usize,
    max_threads: usize,
    bounded_pruned: bool,
    failure: Option<Failure>,
    epoch: u64,
    // --- per-execution ----------------------------------------------------
    cursor: usize,
    threads: Vec<MThread>,
    active: Option<usize>,
    starting: usize,
    abort: bool,
    steps: u64,
    cur_preempt: u32,
    last_sched: Option<usize>,
    vars: HashMap<usize, usize>,
    var_states: Vec<VarState>,
    mutexes: HashMap<usize, usize>,
    mutex_states: Vec<MutexState>,
    cvs: HashMap<usize, usize>,
    cv_states: Vec<CvState>,
    cells: HashMap<usize, usize>,
    cell_states: Vec<CellState>,
    trace: Vec<(usize, String)>,
}

impl Engine {
    fn new(cfg: Config) -> Self {
        Engine {
            cfg,
            stack: Vec::new(),
            schedules: 0,
            transitions: 0,
            max_depth: 0,
            max_threads: 0,
            bounded_pruned: false,
            failure: None,
            epoch: 0,
            cursor: 0,
            threads: Vec::new(),
            active: None,
            starting: 0,
            abort: false,
            steps: 0,
            cur_preempt: 0,
            last_sched: None,
            vars: HashMap::new(),
            var_states: Vec::new(),
            mutexes: HashMap::new(),
            mutex_states: Vec::new(),
            cvs: HashMap::new(),
            cv_states: Vec::new(),
            cells: HashMap::new(),
            cell_states: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Resets per-execution state and registers the root thread. The DFS
    /// stack and exploration statistics persist.
    fn begin_execution(&mut self) {
        self.epoch += 1;
        self.cursor = 0;
        self.threads.clear();
        self.active = None;
        self.starting = 0;
        self.abort = false;
        self.steps = 0;
        self.cur_preempt = 0;
        self.last_sched = None;
        self.vars.clear();
        self.var_states.clear();
        self.mutexes.clear();
        self.mutex_states.clear();
        self.cvs.clear();
        self.cv_states.clear();
        self.cells.clear();
        self.cell_states.clear();
        self.trace.clear();
        self.new_thread_entry(None);
    }

    fn new_thread_entry(&mut self, parent: Option<usize>) -> usize {
        let tid = self.threads.len();
        let mut clock = match parent {
            Some(p) => self.threads[p].clock.clone(),
            None => VClock::new(),
        };
        clock.tick(tid);
        self.threads.push(MThread {
            stat: TStat::Starting,
            granted: false,
            clock,
            floor: HashMap::new(),
        });
        self.starting += 1;
        self.max_threads = self.max_threads.max(self.threads.len());
        tid
    }

    /// Marks a thread finished, fixing up the `starting` counter if it
    /// never announced.
    fn retire_thread(&mut self, tid: usize) {
        let was_starting = self
            .threads
            .get(tid)
            .map(|t| matches!(t.stat, TStat::Starting))
            .unwrap_or(false);
        if was_starting {
            self.starting -= 1;
        }
        if let Some(t) = self.threads.get_mut(tid) {
            t.stat = TStat::Finished;
        }
        if self.active == Some(tid) {
            self.active = None;
        }
    }

    // --- identity registration --------------------------------------------

    fn var_for(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&id) = self.vars.get(&addr) {
            return id;
        }
        let id = self.var_states.len();
        self.vars.insert(addr, id);
        self.var_states.push(VarState {
            stores: vec![Store {
                val: init,
                seen: VClock::new(),
                sync: None,
            }],
        });
        id
    }

    fn mutex_for(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.mutexes.get(&addr) {
            return id;
        }
        let id = self.mutex_states.len();
        self.mutexes.insert(addr, id);
        self.mutex_states.push(MutexState {
            locked_by: None,
            clock: VClock::new(),
        });
        id
    }

    fn cv_for(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.cvs.get(&addr) {
            return id;
        }
        let id = self.cv_states.len();
        self.cvs.insert(addr, id);
        self.cv_states.push(CvState {
            waiters: Vec::new(),
        });
        id
    }

    fn cell_for(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.cells.get(&addr) {
            return id;
        }
        let id = self.cell_states.len();
        self.cells.insert(addr, id);
        self.cell_states.push(CellState {
            last_write: None,
            reads: Vec::new(),
        });
        id
    }

    fn mutex_addr(&self, id: usize) -> usize {
        for (&addr, &mid) in &self.mutexes {
            if mid == id {
                return addr;
            }
        }
        0
    }

    // --- failure recording -------------------------------------------------

    fn schedule_string(&self) -> String {
        let mut s = String::new();
        for d in &self.stack[..self.cursor.min(self.stack.len())] {
            if !s.is_empty() {
                s.push(',');
            }
            s.push(if d.read { 'r' } else { 't' });
            s.push_str(&d.chosen.to_string());
        }
        s
    }

    fn render_trace(&self) -> String {
        let mut out = String::new();
        for (i, (tid, desc)) in self.trace.iter().enumerate() {
            out.push_str(&format!("  #{i:<3} t{tid}: {desc}\n"));
        }
        out
    }

    fn record_failure(&mut self, kind: &'static str, message: String) {
        if self.failure.is_some() {
            return;
        }
        self.failure = Some(Failure {
            kind,
            message,
            trace: self.render_trace(),
            schedule: self.schedule_string(),
        });
        self.abort = true;
    }

    // --- scheduling --------------------------------------------------------

    fn op_enabled(&self, op: &Op) -> bool {
        match op {
            Op::Lock { addr } => match self.mutexes.get(addr) {
                Some(&id) => self.mutex_states[id].locked_by.is_none(),
                None => true,
            },
            Op::Join { target } => matches!(self.threads[*target].stat, TStat::Finished),
            _ => true,
        }
    }

    fn op_sig(&mut self, op: &Op, tid: usize) -> (Obj, Access) {
        match op {
            Op::Load { addr, init, .. } => (Obj::Var(self.var_for(*addr, *init)), Access::Read),
            Op::Store { addr, init, .. }
            | Op::Rmw { addr, init, .. }
            | Op::Cas { addr, init, .. } => (Obj::Var(self.var_for(*addr, *init)), Access::Write),
            Op::CellRead { addr } => (Obj::Cell(self.cell_for(*addr)), Access::Read),
            Op::CellWrite { addr } => (Obj::Cell(self.cell_for(*addr)), Access::Write),
            Op::Lock { addr } => (Obj::Mutex(self.mutex_for(*addr)), Access::Sync),
            Op::Unlock { addr } => (Obj::Mutex(self.mutex_for(*addr)), Access::Free),
            Op::CvWait { cv, .. } | Op::CvNotify { cv, .. } => {
                (Obj::Cv(self.cv_for(*cv)), Access::Sync)
            }
            Op::Spawn => (Obj::None, Access::Sync),
            Op::Join { target } => (Obj::Thread(*target), Access::Sync),
            Op::Finish => (Obj::Thread(tid), Access::Sync),
        }
    }

    fn dispatch(&mut self) -> DispatchOutcome {
        let mut enabled: Vec<usize> = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if let TStat::Want(op) = &t.stat {
                if self.op_enabled(op) {
                    enabled.push(i);
                }
            }
        }
        if enabled.is_empty() {
            return DispatchOutcome::NoEnabled;
        }
        self.steps += 1;
        if self.cfg.max_steps > 0 && self.steps > self.cfg.max_steps {
            self.record_failure(
                "step-budget",
                format!(
                    "execution exceeded {} scheduler steps (possible livelock)",
                    self.cfg.max_steps
                ),
            );
            return DispatchOutcome::Failed;
        }
        let chosen;
        if self.cursor < self.stack.len() {
            let d = &self.stack[self.cursor];
            if d.read || d.options != enabled {
                let msg = format!(
                    "nondeterministic replay at decision {}: enabled {:?} vs recorded {:?}",
                    self.cursor, enabled, d.options
                );
                self.record_failure("internal", msg);
                return DispatchOutcome::Failed;
            }
            chosen = d.chosen;
        } else {
            let prev = self.last_sched;
            let default = match prev {
                Some(p) if enabled.contains(&p) => p,
                _ => enabled[0],
            };
            let mut explored = BTreeSet::new();
            explored.insert(default);
            let backtrack = if self.cfg.full_schedule_points {
                enabled.iter().copied().collect()
            } else {
                explored.clone()
            };
            self.stack.push(Decision {
                read: false,
                options: enabled.clone(),
                chosen: default,
                explored,
                backtrack,
                preempt_before: self.cur_preempt,
                prev_tid: prev,
                step_tid: default,
                step_sig: (Obj::None, Access::Sync),
            });
            chosen = default;
        }
        let op = match &self.threads[chosen].stat {
            TStat::Want(op) => op.clone(),
            other => {
                let msg = format!("granted thread t{chosen} not announced (state {other:?})");
                self.record_failure("internal", msg);
                return DispatchOutcome::Failed;
            }
        };
        let sig = self.op_sig(&op, chosen);
        let idx = self.cursor;
        {
            let d = &mut self.stack[idx];
            d.step_tid = chosen;
            d.step_sig = sig;
            let is_p = match d.prev_tid {
                Some(p) => p != chosen && d.options.contains(&p),
                None => false,
            };
            self.cur_preempt = d.preempt_before + u32::from(is_p);
        }
        // DPOR: add `chosen` to the backtrack set of the latest earlier
        // schedule decision whose step is dependent with this one.
        if !self.cfg.full_schedule_points {
            for e in (0..idx).rev() {
                if self.stack[e].read {
                    continue;
                }
                if self.stack[e].step_tid != chosen && dependent(self.stack[e].step_sig, sig) {
                    if self.stack[e].options.contains(&chosen) {
                        self.stack[e].backtrack.insert(chosen);
                    } else {
                        let opts: Vec<usize> = self.stack[e].options.clone();
                        self.stack[e].backtrack.extend(opts);
                    }
                    break;
                }
            }
        }
        self.cursor += 1;
        self.transitions += 1;
        self.max_depth = self.max_depth.max(self.stack.len());
        self.last_sched = Some(chosen);
        self.threads[chosen].granted = true;
        self.active = Some(chosen);
        DispatchOutcome::Dispatched
    }

    /// A schedule alternative is admissible under the preemption bound if
    /// taking it does not push the path's preemption count past the bound.
    fn alt_admissible(&self, d: &Decision, alt: usize) -> bool {
        match self.cfg.preemption_bound {
            None => true,
            Some(b) => {
                let is_p = match d.prev_tid {
                    Some(p) => p != alt && d.options.contains(&p),
                    None => false,
                };
                d.preempt_before + u32::from(is_p) <= b
            }
        }
    }

    /// Moves to the next unexplored path: advances the deepest decision
    /// with an untried alternative, popping exhausted decisions. Returns
    /// `false` when the whole tree is explored.
    fn advance(&mut self) -> bool {
        loop {
            let pool: Vec<usize> = {
                let Some(d) = self.stack.last() else {
                    return false;
                };
                if d.read {
                    d.options
                        .iter()
                        .copied()
                        .filter(|o| !d.explored.contains(o))
                        .collect()
                } else {
                    let mut p: Vec<usize> = d
                        .backtrack
                        .iter()
                        .copied()
                        .filter(|o| !d.explored.contains(o))
                        .collect();
                    let before = p.len();
                    p.retain(|&o| self.alt_admissible(d, o));
                    if p.len() != before {
                        self.bounded_pruned = true;
                    }
                    p
                }
            };
            match pool.first() {
                Some(&alt) => {
                    if let Some(d) = self.stack.last_mut() {
                        d.explored.insert(alt);
                        d.chosen = alt;
                    }
                    return true;
                }
                None => {
                    self.stack.pop();
                }
            }
        }
    }

    // --- value decisions ---------------------------------------------------

    /// Picks which store a load reads from. `candidates` are modification
    /// order indices, ascending. Consumes a replayed decision or pushes a
    /// new one (default: the latest store, so the first execution follows
    /// the natural sequentially consistent path).
    fn choose_read(&mut self, candidates: &[usize]) -> Option<usize> {
        if candidates.len() == 1 {
            return Some(candidates[0]);
        }
        if self.cursor < self.stack.len() {
            let d = &self.stack[self.cursor];
            if d.read && d.options == candidates {
                let chosen = d.chosen;
                self.cursor += 1;
                return Some(chosen);
            }
            let msg = format!(
                "nondeterministic replay at value decision {}: candidates {:?} vs recorded {:?}",
                self.cursor, candidates, d.options
            );
            self.record_failure("internal", msg);
            return None;
        }
        let default = *candidates.last()?;
        let mut explored = BTreeSet::new();
        explored.insert(default);
        self.stack.push(Decision {
            read: true,
            options: candidates.to_vec(),
            chosen: default,
            explored,
            backtrack: BTreeSet::new(),
            preempt_before: self.cur_preempt,
            prev_tid: self.last_sched,
            step_tid: self.last_sched.unwrap_or(0),
            step_sig: (Obj::None, Access::Read),
        });
        self.cursor += 1;
        self.max_depth = self.max_depth.max(self.stack.len());
        Some(default)
    }

    /// Candidate stores for a load by `tid`: every store at or after both
    /// the thread's coherence floor and the latest store already known
    /// (happens-before) to the thread.
    fn load_candidates(&self, tid: usize, var: usize) -> Vec<usize> {
        let stores = &self.var_states[var].stores;
        let clock = &self.threads[tid].clock;
        let mut known = 0;
        for (i, s) in stores.iter().enumerate().rev() {
            if s.seen.le(clock) {
                known = i;
                break;
            }
        }
        let floor = self.threads[tid].floor.get(&var).copied().unwrap_or(0);
        let lo = known.max(floor);
        (lo..stores.len()).collect()
    }

    // --- operation effects -------------------------------------------------

    fn execute(&mut self, tid: usize, op: &Op) -> OpResult {
        self.threads[tid].clock.tick(tid);
        match op {
            Op::Load {
                addr,
                init,
                acquire,
            } => {
                let var = self.var_for(*addr, *init);
                let cands = self.load_candidates(tid, var);
                let chosen = match self.choose_read(&cands) {
                    Some(c) => c,
                    None => return OpResult::Val(*init),
                };
                let (val, sync) = {
                    let s = &self.var_states[var].stores[chosen];
                    (s.val, s.sync.clone())
                };
                self.threads[tid].floor.insert(var, chosen);
                if *acquire {
                    if let Some(sc) = &sync {
                        self.threads[tid].clock.join(sc);
                    }
                }
                self.trace.push((
                    tid,
                    format!(
                        "v{var}.load({}) -> {val:#x} [store #{chosen}]",
                        if *acquire { "Acquire" } else { "Relaxed" }
                    ),
                ));
                OpResult::Val(val)
            }
            Op::Store {
                addr,
                init,
                val,
                release,
            } => {
                let var = self.var_for(*addr, *init);
                let sync = if *release {
                    Some(self.threads[tid].clock.clone())
                } else {
                    None
                };
                let seen = self.threads[tid].clock.clone();
                let stores = &mut self.var_states[var].stores;
                stores.push(Store {
                    val: *val,
                    seen,
                    sync,
                });
                let idx = stores.len() - 1;
                self.threads[tid].floor.insert(var, idx);
                self.trace.push((
                    tid,
                    format!(
                        "v{var}.store({val:#x}, {})",
                        if *release { "Release" } else { "Relaxed" }
                    ),
                ));
                OpResult::Unit
            }
            Op::Rmw {
                addr,
                init,
                kind,
                operand,
                acquire,
                release,
            } => {
                let var = self.var_for(*addr, *init);
                let (prev, prev_sync) = {
                    let stores = &self.var_states[var].stores;
                    let last = &stores[stores.len() - 1];
                    (last.val, last.sync.clone())
                };
                if *acquire {
                    if let Some(sc) = &prev_sync {
                        self.threads[tid].clock.join(sc);
                    }
                }
                let new = kind.apply(prev, *operand);
                let sync = match (*release, prev_sync) {
                    (true, Some(mut ps)) => {
                        ps.join(&self.threads[tid].clock);
                        Some(ps)
                    }
                    (true, None) => Some(self.threads[tid].clock.clone()),
                    // A non-release RMW continues the release sequence of
                    // the store it replaces.
                    (false, ps) => ps,
                };
                let seen = self.threads[tid].clock.clone();
                let stores = &mut self.var_states[var].stores;
                stores.push(Store {
                    val: new,
                    seen,
                    sync,
                });
                let idx = stores.len() - 1;
                self.threads[tid].floor.insert(var, idx);
                self.trace.push((
                    tid,
                    format!("v{var}.{}({operand:#x}) -> {prev:#x}", kind.name()),
                ));
                OpResult::Val(prev)
            }
            Op::Cas {
                addr,
                init,
                expect,
                new,
                acquire,
                release,
                fail_acquire,
            } => {
                let var = self.var_for(*addr, *init);
                let (prev, prev_sync, last_idx) = {
                    let stores = &self.var_states[var].stores;
                    let last_idx = stores.len() - 1;
                    (
                        stores[last_idx].val,
                        stores[last_idx].sync.clone(),
                        last_idx,
                    )
                };
                if prev == *expect {
                    if *acquire {
                        if let Some(sc) = &prev_sync {
                            self.threads[tid].clock.join(sc);
                        }
                    }
                    let sync = match (*release, prev_sync) {
                        (true, Some(mut ps)) => {
                            ps.join(&self.threads[tid].clock);
                            Some(ps)
                        }
                        (true, None) => Some(self.threads[tid].clock.clone()),
                        (false, ps) => ps,
                    };
                    let seen = self.threads[tid].clock.clone();
                    let stores = &mut self.var_states[var].stores;
                    stores.push(Store {
                        val: *new,
                        seen,
                        sync,
                    });
                    let idx = stores.len() - 1;
                    self.threads[tid].floor.insert(var, idx);
                    self.trace.push((
                        tid,
                        format!("v{var}.compare_exchange({expect:#x} -> {new:#x}) ok"),
                    ));
                    OpResult::Cas(Ok(prev))
                } else {
                    // A failed CAS acts as a load of the latest store (a
                    // sound under-approximation of a C11 failed CAS).
                    self.threads[tid].floor.insert(var, last_idx);
                    if *fail_acquire {
                        if let Some(sc) = &prev_sync {
                            self.threads[tid].clock.join(sc);
                        }
                    }
                    self.trace.push((
                        tid,
                        format!("v{var}.compare_exchange({expect:#x}) failed, read {prev:#x}"),
                    ));
                    OpResult::Cas(Err(prev))
                }
            }
            Op::CellRead { addr } => {
                let cell = self.cell_for(*addr);
                let clock = self.threads[tid].clock.clone();
                let race = {
                    let c = &self.cell_states[cell];
                    c.last_write
                        .filter(|&(w, at)| w != tid && clock.get(w) < at)
                };
                if let Some((w, _)) = race {
                    self.trace
                        .push((tid, format!("c{cell}.read() RACES with write by t{w}")));
                    self.record_failure(
                        "data-race",
                        format!("t{tid} read of cell c{cell} races with t{w}'s write"),
                    );
                    return OpResult::Unit;
                }
                let me = clock.get(tid);
                let c = &mut self.cell_states[cell];
                c.reads.retain(|&(t, _)| t != tid);
                c.reads.push((tid, me));
                self.trace.push((tid, format!("c{cell}.read()")));
                OpResult::Unit
            }
            Op::CellWrite { addr } => {
                let cell = self.cell_for(*addr);
                let clock = self.threads[tid].clock.clone();
                let mut race: Option<(usize, &'static str)> = None;
                {
                    let c = &self.cell_states[cell];
                    if let Some((w, at)) = c.last_write {
                        if w != tid && clock.get(w) < at {
                            race = Some((w, "write"));
                        }
                    }
                    if race.is_none() {
                        for &(r, at) in &c.reads {
                            if r != tid && clock.get(r) < at {
                                race = Some((r, "read"));
                                break;
                            }
                        }
                    }
                }
                if let Some((other, what)) = race {
                    self.trace.push((
                        tid,
                        format!("c{cell}.write() RACES with {what} by t{other}"),
                    ));
                    self.record_failure(
                        "data-race",
                        format!("t{tid} write of cell c{cell} races with t{other}'s {what}"),
                    );
                    return OpResult::Unit;
                }
                let me = clock.get(tid);
                let c = &mut self.cell_states[cell];
                c.last_write = Some((tid, me));
                c.reads.clear();
                self.trace.push((tid, format!("c{cell}.write()")));
                OpResult::Unit
            }
            Op::Lock { addr } => {
                let m = self.mutex_for(*addr);
                let mclock = self.mutex_states[m].clock.clone();
                self.mutex_states[m].locked_by = Some(tid);
                self.threads[tid].clock.join(&mclock);
                self.trace.push((tid, format!("m{m}.lock()")));
                OpResult::Unit
            }
            Op::Unlock { addr } => {
                let m = self.mutex_for(*addr);
                let tclock = self.threads[tid].clock.clone();
                self.mutex_states[m].locked_by = None;
                self.mutex_states[m].clock.join(&tclock);
                self.trace.push((tid, format!("m{m}.unlock()")));
                OpResult::Unit
            }
            Op::CvWait { cv, mutex } => {
                let c = self.cv_for(*cv);
                let m = self.mutex_for(*mutex);
                let tclock = self.threads[tid].clock.clone();
                self.mutex_states[m].locked_by = None;
                self.mutex_states[m].clock.join(&tclock);
                self.cv_states[c].waiters.push(tid);
                self.threads[tid].stat = TStat::CvWait { cv: c, mutex: m };
                self.active = None;
                self.trace
                    .push((tid, format!("cv{c}.wait() [releases m{m}]")));
                OpResult::Unit
            }
            Op::CvNotify { cv, all } => {
                let c = self.cv_for(*cv);
                let woken: Vec<usize> = if *all {
                    std::mem::take(&mut self.cv_states[c].waiters)
                } else if self.cv_states[c].waiters.is_empty() {
                    Vec::new()
                } else {
                    // notify_one wakes the longest waiter (FIFO); a
                    // deterministic refinement of the real nondeterminism.
                    vec![self.cv_states[c].waiters.remove(0)]
                };
                for w in &woken {
                    if let TStat::CvWait { mutex, .. } = self.threads[*w].stat {
                        let addr = self.mutex_addr(mutex);
                        self.threads[*w].stat = TStat::Want(Op::Lock { addr });
                    }
                }
                self.trace.push((
                    tid,
                    format!(
                        "cv{c}.notify_{}() wakes {woken:?}",
                        if *all { "all" } else { "one" }
                    ),
                ));
                OpResult::Unit
            }
            Op::Spawn => {
                let child = self.new_thread_entry(Some(tid));
                self.trace.push((tid, format!("spawn -> t{child}")));
                OpResult::Spawned(child)
            }
            Op::Join { target } => {
                let tclock = self.threads[*target].clock.clone();
                self.threads[tid].clock.join(&tclock);
                self.trace.push((tid, format!("join(t{target})")));
                OpResult::Unit
            }
            Op::Finish => {
                self.threads[tid].stat = TStat::Finished;
                self.active = None;
                self.trace.push((tid, "finish".to_string()));
                OpResult::Unit
            }
        }
    }

    /// Effect-only execution once the abort flag is set: no handshake, no
    /// decisions, no trace, never blocks, never unwinds (so drop-time
    /// operations of an unwinding thread are safe).
    fn execute_abort(&mut self, tid: usize, op: &Op) -> OpResult {
        match op {
            Op::Load { addr, init, .. } => {
                let var = self.var_for(*addr, *init);
                let stores = &self.var_states[var].stores;
                OpResult::Val(stores[stores.len() - 1].val)
            }
            Op::Store {
                addr, init, val, ..
            } => {
                let var = self.var_for(*addr, *init);
                self.var_states[var].stores.push(Store {
                    val: *val,
                    seen: VClock::new(),
                    sync: None,
                });
                OpResult::Unit
            }
            Op::Rmw {
                addr,
                init,
                kind,
                operand,
                ..
            } => {
                let var = self.var_for(*addr, *init);
                let prev = {
                    let stores = &self.var_states[var].stores;
                    stores[stores.len() - 1].val
                };
                self.var_states[var].stores.push(Store {
                    val: kind.apply(prev, *operand),
                    seen: VClock::new(),
                    sync: None,
                });
                OpResult::Val(prev)
            }
            Op::Cas {
                addr,
                init,
                expect,
                new,
                ..
            } => {
                let var = self.var_for(*addr, *init);
                let prev = {
                    let stores = &self.var_states[var].stores;
                    stores[stores.len() - 1].val
                };
                if prev == *expect {
                    self.var_states[var].stores.push(Store {
                        val: *new,
                        seen: VClock::new(),
                        sync: None,
                    });
                    OpResult::Cas(Ok(prev))
                } else {
                    OpResult::Cas(Err(prev))
                }
            }
            Op::Lock { addr } => {
                let m = self.mutex_for(*addr);
                self.mutex_states[m].locked_by = Some(tid);
                OpResult::Unit
            }
            Op::Unlock { addr } => {
                let m = self.mutex_for(*addr);
                self.mutex_states[m].locked_by = None;
                OpResult::Unit
            }
            Op::Finish => {
                self.retire_thread(tid);
                OpResult::Unit
            }
            _ => OpResult::Unit,
        }
    }
}

// ---------------------------------------------------------------------------
// Runner pool
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQ {
    jobs: VecDeque<Job>,
    closing: bool,
    idle: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct RunnerPool {
    q: Mutex<PoolQ>,
    cv: Condvar,
}

impl RunnerPool {
    fn new() -> Self {
        RunnerPool {
            q: Mutex::new(PoolQ {
                jobs: VecDeque::new(),
                closing: false,
                idle: 0,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock_q(&self) -> MutexGuard<'_, PoolQ> {
        match self.q.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

fn runner_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.pool.lock_q();
            loop {
                if q.closing {
                    return;
                }
                if let Some(j) = q.jobs.pop_front() {
                    break j;
                }
                q.idle += 1;
                q = match shared.pool.cv.wait(q) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                q.idle -= 1;
            }
        };
        job();
    }
}

/// Queues `job`, spawning a fresh runner thread when no idle runner is
/// guaranteed to pick it up.
fn submit(shared: &Arc<Shared>, job: Job) -> std::io::Result<()> {
    let need_spawn = {
        let mut q = shared.pool.lock_q();
        q.jobs.push_back(job);
        !q.closing && q.idle < q.jobs.len()
    };
    if need_spawn {
        let s = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("hicond-model-runner".to_string())
            .spawn(move || runner_loop(s))?;
        shared.pool.lock_q().handles.push(handle);
    }
    shared.pool.cv.notify_all();
    Ok(())
}

/// Joins all runner threads. Must only be called after a clean (failure
/// free) exploration: on a counterexample some runners may be parked
/// forever by design, and the pool is leaked instead.
fn shutdown_pool(shared: &Arc<Shared>) {
    let handles = {
        let mut q = shared.pool.lock_q();
        q.closing = true;
        std::mem::take(&mut q.handles)
    };
    shared.pool.cv.notify_all();
    for h in handles {
        let _ = h.join();
    }
}

// ---------------------------------------------------------------------------
// Shared handle + thread lifecycle
// ---------------------------------------------------------------------------

pub(crate) struct Shared {
    state: Mutex<Engine>,
    cv: Condvar,
    pool: RunnerPool,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Engine> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn wait<'a>(&self, g: MutexGuard<'a, Engine>) -> MutexGuard<'a, Engine> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Launches a model thread body on a runner: sets the thread context,
/// catches panics, and performs the finish/abort bookkeeping.
fn launch(shared: &Arc<Shared>, tid: usize, epoch: u64, body: Job) -> std::io::Result<()> {
    let shared_for_job = Arc::clone(shared);
    let job: Job = Box::new(move || {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                shared: Arc::clone(&shared_for_job),
                tid,
                epoch,
            });
        });
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
        CTX.with(|c| {
            *c.borrow_mut() = None;
        });
        match result {
            Ok(()) => {
                // Normal completion: Finish is a modeled step so joins
                // order after it.
                perform(&shared_for_job, tid, epoch, Op::Finish);
            }
            Err(payload) => {
                let mut st = shared_for_job.lock();
                if st.epoch == epoch {
                    if payload.downcast_ref::<ModelAbort>().is_none() {
                        let msg = payload_message(payload.as_ref());
                        st.record_failure("assertion", format!("t{tid} panicked: {msg}"));
                    }
                    st.retire_thread(tid);
                    shared_for_job.cv.notify_all();
                }
            }
        }
    });
    submit(shared, job)
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parks the calling model thread forever (abort-mode condvar wait). The
/// runner is intentionally leaked; exploration has already stopped.
fn park_forever(shared: &Arc<Shared>, mut st: MutexGuard<'_, Engine>) -> ! {
    loop {
        st = shared.wait(st);
    }
}

/// The announce/grant handshake: blocks until the scheduler grants this
/// thread, then executes the operation's effect under the state lock.
/// When `under_lock` is provided it runs while the state lock is still
/// held (used by [`crate::RaceCell`] so its raw accesses stay mutually
/// exclusive even in abort mode).
pub(crate) fn perform_with(
    shared: &Arc<Shared>,
    tid: usize,
    epoch: u64,
    op: Op,
    under_lock: Option<&mut dyn FnMut()>,
) -> OpResult {
    let mut st = shared.lock();
    if st.epoch != epoch {
        drop(st);
        std::panic::resume_unwind(Box::new(ModelAbort));
    }
    if st.abort {
        if matches!(op, Op::CvWait { .. }) {
            // Nothing will ever notify; park so the caller's wait loop
            // cannot spin hot.
            park_forever(shared, st);
        }
        let was_starting = matches!(st.threads.get(tid).map(|t| &t.stat), Some(TStat::Starting));
        if was_starting {
            st.starting -= 1;
        }
        if st.active == Some(tid) {
            st.active = None;
        }
        let r = st.execute_abort(tid, &op);
        if let Some(f) = under_lock {
            f();
        }
        shared.cv.notify_all();
        return r;
    }
    // Announce.
    if matches!(st.threads[tid].stat, TStat::Starting) {
        st.starting -= 1;
    }
    let is_wait = matches!(op, Op::CvWait { .. });
    st.threads[tid].stat = TStat::Want(op.clone());
    if st.active == Some(tid) {
        st.active = None;
    }
    shared.cv.notify_all();
    // Wait for the grant.
    loop {
        if st.epoch != epoch {
            drop(st);
            std::panic::resume_unwind(Box::new(ModelAbort));
        }
        if st.abort {
            if st.active == Some(tid) {
                st.active = None;
            }
            let r = st.execute_abort(tid, &op);
            if let Some(f) = under_lock {
                f();
            }
            shared.cv.notify_all();
            return r;
        }
        if st.threads[tid].granted {
            break;
        }
        st = shared.wait(st);
    }
    st.threads[tid].granted = false;
    let res = st.execute(tid, &op);
    if st.abort {
        // The op itself failed (e.g. a data race): fall through without
        // blocking; the caller free-runs to completion.
        if st.active == Some(tid) {
            st.active = None;
        }
        if let Some(f) = under_lock {
            f();
        }
        shared.cv.notify_all();
        return res;
    }
    if let Some(f) = under_lock {
        f();
    }
    if is_wait {
        shared.cv.notify_all();
        // Phase two of condvar wait: park until a notify re-arms us as a
        // lock re-acquire and the scheduler grants it.
        loop {
            if st.epoch != epoch {
                drop(st);
                std::panic::resume_unwind(Box::new(ModelAbort));
            }
            if st.abort {
                // Spurious wakeup; the caller's wait loop re-enters wait
                // and parks in the abort fast path above.
                shared.cv.notify_all();
                return OpResult::Unit;
            }
            if st.threads[tid].granted {
                break;
            }
            st = shared.wait(st);
        }
        st.threads[tid].granted = false;
        let lock_op = match &st.threads[tid].stat {
            TStat::Want(o) => o.clone(),
            _ => Op::Finish,
        };
        let r = st.execute(tid, &lock_op);
        shared.cv.notify_all();
        return r;
    }
    shared.cv.notify_all();
    res
}

pub(crate) fn perform(shared: &Arc<Shared>, tid: usize, epoch: u64, op: Op) -> OpResult {
    perform_with(shared, tid, epoch, op, None)
}

// ---------------------------------------------------------------------------
// Shadow-type entry points (pass-through when not in a model context)
// ---------------------------------------------------------------------------

pub(crate) fn model_load(addr: usize, init: u64, ord: Ordering) -> Option<u64> {
    with_ctx(|ctx| {
        let op = Op::Load {
            addr,
            init,
            acquire: is_acquire(ord),
        };
        match perform(&ctx.shared, ctx.tid, ctx.epoch, op) {
            OpResult::Val(v) => v,
            _ => init,
        }
    })
}

pub(crate) fn model_store(addr: usize, init: u64, val: u64, ord: Ordering) -> Option<()> {
    with_ctx(|ctx| {
        let op = Op::Store {
            addr,
            init,
            val,
            release: is_release(ord),
        };
        perform(&ctx.shared, ctx.tid, ctx.epoch, op);
    })
}

pub(crate) fn model_rmw(
    addr: usize,
    init: u64,
    kind: RmwKind,
    operand: u64,
    ord: Ordering,
) -> Option<u64> {
    with_ctx(|ctx| {
        let op = Op::Rmw {
            addr,
            init,
            kind,
            operand,
            acquire: is_acquire(ord),
            release: is_release(ord),
        };
        match perform(&ctx.shared, ctx.tid, ctx.epoch, op) {
            OpResult::Val(v) => v,
            _ => init,
        }
    })
}

pub(crate) fn model_cas(
    addr: usize,
    init: u64,
    expect: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Option<Result<u64, u64>> {
    with_ctx(|ctx| {
        let op = Op::Cas {
            addr,
            init,
            expect,
            new,
            acquire: is_acquire(success),
            release: is_release(success),
            fail_acquire: is_acquire(failure),
        };
        match perform(&ctx.shared, ctx.tid, ctx.epoch, op) {
            OpResult::Cas(r) => r,
            _ => Err(init),
        }
    })
}

/// Runs `access` (the raw cell read/write) under the model's state lock
/// after happens-before race checking. Returns `false` when not in a
/// model context (caller performs the access directly).
pub(crate) fn model_cell_access(addr: usize, write: bool, access: &mut dyn FnMut()) -> bool {
    with_ctx(|ctx| {
        let op = if write {
            Op::CellWrite { addr }
        } else {
            Op::CellRead { addr }
        };
        perform_with(&ctx.shared, ctx.tid, ctx.epoch, op, Some(access));
    })
    .is_some()
}

pub(crate) fn model_lock(addr: usize) -> bool {
    with_ctx(|ctx| {
        perform(&ctx.shared, ctx.tid, ctx.epoch, Op::Lock { addr });
    })
    .is_some()
}

pub(crate) fn model_unlock(addr: usize) -> bool {
    with_ctx(|ctx| {
        perform(&ctx.shared, ctx.tid, ctx.epoch, Op::Unlock { addr });
    })
    .is_some()
}

pub(crate) fn model_cv_wait(cv: usize, mutex: usize) -> bool {
    with_ctx(|ctx| {
        perform(&ctx.shared, ctx.tid, ctx.epoch, Op::CvWait { cv, mutex });
    })
    .is_some()
}

pub(crate) fn model_cv_notify(cv: usize, all: bool) -> bool {
    with_ctx(|ctx| {
        perform(&ctx.shared, ctx.tid, ctx.epoch, Op::CvNotify { cv, all });
    })
    .is_some()
}

/// Spawns a model thread running `f`; returns the child thread id, or
/// `None` when not in a model context (or in abort mode, where the child
/// body is skipped entirely).
pub(crate) fn model_spawn(f: Job) -> Option<usize> {
    let parts = with_ctx(|ctx| (Arc::clone(&ctx.shared), ctx.tid, ctx.epoch))?;
    let (shared, tid, epoch) = parts;
    let child = match perform(&shared, tid, epoch, Op::Spawn) {
        OpResult::Spawned(c) => c,
        _ => return None,
    };
    if let Err(e) = launch(&shared, child, epoch, f) {
        let mut st = shared.lock();
        st.retire_thread(child);
        st.record_failure("internal", format!("failed to launch model thread: {e}"));
        shared.cv.notify_all();
    }
    Some(child)
}

pub(crate) fn model_join(target: usize) -> bool {
    with_ctx(|ctx| {
        perform(&ctx.shared, ctx.tid, ctx.epoch, Op::Join { target });
    })
    .is_some()
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Drives one execution to completion: dispatches decisions until every
/// thread finished, a failure aborted the run, or a deadlock is detected.
fn drive(shared: &Arc<Shared>) {
    let mut st = shared.lock();
    loop {
        if st.abort {
            if st.active.is_none() && st.starting == 0 {
                return;
            }
            st = shared.wait(st);
            continue;
        }
        if st.threads.iter().all(|t| matches!(t.stat, TStat::Finished)) {
            return;
        }
        if st.active.is_some() || st.starting > 0 {
            st = shared.wait(st);
            continue;
        }
        match st.dispatch() {
            DispatchOutcome::Dispatched | DispatchOutcome::Failed => {
                shared.cv.notify_all();
            }
            DispatchOutcome::NoEnabled => {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t.stat, TStat::Finished))
                    .map(|(i, t)| match &t.stat {
                        TStat::CvWait { cv, .. } => format!("t{i} waiting on cv{cv}"),
                        TStat::Want(op) => format!("t{i} blocked on {op:?}"),
                        _ => format!("t{i}"),
                    })
                    .collect();
                st.record_failure(
                    "deadlock",
                    format!("no runnable thread; blocked: {}", blocked.join(", ")),
                );
                shared.cv.notify_all();
            }
        }
    }
}

/// Runs the exhaustive exploration of `body` under `cfg`.
pub(crate) fn explore_impl(cfg: Config, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    let name = cfg.name.to_string();
    let shared = Arc::new(Shared {
        state: Mutex::new(Engine::new(cfg.clone())),
        cv: Condvar::new(),
        pool: RunnerPool::new(),
    });
    let mut hit_budget = false;
    loop {
        let epoch = {
            let mut st = shared.lock();
            st.begin_execution();
            st.epoch
        };
        let b = Arc::clone(&body);
        if let Err(e) = launch(&shared, 0, epoch, Box::new(move || b())) {
            let mut st = shared.lock();
            st.record_failure("internal", format!("failed to launch root thread: {e}"));
            break;
        }
        drive(&shared);
        let mut st = shared.lock();
        st.schedules += 1;
        if st.failure.is_some() {
            break;
        }
        if cfg.max_schedules > 0 && st.schedules >= cfg.max_schedules {
            if st.advance() {
                hit_budget = true;
            }
            break;
        }
        if !st.advance() {
            break;
        }
    }
    let (report, clean) = {
        let st = shared.lock();
        let outcome = match &st.failure {
            Some(f) => Outcome::Counterexample(Counterexample {
                kind: f.kind,
                message: f.message.clone(),
                trace: f.trace.clone(),
                schedule: f.schedule.clone(),
            }),
            None => {
                if hit_budget || st.bounded_pruned {
                    Outcome::Bounded
                } else {
                    Outcome::Certified
                }
            }
        };
        let clean = st.failure.is_none();
        (
            Report {
                name,
                schedules: st.schedules,
                transitions: st.transitions,
                max_depth: st.max_depth,
                threads: st.max_threads,
                preemption_bound: cfg.preemption_bound,
                outcome,
            },
            clean,
        )
    };
    if clean {
        shutdown_pool(&shared);
    }
    // On a counterexample the pool (and any forever-parked runner) is
    // intentionally leaked; the process is about to report and exit.
    report
}
