//! `hicond-model` — a zero-dependency, loom-style exhaustive interleaving
//! model checker for the workspace's lock-free concurrency kernel.
//!
//! A protocol model is an ordinary closure using the shadow types in
//! [`shadow`] (plus [`spawn`]/[`JoinHandle`] and [`RaceCell`]). Passing it
//! to [`explore`] runs it under a deterministic scheduler that enumerates
//! thread interleavings — and, for relaxed atomics, which store each load
//! reads from — with dynamic partial-order reduction and an optional
//! bounded-preemption fallback. Assertions inside the body, data races on
//! [`RaceCell`]s, and deadlocks all stop the exploration with a replayable
//! minimal interleaving trace.
//!
//! ```
//! use hicond_model::{explore, spawn, Config, Outcome};
//! use hicond_model::shadow::AtomicU64;
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = explore(Config::new("message-passing"), || {
//!     let data = Arc::new(AtomicU64::new(0));
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
//!     let t = spawn(move || {
//!         d2.store(42, Ordering::Relaxed);
//!         f2.store(1, Ordering::Release);
//!     });
//!     if flag.load(Ordering::Acquire) == 1 {
//!         assert_eq!(data.load(Ordering::Relaxed), 42);
//!     }
//!     t.join();
//! });
//! assert!(matches!(report.outcome, Outcome::Certified));
//! ```
//!
//! The checker is *stateless* (it re-executes the body once per schedule)
//! and *sound for the behaviors it models*: release/acquire plus relaxed
//! orderings with per-variable modification orders, `SeqCst` approximated
//! as `AcqRel`, and a deterministic FIFO refinement of `notify_one`. See
//! the `engine` module docs for the precise semantics.

mod engine;
pub mod shadow;
mod vclock;

use std::cell::UnsafeCell;
use std::sync::Arc;

pub use engine::in_model;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Exploration parameters for [`explore`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Protocol name (used in reports and stats files).
    pub name: &'static str,
    /// Stop after this many schedules (0 = explore the whole tree). When
    /// the budget ends the exploration early the outcome is
    /// [`Outcome::Bounded`].
    pub max_schedules: u64,
    /// Per-execution scheduler step limit (0 = unlimited). Exceeding it
    /// is reported as a counterexample (possible livelock).
    pub max_steps: u64,
    /// When set, schedule alternatives that would exceed this many
    /// preemptions are pruned and the outcome downgrades to
    /// [`Outcome::Bounded`].
    pub preemption_bound: Option<u32>,
    /// Disable DPOR and treat every schedule point as a full backtrack
    /// point (exhaustive baseline; for cross-validating the reduction).
    pub full_schedule_points: bool,
}

impl Config {
    pub fn new(name: &'static str) -> Self {
        Config {
            name,
            max_schedules: 0,
            max_steps: 20_000,
            preemption_bound: None,
            full_schedule_points: false,
        }
    }

    pub fn with_max_schedules(mut self, n: u64) -> Self {
        self.max_schedules = n;
        self
    }

    pub fn with_preemption_bound(mut self, b: u32) -> Self {
        self.preemption_bound = Some(b);
        self
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// A failing interleaving, replayable from `schedule`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Failure class: `assertion`, `data-race`, `deadlock`, `step-budget`
    /// or `internal`.
    pub kind: &'static str,
    pub message: String,
    /// Rendered per-step interleaving trace.
    pub trace: String,
    /// Compact decision string (`t0,t1,r2,...`) identifying the schedule.
    pub schedule: String,
}

#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every reachable interleaving (modulo DPOR equivalence) explored,
    /// no failure.
    Certified,
    /// No failure found, but the exploration was cut by a schedule budget
    /// or the preemption bound.
    Bounded,
    Counterexample(Counterexample),
}

/// Exploration summary returned by [`explore`].
#[derive(Clone, Debug)]
pub struct Report {
    pub name: String,
    /// Executions (maximal schedules) run.
    pub schedules: u64,
    /// Scheduler transitions across all executions (states visited).
    pub transitions: u64,
    /// Deepest decision stack reached.
    pub max_depth: usize,
    /// Maximum live threads in any execution.
    pub threads: usize,
    pub preemption_bound: Option<u32>,
    pub outcome: Outcome,
}

impl Report {
    /// `true` unless a counterexample was found.
    pub fn passed(&self) -> bool {
        !matches!(self.outcome, Outcome::Counterexample(_))
    }

    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            Outcome::Counterexample(c) => Some(c),
            _ => None,
        }
    }

    pub fn outcome_str(&self) -> &'static str {
        match self.outcome {
            Outcome::Certified => "certified",
            Outcome::Bounded => "bounded",
            Outcome::Counterexample(_) => "counterexample",
        }
    }

    /// Human-readable summary; includes the interleaving trace when a
    /// counterexample was found.
    pub fn render(&self) -> String {
        let mut s = format!(
            "model `{}`: {} ({} schedules, {} transitions, depth {}, {} threads",
            self.name,
            self.outcome_str(),
            self.schedules,
            self.transitions,
            self.max_depth,
            self.threads,
        );
        match self.preemption_bound {
            Some(b) => s.push_str(&format!(", preemption bound {b})")),
            None => s.push(')'),
        }
        if let Some(c) = self.counterexample() {
            s.push_str(&format!(
                "\n  {}: {}\n  schedule: [{}]\n{}",
                c.kind, c.message, c.schedule, c.trace
            ));
        }
        s
    }

    /// Writes a key-value stats file to `$HICOND_MODEL_OUT/<name>.stats`
    /// for the `xtask model` driver. No-op when the variable is unset.
    /// `expected` records what the suite asserts about this protocol
    /// (`pass` or `counterexample`, for seeded-mutation checks).
    pub fn emit(&self, crate_name: &str, expected: &str) {
        let Some(dir) = std::env::var_os("HICOND_MODEL_OUT") else {
            return;
        };
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        let mut body = String::new();
        body.push_str(&format!("protocol={}\n", self.name));
        body.push_str(&format!("crate={crate_name}\n"));
        body.push_str(&format!("expected={expected}\n"));
        body.push_str(&format!("outcome={}\n", self.outcome_str()));
        body.push_str(&format!("schedules={}\n", self.schedules));
        body.push_str(&format!("transitions={}\n", self.transitions));
        body.push_str(&format!("max_depth={}\n", self.max_depth));
        body.push_str(&format!("threads={}\n", self.threads));
        body.push_str(&format!(
            "preemption_bound={}\n",
            match self.preemption_bound {
                Some(b) => b.to_string(),
                None => "none".to_string(),
            }
        ));
        if let Some(c) = self.counterexample() {
            body.push_str(&format!("kind={}\n", c.kind));
        }
        let _ = std::fs::write(dir.join(format!("{}.stats", self.name)), body);
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Explores every interleaving of `body` under `cfg`. The body runs once
/// per schedule; it must be self-contained (create its own shared state
/// each run) and deterministic apart from the modeled concurrency.
pub fn explore<F>(cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    engine::explore_impl(cfg, Arc::new(body))
}

enum JhInner {
    Std(std::thread::JoinHandle<()>),
    Model(usize),
    Dead,
}

/// Handle returned by [`spawn`]; join with [`JoinHandle::join`].
pub struct JoinHandle {
    inner: JhInner,
}

impl JoinHandle {
    /// Blocks until the thread finishes. In a model, joining is a modeled
    /// operation (enabled only once the target finished), so
    /// happens-before edges from the child are inherited.
    pub fn join(self) {
        match self.inner {
            JhInner::Std(h) => {
                let _ = h.join();
            }
            JhInner::Model(tid) => {
                engine::model_join(tid);
            }
            JhInner::Dead => {}
        }
    }
}

/// Spawns a thread: a modeled thread inside [`explore`], a real
/// `std::thread` otherwise.
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    if engine::in_model() {
        match engine::model_spawn(Box::new(f)) {
            Some(tid) => JoinHandle {
                inner: JhInner::Model(tid),
            },
            None => JoinHandle {
                inner: JhInner::Dead,
            },
        }
    } else {
        match std::thread::Builder::new().spawn(f) {
            Ok(h) => JoinHandle {
                inner: JhInner::Std(h),
            },
            Err(_) => JoinHandle {
                inner: JhInner::Dead,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// RaceCell
// ---------------------------------------------------------------------------

/// A plain (non-atomic) shared cell whose accesses are checked for data
/// races during exploration via happens-before vector clocks. Use it to
/// model payload memory published through atomics — e.g. the flight
/// ring's event words — so that insufficient synchronization surfaces as
/// a reported race instead of silent corruption.
///
/// Outside a model, accesses pass through unchecked; callers must then
/// guarantee exclusivity themselves (the type exists for model tests, not
/// production use).
pub struct RaceCell<T> {
    inner: UnsafeCell<T>,
}

// SAFETY: shared access to `inner` is only performed inside
// `engine::model_cell_access`, which runs the raw access under the
// engine's state mutex after happens-before race checking, so physical
// accesses are mutually exclusive; an actual data race in the modeled
// protocol is reported as a counterexample rather than performed.
unsafe impl<T: Send> Sync for RaceCell<T> {}
// SAFETY: sending the cell transfers the `inner` value between threads;
// `T: Send` makes that sound, and shared access remains governed by the
// engine-serialized discipline documented on the Sync impl above.
unsafe impl<T: Send> Send for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    pub const fn new(v: T) -> Self {
        Self {
            inner: UnsafeCell::new(v),
        }
    }

    /// Reads the cell, reporting a counterexample if the read races with
    /// a write under the current interleaving.
    pub fn get(&self) -> T {
        let mut out: Option<T> = None;
        let modeled = engine::model_cell_access(self.inner.get() as usize, false, &mut || {
            // SAFETY: the engine runs this under its state mutex (see the
            // `Sync` impl above), so no other access is concurrent.
            out = Some(unsafe { *self.inner.get() });
        });
        if !modeled {
            // SAFETY: outside a model the caller guarantees exclusivity
            // (documented contract of this test-support type).
            out = Some(unsafe { *self.inner.get() });
        }
        match out {
            Some(v) => v,
            // The closure always runs before `model_cell_access` returns;
            // defensive re-read to keep this arm panic-free.
            // SAFETY: as above.
            None => unsafe { *self.inner.get() },
        }
    }

    /// Writes the cell, reporting a counterexample if the write races
    /// with any concurrent access under the current interleaving.
    pub fn set(&self, v: T) {
        let modeled = engine::model_cell_access(self.inner.get() as usize, true, &mut || {
            // SAFETY: the engine runs this under its state mutex (see the
            // `Sync` impl above), so no other access is concurrent.
            unsafe { *self.inner.get() = v };
        });
        if !modeled {
            // SAFETY: outside a model the caller guarantees exclusivity
            // (documented contract of this test-support type).
            unsafe { *self.inner.get() = v };
        }
    }
}
