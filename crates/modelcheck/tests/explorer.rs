//! Self-tests for the model checker: known-good protocols must certify,
//! known-bad ones must produce counterexamples of the right kind, and the
//! DPOR-reduced exploration must agree with the full (unreduced) one.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use hicond_model::shadow::{AtomicU64, Condvar, Mutex};
use hicond_model::{explore, spawn, Config, Outcome, RaceCell, Report};

fn kind(report: &Report) -> &'static str {
    match &report.outcome {
        Outcome::Counterexample(c) => c.kind,
        Outcome::Certified => "certified",
        Outcome::Bounded => "bounded",
    }
}

#[test]
fn message_passing_release_acquire_certifies() {
    let report = explore(Config::new("mp-rel-acq"), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = spawn(move || {
            // ordering: Relaxed data store is the litmus premise — the
            // Release flag store below is the sole publication point.
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    assert!(
        matches!(report.outcome, Outcome::Certified),
        "{}",
        report.render()
    );
    // Both reader orders and the interesting read-from choices must have
    // been explored.
    assert!(report.schedules >= 2, "{}", report.render());
}

#[test]
fn message_passing_relaxed_flag_is_refuted() {
    // Same protocol with the Release publish downgraded to Relaxed: the
    // reader may observe flag == 1 but stale data. The checker must find
    // that interleaving via a value (read-from) decision.
    let report = explore(Config::new("mp-relaxed"), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = spawn(move || {
            // ordering: deliberately unsynchronized — this test asserts
            // the checker refutes exactly this missing Release edge.
            d2.store(42, Ordering::Relaxed);
            // ordering: deliberately Relaxed (the seeded bug under test).
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join();
    });
    assert_eq!(kind(&report), "assertion", "{}", report.render());
    let c = report.counterexample().expect("counterexample");
    assert!(!c.trace.is_empty(), "trace should not be empty");
    assert!(!c.schedule.is_empty(), "schedule should not be empty");
}

#[test]
fn store_buffer_relaxed_reorder_is_found() {
    // Classic store-buffer litmus: with relaxed ordering both threads may
    // read the other's variable as still 0 — a non-interleaving behavior
    // that only shows up through read-from decisions.
    let report = explore(Config::new("store-buffer"), || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let r1 = Arc::new(AtomicU64::new(u64::MAX));
        let r2 = Arc::new(AtomicU64::new(u64::MAX));
        let (x1, y1, r1w) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
        let (x2, y2, r2w) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r2));
        let a = spawn(move || {
            // ordering: all-Relaxed by design — the litmus exists to show
            // the checker finds the store-buffer reordering.
            x1.store(1, Ordering::Relaxed);
            // ordering: Relaxed result slot; read back only after join.
            r1w.store(y1.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        let b = spawn(move || {
            // ordering: all-Relaxed by design (see thread `a`).
            y2.store(1, Ordering::Relaxed);
            // ordering: Relaxed result slot; read back only after join.
            r2w.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        a.join();
        b.join();
        let (v1, v2) = (r1.load(Ordering::Relaxed), r2.load(Ordering::Relaxed));
        assert!(!(v1 == 0 && v2 == 0), "store buffering observed");
    });
    assert_eq!(kind(&report), "assertion", "{}", report.render());
}

#[test]
fn unsynchronized_cell_race_is_caught() {
    let report = explore(Config::new("cell-race"), || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = spawn(move || {
            c2.set(7);
        });
        // No synchronization with the writer: this read races.
        let _ = cell.get();
        t.join();
    });
    assert_eq!(kind(&report), "data-race", "{}", report.render());
}

#[test]
fn cell_guarded_by_release_acquire_certifies() {
    let report = explore(Config::new("cell-guarded"), || {
        let cell = Arc::new(RaceCell::new(0u64));
        let flag = Arc::new(AtomicU64::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = spawn(move || {
            c2.set(7);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(cell.get(), 7);
        }
        t.join();
    });
    assert!(
        matches!(report.outcome, Outcome::Certified),
        "{}",
        report.render()
    );
}

#[test]
fn abba_deadlock_is_detected() {
    let report = explore(Config::new("abba"), || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = spawn(move || {
            let ga = match a2.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let gb = match b2.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            drop(gb);
            drop(ga);
        });
        let gb = match b.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let ga = match a.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        drop(ga);
        drop(gb);
        t.join();
    });
    assert_eq!(kind(&report), "deadlock", "{}", report.render());
}

#[test]
fn condvar_handoff_certifies() {
    let report = explore(Config::new("cv-handoff"), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = spawn(move || {
            let (m, cv) = &*s2;
            let mut g = match m.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let mut g = match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        while !*g {
            g = match cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        assert!(*g);
        drop(g);
        t.join();
    });
    assert!(
        matches!(report.outcome, Outcome::Certified),
        "{}",
        report.render()
    );
}

#[test]
fn lost_wakeup_is_a_deadlock() {
    // Notify before the waiter sleeps, with the flag check and the wait
    // not atomic: under the schedule where the notify lands first and the
    // flag write is missing, the waiter sleeps forever.
    let report = explore(Config::new("lost-wakeup"), || {
        let state = Arc::new((Mutex::new(()), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = spawn(move || {
            // Bug on purpose: no flag write before notify.
            s2.1.notify_one();
        });
        let (m, cv) = &*state;
        let g = match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        // Bug on purpose: unconditional wait with no predicate.
        let g = match cv.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        drop(g);
        t.join();
    });
    assert_eq!(kind(&report), "deadlock", "{}", report.render());
}

#[test]
fn rmw_counter_certifies_and_dpor_agrees_with_full() {
    let run = |full: bool| {
        let mut cfg = Config::new(if full { "counter-full" } else { "counter-dpor" });
        cfg.full_schedule_points = full;
        explore(cfg, || {
            let n = Arc::new(AtomicU64::new(0));
            let (n1, n2) = (Arc::clone(&n), Arc::clone(&n));
            let a = spawn(move || {
                n1.fetch_add(1, Ordering::AcqRel);
            });
            let b = spawn(move || {
                n2.fetch_add(2, Ordering::AcqRel);
            });
            a.join();
            b.join();
            assert_eq!(n.load(Ordering::Acquire), 3);
        })
    };
    let dpor = run(false);
    let full = run(true);
    assert!(
        matches!(dpor.outcome, Outcome::Certified),
        "{}",
        dpor.render()
    );
    assert!(
        matches!(full.outcome, Outcome::Certified),
        "{}",
        full.render()
    );
    // The reduction must not explore more schedules than the full tree.
    assert!(
        dpor.schedules <= full.schedules,
        "dpor {} > full {}",
        dpor.schedules,
        full.schedules
    );
}

#[test]
fn mutex_guarded_counter_certifies() {
    let report = explore(Config::new("mutex-counter"), || {
        let n = Arc::new(Mutex::new(0u64));
        let (n1, n2) = (Arc::clone(&n), Arc::clone(&n));
        let a = spawn(move || {
            let mut g = match n1.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *g += 1;
        });
        let b = spawn(move || {
            let mut g = match n2.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *g += 2;
        });
        a.join();
        b.join();
        let g = match n.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        assert_eq!(*g, 3);
    });
    assert!(
        matches!(report.outcome, Outcome::Certified),
        "{}",
        report.render()
    );
}

#[test]
fn preemption_bound_reports_bounded() {
    let mut cfg = Config::new("bounded");
    cfg.preemption_bound = Some(0);
    let report = explore(cfg, || {
        let x = Arc::new(AtomicU64::new(0));
        let (x1, x2) = (Arc::clone(&x), Arc::clone(&x));
        let a = spawn(move || {
            x1.fetch_add(1, Ordering::AcqRel);
            x1.fetch_add(1, Ordering::AcqRel);
        });
        let b = spawn(move || {
            x2.fetch_add(1, Ordering::AcqRel);
            x2.fetch_add(1, Ordering::AcqRel);
        });
        a.join();
        b.join();
        assert_eq!(x.load(Ordering::Acquire), 4);
    });
    // No counterexample, but pruning must be disclosed.
    assert!(report.passed(), "{}", report.render());
    assert!(
        matches!(report.outcome, Outcome::Bounded),
        "{}",
        report.render()
    );
}

#[test]
fn schedule_budget_reports_bounded() {
    let cfg = Config::new("budget").with_max_schedules(2);
    let report = explore(cfg, || {
        let x = Arc::new(AtomicU64::new(0));
        let (x1, x2) = (Arc::clone(&x), Arc::clone(&x));
        let a = spawn(move || {
            x1.fetch_add(1, Ordering::AcqRel);
        });
        let b = spawn(move || {
            x2.fetch_add(1, Ordering::AcqRel);
        });
        a.join();
        b.join();
    });
    assert!(report.passed(), "{}", report.render());
    assert_eq!(report.schedules, 2, "{}", report.render());
}

#[test]
fn shadow_types_pass_through_outside_model() {
    // No explore(): everything hits the real std primitives.
    let a = AtomicU64::new(5);
    assert_eq!(a.load(Ordering::SeqCst), 5);
    a.store(6, Ordering::SeqCst);
    assert_eq!(a.fetch_add(1, Ordering::SeqCst), 6);
    assert_eq!(
        a.compare_exchange(7, 9, Ordering::SeqCst, Ordering::SeqCst),
        Ok(7)
    );
    assert_eq!(a.load(Ordering::SeqCst), 9);
    let m = Mutex::new(1u64);
    {
        let mut g = match m.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *g = 2;
    }
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    assert_eq!(*g, 2);
    drop(g);
    let cell = RaceCell::new(3u64);
    cell.set(4);
    assert_eq!(cell.get(), 4);
    let h = spawn(|| {});
    h.join();
    assert!(!hicond_model::in_model());
}
