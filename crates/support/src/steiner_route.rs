//! The 3-hop routing step of Theorem 3.5, constructed explicitly.
//!
//! The proof routes every quotient edge `(rᵢ, rⱼ)` of `S_P` through the
//! boundary edges of the original graph: each `e = (u, v)` with
//! `u ∈ Vᵢ, v ∈ Vⱼ` carries the fraction `w(e)/cap(Vᵢ, Vⱼ)` of the
//! quotient edge along the path `rᵢ → u → v → rⱼ` inside `S_P + A − Q`.
//! "The capacities along p(e) are at least w(e)", so the embedding has
//! **dilation 3 and congestion ≤ 1**, giving
//! `σ(S_P + A, S_P + A − Q) ≤ 3`. This module builds the guest, the host
//! and the fractional embedding so the claim is checkable, edge by edge.

use crate::splitting::FractionalEmbedding;
use hicond_graph::{Graph, GraphBuilder, Partition};

/// The pieces of the Theorem 3.5 routing argument on the `(n+m)`-vertex
/// Steiner vertex set (graph vertices `0..n`, roots `n..n+m`).
pub struct SteinerRouting {
    /// Guest: the quotient `Q` placed on the root vertices.
    pub quotient: Graph,
    /// Host: `S_P + A − Q` = volume stars plus the original edges.
    pub host: Graph,
    /// The fractional 3-hop embedding of the guest into the host.
    pub embedding: FractionalEmbedding,
}

/// Builds the Theorem 3.5 routing structures for `(g, p)`.
pub fn steiner_routing(g: &Graph, p: &Partition) -> SteinerRouting {
    let n = g.num_vertices();
    let m = p.num_clusters();
    // Host: stars (u, root(u)) with vol weights, plus A's edges.
    let mut hb = GraphBuilder::with_capacity(n + m, n + g.num_edges());
    for v in 0..n {
        if g.vol(v) > 0.0 {
            hb.add_edge(v, n + p.cluster_of(v), g.vol(v));
        }
    }
    for e in g.edges() {
        hb.add_edge(e.u as usize, e.v as usize, e.w);
    }
    let host = hb.build();
    // Guest: quotient edges on roots.
    let q = p.quotient_graph(g);
    let mut qb = GraphBuilder::with_capacity(n + m, q.num_edges());
    for e in q.edges() {
        qb.add_edge(n + e.u as usize, n + e.v as usize, e.w);
    }
    let quotient = qb.build();
    // Embedding: for every quotient edge, split across boundary edges.
    let mut paths: Vec<Vec<(Vec<usize>, f64)>> = vec![Vec::new(); quotient.num_edges()];
    // Map cluster pair -> quotient edge id.
    let mut pair_to_eid = std::collections::HashMap::new();
    for (eid, e) in quotient.edges().iter().enumerate() {
        let (i, j) = (e.u as usize - n, e.v as usize - n);
        pair_to_eid.insert((i.min(j), i.max(j)), eid);
    }
    for e in g.edges() {
        let (u, v) = (e.u as usize, e.v as usize);
        let (ci, cj) = (p.cluster_of(u), p.cluster_of(v));
        if ci == cj {
            continue;
        }
        let key = (ci.min(cj), ci.max(cj));
        let eid = pair_to_eid[&key];
        let cap = quotient.edges()[eid].w;
        paths[eid].push((vec![n + ci, u, v, n + cj], e.w / cap));
    }
    SteinerRouting {
        quotient,
        host,
        embedding: FractionalEmbedding { paths },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support_dense;
    use hicond_graph::generators;

    fn decomposition(g: &Graph, k: usize) -> Partition {
        hicond_core::decompose_fixed_degree(
            g,
            &hicond_core::FixedDegreeOptions {
                k,
                ..Default::default()
            },
        )
    }

    #[test]
    fn embedding_valid_dilation_3_congestion_1() {
        for (g, k) in [
            (
                generators::grid2d(6, 6, |u, v| 1.0 + ((u + v) % 3) as f64),
                4,
            ),
            (generators::triangulated_grid(6, 6, 2), 4),
            (generators::cycle(20, |i| 1.0 + (i % 5) as f64), 3),
        ] {
            let p = decomposition(&g, k);
            let r = steiner_routing(&g, &p);
            r.embedding.validate(&r.quotient, &r.host).unwrap();
            let (c, d) = r.embedding.congestion_dilation(&r.quotient, &r.host);
            assert!(d <= 3, "dilation {d}");
            // "Capacities along p(e) are at least w(e)": per-edge load is
            // exactly its own weight on the middle hop and ≤ vol on stars.
            assert!(c <= 1.0 + 1e-9, "congestion {c}");
        }
    }

    #[test]
    fn support_bound_holds_and_is_3() {
        let g = generators::grid2d(5, 5, |_, _| 1.0);
        let p = decomposition(&g, 4);
        let r = steiner_routing(&g, &p);
        let bound = r.embedding.support_bound(&r.quotient, &r.host);
        assert!(bound <= 3.0 + 1e-9, "bound {bound}");
        // Exact support of guest against host (dense; both graphs live on
        // the same n+m vertex set; restrict to the host's connected part).
        // Guest is supported on roots only; add host to make the pencil
        // well-posed as in the proof: σ(S_P + A, S_P + A − Q) ≤ 1 + σ(Q, host).
        let sigma = support_dense(&r.quotient, &r.host);
        assert!(
            sigma <= bound + 1e-6,
            "σ(Q, host) = {sigma} exceeds embedding bound {bound}"
        );
    }

    #[test]
    fn lemma_3_2_minimization_characterization() {
        // Lemma 3.2: σ(B_S, A) = max_x min_y ([x;y]ᵀ S [x;y]) / (xᵀAx),
        // and the inner minimum is attained at y*(x) = (Q + D_Q)⁻¹ Vᵀ x —
        // the Schur-complement identity xᵀBx = min_y [x;y]ᵀS[x;y].
        // Check the identity pointwise for several x on a concrete S_P.
        use hicond_linalg::dense::CholeskyFactor;
        use hicond_linalg::schur::schur_complement;
        let g = generators::grid2d(4, 4, |u, v| 1.0 + ((u + v) % 3) as f64);
        let n = g.num_vertices();
        let p = decomposition(&g, 4);
        let m = p.num_clusters();
        let s = hicond_precond::steiner_laplacian(&g, &p);
        let ids: Vec<usize> = (n..n + m).collect();
        let (b, _) = schur_complement(&s, &ids);
        // Steiner block (Q + D_Q) and coupling V from S.
        let steiner_block = s.principal_submatrix(&ids);
        let chol = CholeskyFactor::factor(&steiner_block.to_dense()).expect("Q + D_Q is SPD");
        for seed in 0..4u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| ((((i as u64 + seed) * 48271) % 101) as f64 - 50.0) / 50.0)
                .collect();
            // Vᵀ x: rows n.. of S applied to [x; 0].
            let mut ext = x.clone();
            ext.extend(std::iter::repeat(0.0).take(m));
            let s_ext = s.mul(&ext);
            let vtx: Vec<f64> = (0..m).map(|j| -s_ext[n + j]).collect();
            let ystar = chol.solve(&vtx);
            // Form at the minimizer equals xᵀBx.
            let mut full = x.clone();
            full.extend(ystar.iter().copied());
            let sf = s.mul(&full);
            let quad_min: f64 = full.iter().zip(&sf).map(|(a, c)| a * c).sum();
            let bx = b.mul(&x);
            let quad_b: f64 = x.iter().zip(&bx).map(|(a, c)| a * c).sum();
            assert!(
                (quad_min - quad_b).abs() < 1e-8 * quad_b.abs().max(1.0),
                "min form {quad_min} vs xᵀBx {quad_b}"
            );
            // Any other y is no better.
            let mut worse = x.clone();
            worse.extend(ystar.iter().map(|v| v + 0.1));
            let sw = s.mul(&worse);
            let quad_w: f64 = worse.iter().zip(&sw).map(|(a, c)| a * c).sum();
            assert!(quad_w >= quad_min - 1e-10);
        }
    }

    #[test]
    fn theorem_3_5_first_inequality_end_to_end() {
        // The paper states σ(S_P + A, S_P + A − Q) ≤ 3 from the dilation-3
        // congestion-1 routing. Strictly, the splitting lemma must divide
        // the host's capacity between supporting *itself* and carrying the
        // routed Q (B₁ = αX for X, B₂ = (1−α)X for Q), giving
        // max(1/α, 3/(1−α)) which optimizes to 4 at α = 1/4. Measured
        // values land between 3 and 4 (e.g. ≈ 3.3 here) — the paper's 3 is
        // the no-reuse shortcut; the end-to-end Theorem 3.5 bound remains
        // comfortably valid either way (see `exp_support`).
        let g = generators::triangulated_grid(5, 5, 7);
        let p = decomposition(&g, 4);
        let r = steiner_routing(&g, &p);
        let n = g.num_vertices();
        let m = p.num_clusters();
        let mut full = GraphBuilder::new(n + m);
        for e in r.host.edges() {
            full.add_edge(e.u as usize, e.v as usize, e.w);
        }
        for e in r.quotient.edges() {
            full.add_edge(e.u as usize, e.v as usize, e.w);
        }
        let sp_plus_a = full.build();
        let sigma = support_dense(&sp_plus_a, &r.host);
        assert!(sigma <= 4.0 + 1e-6, "σ(S_P+A, S_P+A−Q) = {sigma} > 4");
        assert!(sigma >= 1.0 - 1e-9);
    }
}
