//! Support numbers σ(A,B) and condition numbers κ(A,B).
//!
//! Exact values come from the dense generalized eigensolver
//! (`hicond-linalg::dense::pencil_eigen_dense`) with the shared
//! constant-vector kernel projected out; large problems use the CG-based
//! pencil power iteration. Both paths require the graphs/matrices to share
//! that kernel — i.e. connected graphs on the same vertex set.

use hicond_graph::{laplacian, Graph};
use hicond_linalg::dense::pencil_eigen_dense;
use hicond_linalg::pencil::{pencil_lambda_max, PencilOptions};
use hicond_linalg::CsrMatrix;

/// Exact `σ(A, B) = λ_max(A, B)` for two Laplacian-like symmetric PSD
/// matrices whose common nullspace is the constant vector. O(n³).
pub fn support_matrices_dense(a: &CsrMatrix, b: &CsrMatrix) -> f64 {
    assert_eq!(a.nrows(), b.nrows(), "support: size mismatch");
    let ones = vec![1.0; a.nrows()];
    let vals = pencil_eigen_dense(&a.to_dense(), &b.to_dense(), &ones);
    // audit: allow(panic-path) — the pencil of an n >= 1 matrix has a nonempty spectrum; n = 0 never reaches here (Laplacians of graphs have at least one vertex)
    *vals.last().expect("nonempty spectrum")
}

/// Exact `σ(A, B)` for two connected graphs on the same vertex set.
pub fn support_dense(a: &Graph, b: &Graph) -> f64 {
    assert_eq!(a.num_vertices(), b.num_vertices());
    support_matrices_dense(&laplacian(a), &laplacian(b))
}

/// Iterative `σ(A, B)` estimate for large graph pairs.
pub fn support_iterative(a: &Graph, b: &Graph, opts: &PencilOptions) -> f64 {
    pencil_lambda_max(&laplacian(a), &laplacian(b), opts)
}

/// Exact condition number `κ(A, B) = σ(A,B)·σ(B,A)` (Definition 5.1).
pub fn condition_number_dense(a: &Graph, b: &Graph) -> f64 {
    support_dense(a, b) * support_dense(b, a)
}

/// Iterative condition number estimate.
pub fn condition_number_iterative(a: &Graph, b: &Graph, opts: &PencilOptions) -> f64 {
    support_iterative(a, b, opts) * support_iterative(b, a, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;

    #[test]
    fn support_of_subgraph_at_least_one() {
        // B ⊆ A (same vertex set, fewer edges): σ(A, B) ≥ 1 and σ(B, A) ≤ 1.
        let a = generators::cycle(8, |_| 1.0);
        let b = generators::path(8, |_| 1.0); // cycle minus one edge
        let s_ab = support_dense(&a, &b);
        let s_ba = support_dense(&b, &a);
        assert!(s_ab >= 1.0 - 1e-9, "σ(A,B) = {s_ab}");
        assert!(s_ba <= 1.0 + 1e-9, "σ(B,A) = {s_ba}");
        // κ ≥ 1 always.
        assert!(s_ab * s_ba >= 1.0 - 1e-9);
    }

    #[test]
    fn support_scaling_law() {
        // σ(cA, A) = c.
        let a = generators::triangulated_grid(4, 4, 1);
        let c = 3.5;
        let scaled = a.map_weights(|_, e| e.w * c);
        let s = support_dense(&scaled, &a);
        assert!((s - c).abs() < 1e-8, "{s}");
    }

    #[test]
    fn cycle_vs_path_known_support() {
        // For unweighted C_n vs P_n (= C_n minus edge e), σ(C, P) = 1 + stretch
        // contribution: xᵀCx = xᵀPx + (x_1-x_n)², and (x_1-x_n)² ≤ (n-1)·xᵀPx
        // by Cauchy-Schwarz along the path, with equality for linear x.
        // Hence σ(C, P) = n (P plus the edge supported at stretch n-1, plus 1).
        let n = 6;
        let c = generators::cycle(n, |_| 1.0);
        let p = generators::path(n, |_| 1.0);
        let s = support_dense(&c, &p);
        assert!((s - n as f64).abs() < 1e-7, "σ = {s}, expected {n}");
    }

    #[test]
    fn iterative_matches_dense() {
        let a = generators::triangulated_grid(5, 5, 3);
        let tree_ids = hicond_core::spanning::mst_max_kruskal(&a);
        let b = hicond_core::spanning::subgraph_of_edges(&a, &tree_ids);
        let exact = support_dense(&a, &b);
        let approx = support_iterative(
            &a,
            &b,
            &PencilOptions {
                max_outer: 300,
                outer_tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(
            (exact - approx).abs() < 2e-2 * exact,
            "dense {exact} vs iterative {approx}"
        );
    }

    #[test]
    fn condition_number_of_self_is_one() {
        let a = generators::grid2d(4, 4, |u, v| 1.0 + ((u + v) % 3) as f64);
        let k = condition_number_dense(&a, &a);
        assert!((k - 1.0).abs() < 1e-8, "{k}");
    }

    #[test]
    fn condition_number_scale_invariant() {
        let a = generators::grid2d(4, 3, |_, _| 1.0);
        let b = a.map_weights(|_, e| e.w * 7.0);
        let k = condition_number_dense(&a, &b);
        assert!((k - 1.0).abs() < 1e-8, "{k}");
    }
}
