//! Star complements and Lemma 3.4.
//!
//! Definition 3.1 attaches to every cluster `V_i` a star `T_i` whose root
//! connects to each cluster vertex `u` with weight `vol_A(u)`. Lemma 3.4
//! bounds the support of the star's Schur complement against the cluster
//! graph: with star weights `c_i ≤ γ⁻¹·a_i` (and the paper's condition on
//! the heaviest vertex), `σ(S, A) ≤ 2/(γ·φ_A²)` where `φ_A` is the
//! conductance of `A`.

use hicond_linalg::schur::schur_complement;
use hicond_linalg::{CooBuilder, CsrMatrix};

/// Laplacian of the star with `weights.len()` leaves (vertices
/// `0..n`) and root at index `n`, edge `i—root` of weight `weights[i]`.
pub fn star_laplacian(weights: &[f64]) -> CsrMatrix {
    let n = weights.len();
    let mut b = CooBuilder::with_capacity(n + 1, n + 1, 3 * n + 1);
    let mut total = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w > 0.0, "star weights must be positive");
        b.push(i, i, w);
        b.push_sym(i, n, -w);
        total += w;
    }
    b.push(n, n, total);
    b.build()
}

/// Exact `σ(B_S, A)` where `B_S` is the Schur complement of the star with
/// the given leaf `weights` after eliminating its root, and `a` is the
/// Laplacian of the cluster graph on the same `n` vertices. Dense; for
/// verification and the E5 experiment.
pub fn star_schur_support_exact(weights: &[f64], a: &CsrMatrix) -> f64 {
    let n = weights.len();
    assert_eq!(a.nrows(), n, "cluster size mismatch");
    let s = star_laplacian(weights);
    let (b, kept) = schur_complement(&s, &[n]);
    debug_assert_eq!(kept.len(), n);
    crate::support::support_matrices_dense(&b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::{exact_conductance, generators, laplacian, Graph};

    /// Lemma 3.4 right-hand side: 2/(γ·φ²).
    fn lemma_bound(gamma: f64, phi: f64) -> f64 {
        2.0 / (gamma * phi * phi)
    }

    #[test]
    fn star_laplacian_shape() {
        let s = star_laplacian(&[1.0, 2.0, 3.0]);
        assert_eq!(s.nrows(), 4);
        assert_eq!(s.get(3, 3), 6.0);
        assert_eq!(s.get(0, 3), -1.0);
        // Laplacian row sums vanish.
        for r in 0..4 {
            let sum: f64 = s.row(r).map(|(_, v)| v).sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn schur_of_star_is_weighted_clique() {
        let s = star_laplacian(&[1.0, 2.0, 3.0]);
        let (b, _) = schur_complement(&s, &[3]);
        // B_ij = -c_i c_j / total (paper Definition 5.5).
        assert!((b.get(0, 1) + 1.0 * 2.0 / 6.0).abs() < 1e-12);
        assert!((b.get(1, 2) + 2.0 * 3.0 / 6.0).abs() < 1e-12);
    }

    /// Checks Lemma 3.4 on a cluster graph with the Definition 3.1 star
    /// (c_u = vol(u), i.e. γ = min_u internal/vol — here the cluster is the
    /// whole graph so γ = 1).
    fn check_lemma_on_graph(g: &Graph) {
        let n = g.num_vertices();
        let a = laplacian(g);
        let phi = exact_conductance(g);
        assert!(phi > 0.0, "test graph must be connected");
        // γ = 1 case: star weights exactly the volumes.
        let vols: Vec<f64> = (0..n).map(|v| g.vol(v)).collect();
        let sigma = star_schur_support_exact(&vols, &a);
        let bound = lemma_bound(1.0, phi);
        assert!(
            sigma <= bound + 1e-6,
            "σ = {sigma} exceeds Lemma 3.4 bound {bound} (φ = {phi})"
        );
    }

    #[test]
    fn lemma_34_on_cycles_paths_cliques() {
        check_lemma_on_graph(&generators::cycle(6, |_| 1.0));
        check_lemma_on_graph(&generators::cycle(9, |i| 1.0 + (i % 4) as f64));
        check_lemma_on_graph(&generators::path(7, |_| 1.0));
        check_lemma_on_graph(&generators::complete(6, 1.0));
        check_lemma_on_graph(&generators::star(8, |i| i as f64));
    }

    #[test]
    fn lemma_34_with_gamma_below_one() {
        // Star weights c_i = γ⁻¹·vol_i with γ = 1/2 (case i of the lemma).
        let g = generators::cycle(8, |_| 1.0);
        let a = laplacian(&g);
        let gamma: f64 = 0.5;
        let weights: Vec<f64> = (0..8).map(|v| g.vol(v) / gamma).collect();
        let sigma = star_schur_support_exact(&weights, &a);
        let phi = exact_conductance(&g);
        assert!(
            sigma <= lemma_bound(gamma, phi) + 1e-6,
            "σ = {sigma} vs bound {}",
            lemma_bound(gamma, phi)
        );
    }

    #[test]
    fn lemma_34_heavy_vertex_case() {
        // Case (ii): the heaviest vertex dominates the rest; its star
        // weight may exceed γ⁻¹ a_n. Cluster: star graph center 0 heavy.
        let g = generators::star(6, |_| 1.0); // center vol 5, leaves vol 1
        let a = laplacian(&g);
        let gamma: f64 = 1.0;
        // Leaves capped by γ⁻¹·vol; center unbounded (case ii applies since
        // vol(center) = Σ others).
        let mut weights: Vec<f64> = (0..6).map(|v| g.vol(v) / gamma).collect();
        weights[0] *= 10.0; // exaggerate the center's star weight
        let sigma = star_schur_support_exact(&weights, &a);
        let phi = exact_conductance(&g);
        assert!(
            sigma <= lemma_bound(gamma, phi) + 1e-6,
            "σ = {sigma} vs {}",
            lemma_bound(gamma, phi)
        );
    }

    #[test]
    fn support_tightness_sanity() {
        // For the unweighted triangle with the volume star (c = 2,2,2), the
        // Schur complement is exactly (2/3)·K₃, so σ(B, A) = 2/3 — well
        // below the Lemma 3.4 bound.
        let g = generators::complete(3, 1.0);
        let a = laplacian(&g);
        let vols = vec![2.0, 2.0, 2.0];
        let sigma = star_schur_support_exact(&vols, &a);
        assert!((sigma - 2.0 / 3.0).abs() < 1e-9, "σ = {sigma}");
        assert!(sigma <= lemma_bound(1.0, exact_conductance(&g)) + 1e-9);
    }
}
