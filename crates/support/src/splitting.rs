//! The splitting lemma and embedding-based support bounds.
//!
//! Lemma 5.4: if `A = Σ Aᵢ` and `B = Σ Bᵢ` then
//! `σ(A, B) ≤ maxᵢ σ(Aᵢ, Bᵢ)`. The workhorse corollary used in
//! Theorem 3.5 is the congestion–dilation bound: if every edge of `H`
//! embeds into `G` along a path, then
//! `σ(H, G) ≤ congestion · dilation`, where the congestion of an edge `f`
//! of `G` is the total embedded weight crossing `f` divided by `w(f)` and
//! the dilation is the maximum path length. The paper's Steiner argument
//! routes each quotient edge through a 3-hop path (`σ ≤ 3` with congestion
//! 1).

use hicond_graph::Graph;

/// A path embedding of the graph `host ⊇ paths` structure: for every edge
/// index `e` of the *guest* graph, a path in the *host* given as a vertex
/// sequence.
#[derive(Debug, Clone)]
pub struct PathEmbedding {
    /// `paths[e]` = host vertex sequence realizing guest edge `e`.
    pub paths: Vec<Vec<usize>>,
}

impl PathEmbedding {
    /// Validates the embedding: each path must connect the guest edge's
    /// endpoints and traverse host edges that exist.
    pub fn validate(&self, guest: &Graph, host: &Graph) -> Result<(), String> {
        if self.paths.len() != guest.num_edges() {
            return Err(format!(
                "expected {} paths, got {}",
                guest.num_edges(),
                self.paths.len()
            ));
        }
        for (e, path) in self.paths.iter().enumerate() {
            let ge = guest.edges()[e];
            if path.len() < 2 {
                return Err(format!("path {e} too short"));
            }
            let (a, b) = (path[0], path[path.len() - 1]);
            let ok_ends = (a == ge.u as usize && b == ge.v as usize)
                || (a == ge.v as usize && b == ge.u as usize);
            if !ok_ends {
                return Err(format!("path {e} does not connect its endpoints"));
            }
            for w in path.windows(2) {
                if !host.has_edge(w[0], w[1]) {
                    return Err(format!("path {e} uses missing host edge {w:?}"));
                }
            }
        }
        Ok(())
    }

    /// `(congestion, dilation)` of the embedding.
    pub fn congestion_dilation(&self, guest: &Graph, host: &Graph) -> (f64, usize) {
        let mut load = vec![0.0; host.num_edges()];
        let mut dilation = 0usize;
        for (e, path) in self.paths.iter().enumerate() {
            let wg = guest.edges()[e].w;
            dilation = dilation.max(path.len() - 1);
            for w in path.windows(2) {
                // Identify host edge id.
                let eid = host
                    .neighbors(w[0])
                    .find(|&(u, _, _)| u == w[1])
                    .map(|(_, _, eid)| eid)
                    // audit: allow(panic-path) — precondition: the caller ran validate(), which rejects any path step that is not a host edge
                    .expect("validated embedding");
                load[eid] += wg;
            }
        }
        let congestion = host
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| load[i] / e.w)
            .fold(0.0, f64::max);
        (congestion, dilation)
    }
}

/// The congestion·dilation support bound `σ(guest, host) ≤ c·d`.
pub fn embedding_support_bound(emb: &PathEmbedding, guest: &Graph, host: &Graph) -> f64 {
    // audit: allow(panic-path) — a malformed embedding is a caller bug in this theorem-checking utility; the panic carries the validator's diagnosis
    emb.validate(guest, host).expect("invalid embedding");
    let (c, d) = emb.congestion_dilation(guest, host);
    c * d as f64
}

/// A *fractional* path embedding: every guest edge routes along several
/// host paths, each carrying a fraction of the edge's weight. This is the
/// form Theorem 3.5's proof uses: a quotient edge `(rᵢ, rⱼ)` of capacity
/// `cap(Vᵢ, Vⱼ)` splits across the original boundary edges `e = (u, v)`,
/// each routed `rᵢ → u → v → rⱼ` with fraction `w(e)/cap(Vᵢ, Vⱼ)` —
/// dilation 3, congestion 1.
#[derive(Debug, Clone)]
pub struct FractionalEmbedding {
    /// `paths[e]` = list of `(host vertex sequence, fraction)` for guest
    /// edge `e`; fractions must sum to 1.
    pub paths: Vec<Vec<(Vec<usize>, f64)>>,
}

impl FractionalEmbedding {
    /// Validates endpoints, host edges, and unit fraction sums.
    pub fn validate(&self, guest: &Graph, host: &Graph) -> Result<(), String> {
        if self.paths.len() != guest.num_edges() {
            return Err(format!(
                "expected {} path bundles, got {}",
                guest.num_edges(),
                self.paths.len()
            ));
        }
        for (e, bundle) in self.paths.iter().enumerate() {
            let ge = guest.edges()[e];
            let mut total = 0.0;
            for (path, frac) in bundle {
                if path.len() < 2 {
                    return Err(format!("bundle {e}: path too short"));
                }
                let (a, b) = (path[0], path[path.len() - 1]);
                let ok = (a == ge.u as usize && b == ge.v as usize)
                    || (a == ge.v as usize && b == ge.u as usize);
                if !ok {
                    return Err(format!("bundle {e}: path endpoints wrong"));
                }
                for w in path.windows(2) {
                    if !host.has_edge(w[0], w[1]) {
                        return Err(format!("bundle {e}: missing host edge {w:?}"));
                    }
                }
                if *frac < 0.0 {
                    return Err(format!("bundle {e}: negative fraction"));
                }
                total += frac;
            }
            if (total - 1.0).abs() > 1e-9 {
                return Err(format!("bundle {e}: fractions sum to {total}"));
            }
        }
        Ok(())
    }

    /// `(congestion, dilation)` with fractional loads.
    pub fn congestion_dilation(&self, guest: &Graph, host: &Graph) -> (f64, usize) {
        let mut load = vec![0.0; host.num_edges()];
        let mut dilation = 0usize;
        for (e, bundle) in self.paths.iter().enumerate() {
            let wg = guest.edges()[e].w;
            for (path, frac) in bundle {
                dilation = dilation.max(path.len() - 1);
                for w in path.windows(2) {
                    let eid = host
                        .neighbors(w[0])
                        .find(|&(u, _, _)| u == w[1])
                        .map(|(_, _, eid)| eid)
                        // audit: allow(panic-path) — precondition: the caller ran validate(), which rejects any path step that is not a host edge
                        .expect("validated embedding");
                    load[eid] += wg * frac;
                }
            }
        }
        let congestion = host
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| load[i] / e.w)
            .fold(0.0, f64::max);
        (congestion, dilation)
    }

    /// The `σ(guest, host) ≤ congestion · dilation` bound.
    pub fn support_bound(&self, guest: &Graph, host: &Graph) -> f64 {
        // audit: allow(panic-path) — a malformed embedding is a caller bug in this theorem-checking utility; the panic carries the validator's diagnosis
        self.validate(guest, host).expect("invalid embedding");
        let (c, d) = self.congestion_dilation(guest, host);
        c * d as f64
    }
}

/// The splitting lemma bound: given index-aligned splittings
/// `A = Σ a_parts[i]` and `B = Σ b_parts[i]` (as graphs on the same vertex
/// set), returns `maxᵢ σ(a_parts[i], b_parts[i])` computed densely on the
/// union support of each pair. Parts must be connected on their common
/// support; pass small pieces (edges vs paths), which is how the lemma is
/// used in practice.
pub fn splitting_bound(a_parts: &[Graph], b_parts: &[Graph]) -> f64 {
    assert_eq!(a_parts.len(), b_parts.len(), "splitting: part count");
    let mut worst = 0.0f64;
    for (a, b) in a_parts.iter().zip(b_parts) {
        // Restrict to vertices touched by either part to keep the pencil
        // non-degenerate.
        let touched: Vec<usize> = (0..a.num_vertices())
            .filter(|&v| a.degree(v) > 0 || b.degree(v) > 0)
            .collect();
        if touched.is_empty() {
            continue;
        }
        let sa = a.induced_subgraph(&touched);
        let sb = b.induced_subgraph(&touched);
        worst = worst.max(crate::support::support_dense(&sa, &sb));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::generators;
    use hicond_graph::Graph;

    #[test]
    fn edge_into_path_embedding() {
        // Guest: single edge 0-3 of weight 1; host: path 0-1-2-3 weight 1.
        let guest = Graph::from_edges(4, &[(0, 3, 1.0)]);
        let host = generators::path(4, |_| 1.0);
        let emb = PathEmbedding {
            paths: vec![vec![0, 1, 2, 3]],
        };
        emb.validate(&guest, &host).unwrap();
        let (c, d) = emb.congestion_dilation(&guest, &host);
        assert_eq!(d, 3);
        assert!((c - 1.0).abs() < 1e-12);
        let bound = embedding_support_bound(&emb, &guest, &host);
        // Exact support of one edge against a 3-path is 3; bound equals it.
        let exact = crate::support::support_dense(&guest, &host);
        assert!((exact - 3.0).abs() < 1e-8);
        assert!(bound >= exact - 1e-9);
    }

    #[test]
    fn congestion_accumulates() {
        // Two guest edges routed over the same host edge.
        let guest = Graph::from_edges(3, &[(0, 1, 2.0), (0, 2, 1.0)]);
        let host = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let emb = PathEmbedding {
            paths: vec![vec![0, 1], vec![0, 1, 2]],
        };
        emb.validate(&guest, &host).unwrap();
        let (c, d) = emb.congestion_dilation(&guest, &host);
        // Host edge (0,1) carries 2 + 1 = 3 on weight 1.
        assert!((c - 3.0).abs() < 1e-12);
        assert_eq!(d, 2);
        // Bound dominates exact support.
        let exact = crate::support::support_dense(&guest, &host);
        assert!(
            c * d as f64 >= exact - 1e-9,
            "bound {} < exact {exact}",
            c * d as f64
        );
    }

    #[test]
    fn invalid_embedding_rejected() {
        let guest = Graph::from_edges(3, &[(0, 2, 1.0)]);
        let host = generators::path(3, |_| 1.0);
        let bad_ends = PathEmbedding {
            paths: vec![vec![0, 1]],
        };
        assert!(bad_ends.validate(&guest, &host).is_err());
        let bad_edge = PathEmbedding {
            paths: vec![vec![0, 2]],
        };
        assert!(bad_edge.validate(&guest, &host).is_err());
    }

    #[test]
    fn splitting_lemma_holds() {
        // A = C4 split edge-by-edge; B = C4 as well (identity split):
        // each part σ = 1, total σ(A,B) = 1 ≤ max = 1.
        let n = 4;
        let a = generators::cycle(n, |_| 1.0);
        let parts_a: Vec<Graph> = (0..n)
            .map(|i| Graph::from_edges(n, &[(i, (i + 1) % n, 1.0)]))
            .collect();
        let bound = splitting_bound(&parts_a, &parts_a);
        assert!((bound - 1.0).abs() < 1e-9);
        let exact = crate::support::support_dense(&a, &a);
        assert!(exact <= bound + 1e-9);
    }

    #[test]
    fn splitting_bound_dominates_true_support() {
        // A = cycle, B = path: split A into {path edges} + {closing edge},
        // B into {path} + {whole path again}... simplest valid split:
        // A_1 = path part (supported by itself), A_2 = closing edge
        // (supported by the whole path): max(1, n-1·...) dominates σ(A,B).
        let n = 5;
        let a = generators::cycle(n, |_| 1.0);
        let path_edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let a1 = Graph::from_edges(n, &path_edges);
        let a2 = Graph::from_edges(n, &[(0, n - 1, 1.0)]);
        let b1 = a1.clone();
        let b2 = a1.clone();
        let bound = splitting_bound(&[a1, a2], &[b1, b2]);
        let b = generators::path(n, |_| 1.0);
        // B total here is 2×path; σ(A, 2·path) ≤ bound.
        let b2x = b.map_weights(|_, e| e.w * 2.0);
        let exact = crate::support::support_dense(&a, &b2x);
        assert!(
            exact <= bound + 1e-9,
            "splitting violated: exact {exact} > bound {bound}"
        );
    }
}
