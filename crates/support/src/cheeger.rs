//! Cheeger's inequality utilities.
//!
//! Lemma 3.4's proof uses `λ_min(D⁻¹A) ≥ φ²_A / 2` — one side of Cheeger's
//! inequality \[6\] — together with Gershgorin's bound
//! `λ_max(D⁻¹B) ≤ 2`. This module packages both bounds, and the full
//! sandwich `λ₂/2 ≤ φ ≤ √(2·λ₂)` for the normalized Laplacian, as
//! checkable quantities.

use hicond_graph::{laplacian, normalized_laplacian_scaling, Graph};
use hicond_linalg::dense::jacobi_eigen;

/// The smallest nonzero eigenvalue `λ₂` of the normalized Laplacian,
/// computed exactly (dense Jacobi). For verification-scale graphs.
pub fn lambda2_normalized_dense(g: &Graph) -> f64 {
    let n = g.num_vertices();
    let a = laplacian(g);
    let (_, d_inv_sqrt, _) = normalized_laplacian_scaling(g);
    let mut dense = a.to_dense();
    for i in 0..n {
        for j in 0..n {
            dense[(i, j)] *= d_inv_sqrt[i] * d_inv_sqrt[j];
        }
    }
    let (vals, _) = jacobi_eigen(&dense);
    vals.get(1).copied().unwrap_or(0.0).max(0.0)
}

/// The Cheeger sandwich `(λ₂/2, √(2λ₂))` bracketing the conductance.
pub fn cheeger_bounds_dense(g: &Graph) -> (f64, f64) {
    let l2 = lambda2_normalized_dense(g);
    (l2 / 2.0, (2.0 * l2).sqrt())
}

/// Gershgorin bound used in Lemma 3.4: the largest eigenvalue of `D⁻¹A`
/// for a Laplacian `A` with diagonal `D` is at most 2 (row sums of
/// `D⁻¹A` are ≤ 2 in absolute value). Returns the exact `λ_max(D⁻¹A)`
/// for verification.
pub fn lambda_max_walk_dense(g: &Graph) -> f64 {
    let n = g.num_vertices();
    let a = laplacian(g);
    let (_, d_inv_sqrt, _) = normalized_laplacian_scaling(g);
    let mut dense = a.to_dense();
    for i in 0..n {
        for j in 0..n {
            dense[(i, j)] *= d_inv_sqrt[i] * d_inv_sqrt[j];
        }
    }
    let (vals, _) = jacobi_eigen(&dense);
    // audit: allow(panic-path) — jacobi_eigen returns exactly n eigenvalues and n >= 1 here
    *vals.last().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_graph::{exact_conductance, generators};

    #[test]
    fn sandwich_holds_across_families() {
        let graphs = vec![
            generators::cycle(12, |_| 1.0),
            generators::path(10, |i| 1.0 + (i % 3) as f64),
            generators::complete(8, 1.0),
            generators::star(10, |i| i as f64),
            generators::grid2d(4, 4, |_, _| 1.0),
            generators::triangulated_grid(4, 4, 5),
        ];
        for g in graphs {
            let phi = exact_conductance(&g);
            let (lo, hi) = cheeger_bounds_dense(&g);
            assert!(
                lo <= phi + 1e-9 && phi <= hi + 1e-9,
                "sandwich violated: {lo} <= {phi} <= {hi}"
            );
        }
    }

    #[test]
    fn gershgorin_bound_two() {
        for g in [
            generators::cycle(9, |_| 1.0),
            generators::complete(7, 2.0),
            generators::grid2d(3, 5, |u, v| 1.0 + ((u * v) % 4) as f64),
        ] {
            let lmax = lambda_max_walk_dense(&g);
            assert!(lmax <= 2.0 + 1e-9, "λmax {lmax} > 2");
        }
        // Bipartite graphs meet the bound exactly.
        let even_cycle = generators::cycle(8, |_| 1.0);
        let lmax = lambda_max_walk_dense(&even_cycle);
        assert!((lmax - 2.0).abs() < 1e-9, "bipartite λmax {lmax}");
    }

    #[test]
    fn lemma_34_eigen_step() {
        // λ_min(D⁻¹A) ≥ φ²/2 restricted off the kernel — the exact step
        // the Lemma 3.4 proof takes.
        let g = generators::cycle(10, |i| 1.0 + (i % 2) as f64);
        let phi = exact_conductance(&g);
        let l2 = lambda2_normalized_dense(&g);
        assert!(
            l2 >= phi * phi / 2.0 - 1e-9,
            "λ₂ {l2} < φ²/2 {}",
            phi * phi / 2.0
        );
    }
}
