//! Support theory for combinatorial preconditioning (paper Section 3 and
//! Appendix; Boman & Hendrickson \[4\]).
//!
//! The *support* `σ(A, B) = min{t : xᵀ(τB − A)x ≥ 0 ∀x, τ ≥ t}` equals the
//! largest generalized eigenvalue `λ_max(A, B)` (Lemma 5.3), and the
//! condition number of a preconditioned pair is
//! `κ(A, B) = σ(A, B)·σ(B, A)` (Definition 5.1). This crate provides:
//!
//! * [`support`] — exact (dense) and iterative support/condition numbers of
//!   graph pairs and Laplacian-like matrix pairs;
//! * [`splitting`] — the splitting lemma (Lemma 5.4) and
//!   congestion/dilation bounds from explicit path embeddings (the
//!   machinery behind the `σ ≤ 3` dilation step in Theorem 3.5);
//! * [`star`] — the star-complement support bound of Lemma 3.4, including
//!   construction of the Definition 3.1 cluster stars.

pub mod cheeger;
pub mod splitting;
pub mod star;
pub mod steiner_route;
pub mod support;

pub use cheeger::{cheeger_bounds_dense, lambda2_normalized_dense, lambda_max_walk_dense};
pub use splitting::{embedding_support_bound, splitting_bound, FractionalEmbedding, PathEmbedding};
pub use star::{star_laplacian, star_schur_support_exact};
pub use steiner_route::{steiner_routing, SteinerRouting};
pub use support::{
    condition_number_dense, condition_number_iterative, support_dense, support_iterative,
    support_matrices_dense,
};
