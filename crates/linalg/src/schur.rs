//! Schur complements with respect to vertex elimination (paper Def. 5.5).
//!
//! For a weighted graph Laplacian, Gaussian elimination of a vertex `v`
//! replaces the star around `v` by the clique with weights
//! `S_ij = d_i d_j / D`, `D = Σ d_k` — exactly the paper's star rule — and
//! the elimination of a set `W` composes vertex-by-vertex in any order.
//! This module implements the general matrix operation on sparse symmetric
//! matrices; the analytic *leaf* elimination used inside the Steiner solver
//! lives in `hicond-precond` where the structure is known.

use crate::csr::{CooBuilder, CsrMatrix};
use std::collections::HashMap;

/// Computes the Schur complement of the symmetric matrix `a` after
/// eliminating the index set `eliminate`.
///
/// The result is indexed by the *kept* indices in increasing order of their
/// original index; the mapping is returned alongside the matrix.
///
/// Rows whose pivot is (numerically) zero are skipped — for Laplacians this
/// happens only for isolated vertices, which contribute nothing.
///
/// # Panics
/// Panics if `a` is not square or an index is out of range / duplicated.
pub fn schur_complement(a: &CsrMatrix, eliminate: &[usize]) -> (CsrMatrix, Vec<usize>) {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "schur: square matrix required");
    let mut is_elim = vec![false; n];
    for &v in eliminate {
        assert!(v < n, "schur: index out of range");
        assert!(!is_elim[v], "schur: duplicate index");
        is_elim[v] = true;
    }

    // Working representation: one hashmap per row (symmetric matrix).
    let mut rows: Vec<HashMap<u32, f64>> = (0..n)
        .map(|r| a.row(r).map(|(c, v)| (c as u32, v)).collect())
        .collect();

    for &v in eliminate {
        let star: Vec<(u32, f64)> = rows[v]
            .iter()
            .filter(|&(&c, _)| c as usize != v)
            .map(|(&c, &w)| (c, w))
            .collect();
        let pivot = *rows[v].get(&(v as u32)).unwrap_or(&0.0);
        // Clear row/col v.
        for &(c, _) in &star {
            rows[c as usize].remove(&(v as u32));
        }
        rows[v].clear();
        if pivot.abs() <= 1e-300 {
            continue;
        }
        // Rank-one update A_ij ← A_ij − a_iv·a_vj / pivot over star pairs.
        for &(i, wi) in &star {
            for &(j, wj) in &star {
                *rows[i as usize].entry(j).or_insert(0.0) -= wi * wj / pivot;
            }
        }
    }

    // Renumber kept indices.
    let kept: Vec<usize> = (0..n).filter(|&i| !is_elim[i]).collect();
    let mut inv = vec![u32::MAX; n];
    for (new, &old) in kept.iter().enumerate() {
        inv[old] = new as u32;
    }
    let mut b = CooBuilder::new(kept.len(), kept.len());
    for &old_r in &kept {
        for (&c, &val) in &rows[old_r] {
            let c = c as usize;
            if inv[c] != u32::MAX && val != 0.0 {
                b.push(inv[old_r] as usize, inv[c] as usize, val);
            }
        }
    }
    (b.build(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::dense::DenseMatrix;

    fn lap_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for &(u, v, w) in edges {
            b.push(u, u, w);
            b.push(v, v, w);
            b.push_sym(u, v, -w);
        }
        b.build()
    }

    /// Dense reference: S = A22 - A21 A11^{-1} A12 with block 1 = eliminated.
    fn dense_schur(a: &CsrMatrix, eliminate: &[usize]) -> DenseMatrix {
        let n = a.nrows();
        let elim: Vec<usize> = eliminate.to_vec();
        let keep: Vec<usize> = (0..n).filter(|i| !elim.contains(i)).collect();
        let d = a.to_dense();
        let m1 = elim.len();
        let m2 = keep.len();
        let mut a11 = DenseMatrix::zeros(m1, m1);
        let mut a12 = DenseMatrix::zeros(m1, m2);
        let mut a22 = DenseMatrix::zeros(m2, m2);
        for (i, &ei) in elim.iter().enumerate() {
            for (j, &ej) in elim.iter().enumerate() {
                a11[(i, j)] = d[(ei, ej)];
            }
            for (j, &kj) in keep.iter().enumerate() {
                a12[(i, j)] = d[(ei, kj)];
            }
        }
        for (i, &ki) in keep.iter().enumerate() {
            for (j, &kj) in keep.iter().enumerate() {
                a22[(i, j)] = d[(ki, kj)];
            }
        }
        // Solve A11 X = A12 column by column via Cholesky (A11 SPD for
        // Laplacian principal submatrices of connected graphs).
        let chol = crate::dense::CholeskyFactor::factor(&a11).expect("A11 SPD");
        let mut x = DenseMatrix::zeros(m1, m2);
        for c in 0..m2 {
            let col: Vec<f64> = (0..m1).map(|r| a12[(r, c)]).collect();
            let sol = chol.solve(&col);
            for r in 0..m1 {
                x[(r, c)] = sol[r];
            }
        }
        let correction = a12.transpose().matmul(&x);
        let mut s = a22.clone();
        for i in 0..m2 {
            for j in 0..m2 {
                s[(i, j)] -= correction[(i, j)];
            }
        }
        s
    }

    #[test]
    fn star_elimination_matches_paper_rule() {
        // Star with center 0 and leaves 1,2,3 with weights 1,2,3:
        // S_ij = d_i d_j / 6.
        let a = lap_from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        let (s, kept) = schur_complement(&a, &[0]);
        assert_eq!(kept, vec![1, 2, 3]);
        let total = 6.0;
        // Off-diagonals are -d_i d_j / D.
        assert!((s.get(0, 1) - (-1.0 * 2.0 / total)).abs() < 1e-12);
        assert!((s.get(0, 2) - (-1.0 * 3.0 / total)).abs() < 1e-12);
        assert!((s.get(1, 2) - (-2.0 * 3.0 / total)).abs() < 1e-12);
        // Row sums are zero (still a Laplacian).
        for r in 0..3 {
            let sum: f64 = s.row(r).map(|(_, v)| v).sum();
            assert!(sum.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_dense_block_formula() {
        // Random-ish small Laplacian; eliminate two vertices.
        let a = lap_from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 0.5),
                (3, 4, 1.5),
                (4, 5, 2.5),
                (5, 0, 3.0),
                (0, 3, 0.7),
                (1, 4, 1.2),
            ],
        );
        let elim = vec![1, 4];
        let (s, kept) = schur_complement(&a, &elim);
        let dense = dense_schur(&a, &elim);
        assert_eq!(kept.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (s.get(i, j) - dense[(i, j)]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    s.get(i, j),
                    dense[(i, j)]
                );
            }
        }
    }

    #[test]
    fn elimination_order_irrelevant() {
        let a = lap_from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 4, 4.0),
                (4, 0, 5.0),
            ],
        );
        let (s1, _) = schur_complement(&a, &[1, 3]);
        let (s2, _) = schur_complement(&a, &[3, 1]);
        for i in 0..3 {
            for j in 0..3 {
                assert!((s1.get(i, j) - s2.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn isolated_vertex_skipped() {
        let a = lap_from_edges(3, &[(0, 1, 1.0)]); // vertex 2 isolated
        let (s, kept) = schur_complement(&a, &[2]);
        assert_eq!(kept, vec![0, 1]);
        assert!((s.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((s.get(0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_elimination_series_rule() {
        // Path 0-1-2 with weights w01=2, w12=3. Eliminating middle vertex
        // gives series conductance 1/(1/2+1/3) = 6/5.
        let a = lap_from_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]);
        let (s, kept) = schur_complement(&a, &[1]);
        assert_eq!(kept, vec![0, 2]);
        assert!((s.get(0, 1) + 6.0 / 5.0).abs() < 1e-12);
    }
}
