//! Conjugate gradients and preconditioned conjugate gradients.
//!
//! The residual histories recorded in [`CgResult`] are the raw material of
//! the paper's Figure 6 (norm of `‖Axᵢ − b‖₂` against iteration number for
//! the Steiner versus the subgraph preconditioner).
//!
//! The solvers tolerate *singular consistent* systems — graph Laplacians
//! have the constant vector in their kernel — as long as `b` is orthogonal
//! to the kernel; iterates then stay in the kernel's complement.

use crate::block::DenseBlock;
use crate::ops::LinearOperator;
use crate::vector::{
    dot_with_scratch, fused_axpy_dot_self, fused_copy_dot, fused_scale_dot, fused_update_x_r,
    norm2, par_axpy, scratch_len, xpby,
};

/// A symmetric positive (semi)definite preconditioner: application of
/// `M⁻¹ r`.
pub trait Preconditioner {
    /// Dimension of the operator.
    fn dim(&self) -> usize;

    /// `z = M⁻¹ r`.
    fn apply_into(&self, r: &[f64], z: &mut [f64]);

    /// Fused `z = M⁻¹ r` plus the PCG inner product `rᵀz`, returned.
    ///
    /// The default implementation is literally the unfused sequence
    /// (`apply_into` then [`dot_with_scratch`]), so every implementor gets
    /// correct (and trivially bitwise-matching) behavior for free.
    /// Implementors that *can* produce `z` and accumulate `rᵀz` in a single
    /// traversal should override this — the PCG loop calls it once per
    /// iteration, and eliminating the extra read of `r` and `z` is one of
    /// the two memory-sweep savings of the fused solver. **Contract:** an
    /// override must return bitwise the same `z` and the same dot value as
    /// the default (same per-element arithmetic, same chunk geometry, same
    /// fixed-shape partial reduction); `tests/determinism.rs` holds
    /// implementations to it.
    fn apply_dot_into(&self, r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
        self.apply_into(r, z);
        dot_with_scratch(r, z, partials)
    }

    /// `z[:, j] = M⁻¹ r[:, j]` for each `j` in `active` (sorted, unique) —
    /// one preconditioner application per block, the second half of the
    /// block-PCG amortization (the first being the operator's
    /// [`crate::ops::LinearOperator::apply_block`]).
    ///
    /// **Contract:** each active column must come out bitwise identical to
    /// [`Self::apply_into`] on that column alone, at any thread cap. The
    /// default loops `apply_into` column by column; hierarchical
    /// implementations should override with a shared traversal (one walk
    /// of the level structure feeding all columns) as long as per-column
    /// arithmetic order is preserved — the multilevel Steiner solver in
    /// `hicond-precond` does exactly that. Inactive columns must not be
    /// read or written.
    ///
    /// # Panics
    ///
    /// Panics if block shapes disagree with the preconditioner dimension
    /// or `active` indexes out of range.
    fn apply_block(&self, r: &DenseBlock, z: &mut DenseBlock, active: &[usize]) {
        assert_eq!(r.n(), self.dim(), "apply_block: r column length");
        assert_eq!(z.n(), self.dim(), "apply_block: z column length");
        for &j in active {
            self.apply_into(r.col(j), z.col_mut(j));
        }
    }

    /// Allocating `M⁻¹ r`.
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.dim()];
        self.apply_into(r, &mut z);
        z
    }
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy)]
pub struct IdentityPreconditioner(pub usize);

impl Preconditioner for IdentityPreconditioner {
    fn dim(&self) -> usize {
        self.0
    }
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn apply_dot_into(&self, r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
        fused_copy_dot(r, z, partials)
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(d)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds from the matrix diagonal; zero diagonal entries (isolated
    /// vertices) map to zero.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        JacobiPreconditioner {
            inv_diag: diag
                .iter()
                .map(|&d| if d != 0.0 { 1.0 / d } else { 0.0 })
                .collect(),
        }
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }
    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
    fn apply_dot_into(&self, r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
        // z_i = r_i · d_i is a single multiplication, so computing it inside
        // the fused chunked sweep yields the same bits as the sequential
        // apply; the dot uses the standard chunk geometry — bitwise equal
        // to the default unfused sequence.
        fused_scale_dot(&self.inv_diag, r, z, partials)
    }
}

/// Options for the CG drivers.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Stop when `‖r‖₂ ≤ rel_tol · ‖b‖₂`.
    pub rel_tol: f64,
    /// Hard iteration cap.
    pub max_iter: usize,
    /// Record `‖rᵢ‖₂` per iteration (Figure 6 data).
    pub record_residuals: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rel_tol: 1e-8,
            max_iter: 5000,
            record_residuals: true,
        }
    }
}

/// Outcome of a CG/PCG run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// `‖r‖₂ / ‖b‖₂` at exit.
    pub final_rel_residual: f64,
    /// `‖rᵢ‖₂` per iteration including the initial residual, when recorded.
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
}

/// Plain conjugate gradients for `A x = b`, starting from `x = 0`.
pub fn cg_solve<A: LinearOperator>(a: &A, b: &[f64], opts: &CgOptions) -> CgResult {
    pcg_solve(a, &IdentityPreconditioner(a.dim()), b, opts)
}

/// Preconditioned conjugate gradients for `A x = b`, starting from `x = 0`.
///
/// `m` must be symmetric positive definite on the relevant subspace; the
/// Steiner preconditioner of the paper enters here through its Schur
/// complement action (see `hicond-precond`).
///
/// Runs the **fused** iteration: the preconditioner application is combined
/// with the `rᵀz` inner product ([`Preconditioner::apply_dot_into`]) and the
/// `x`/`r` updates with the residual norm ([`fused_update_x_r`]), removing
/// two full memory sweeps per iteration versus the textbook sequence.
/// Bitwise identical to [`pcg_solve_unfused`] — the fused kernels perform
/// the same per-element arithmetic in the same order with the same chunk
/// geometry; CI gates on the equivalence.
///
/// # Panics
///
/// Panics if the rhs length or the preconditioner dimension disagrees with the matrix.
pub fn pcg_solve<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
) -> CgResult {
    pcg_solve_impl(a, m, b, opts, true)
}

/// The textbook (unfused) PCG iteration: separate sweeps for the `x`
/// update, the `r` update, the residual norm, the preconditioner apply, and
/// the `rᵀz` dot. Kept callable as the reference the fused solver is gated
/// against — benchmark and CI both compare [`pcg_solve`] to this bitwise.
///
/// # Panics
///
/// Panics if the rhs length or the preconditioner dimension disagrees with the matrix.
pub fn pcg_solve_unfused<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
) -> CgResult {
    pcg_solve_impl(a, m, b, opts, false)
}

/// Interned flight-recorder name for residual-decade milestones, resolved
/// once per process so the hot loop never touches the intern mutex.
fn residual_milestone_id() -> u32 {
    static ID: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *ID.get_or_init(|| hicond_obs::flight::intern("cg/residual_decade"))
}

fn pcg_solve_impl<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &[f64],
    opts: &CgOptions,
    fused: bool,
) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "pcg: rhs length");
    assert_eq!(m.dim(), n, "pcg: preconditioner dim");
    // One relaxed load; the whole loop below stays allocation- and
    // lock-free when observability is off. Recorded values never feed
    // back into the iteration, so on/off runs are bitwise identical.
    let obs_on = hicond_obs::enabled();
    let _span = hicond_obs::span("pcg");
    if obs_on {
        hicond_obs::counter_add("cg/solves", 1);
        hicond_obs::counter_add(
            "cg/scratch_bytes",
            8 * (5 * n as u64 + scratch_len(n) as u64),
        );
        // Reserve the whole series so per-iteration pushes never
        // allocate (the loop must stay allocation-free with recording
        // on too — see tests/alloc_counting.rs).
        hicond_obs::trace_start("cg/residual", opts.max_iter.saturating_add(1));
    }
    // Convergence watchdog and flight-recorder milestones: observe-only
    // (they read computed residuals, never produce a value the iteration
    // uses), so enabling them preserves bitwise determinism.
    let mut watchdog = obs_on.then(hicond_obs::Watchdog::new);
    // Next decade boundary of the relative residual that triggers a
    // flight milestone. The starting residual is ‖b‖/‖b‖ = 1, so the
    // first milestone fires on crossing 1e-1.
    let mut next_milestone = 0.1f64;
    let bnorm = norm2(b);
    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    if bnorm == 0.0 {
        return CgResult {
            x,
            iterations: 0,
            final_rel_residual: 0.0,
            residual_history: history,
            converged: true,
        };
    }
    // All scratch is preallocated here; the iteration loop below performs
    // no heap allocation (asserted by `tests/alloc_counting.rs`).
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    let mut ap = vec![0.0; n];
    let mut partials = vec![0.0; scratch_len(n)];
    let mut rz = if fused {
        m.apply_dot_into(&r, &mut z, &mut partials)
    } else {
        m.apply_into(&r, &mut z);
        dot_with_scratch(&r, &z, &mut partials)
    };
    let mut p = vec![0.0; n];
    p.copy_from_slice(&z);
    let mut fused_applies = 0u64;
    if fused {
        fused_applies += 1;
    }
    if opts.record_residuals {
        history.reserve(opts.max_iter + 2);
        history.push(norm2(&r));
    }
    if obs_on {
        hicond_obs::trace_push("cg/residual", norm2(&r));
    }
    let mut it = 0;
    let mut converged = false;
    while it < opts.max_iter {
        a.apply_into(&p, &mut ap);
        let pap = dot_with_scratch(&p, &ap, &mut partials);
        if pap <= 0.0 {
            // Hit the (numerical) kernel; cannot advance further.
            break;
        }
        let alpha = rz / pap;
        if !alpha.is_finite() {
            break; // numerical breakdown (rz underflow / pap degenerate)
        }
        let rnorm = if fused {
            // One pass over (p, ap, x, r): x += α·p, r −= α·ap, acc ‖r‖².
            fused_update_x_r(alpha, &p, &ap, &mut x, &mut r, &mut partials).sqrt()
        } else {
            par_axpy(alpha, &p, &mut x);
            // Fused r -= alpha·ap and ‖r‖² in a single pass over r.
            fused_axpy_dot_self(-alpha, &ap, &mut r, &mut partials).sqrt()
        };
        it += 1;
        if opts.record_residuals {
            history.push(rnorm);
        }
        if obs_on {
            hicond_obs::trace_push("cg/residual", rnorm);
            let rel = rnorm / bnorm;
            if let Some(w) = watchdog.as_mut() {
                w.observe(it as u64, rel);
            }
            if rel > 0.0 && rel.is_finite() && rel < next_milestone {
                // One event per iteration at most, on crossing a residual
                // decade; the loop advances the threshold past `rel`
                // (bounded: at worst ~300 halvings down to underflow).
                hicond_obs::flight::event(
                    hicond_obs::flight::EventKind::ResidualMilestone,
                    residual_milestone_id(),
                    it as u64,
                    rel.to_bits(),
                );
                while next_milestone > rel {
                    next_milestone /= 10.0;
                }
            }
        }
        if rnorm <= opts.rel_tol * bnorm {
            converged = true;
            break;
        }
        if !rnorm.is_finite() {
            break;
        }
        let rz_new = if fused {
            fused_applies += 1;
            m.apply_dot_into(&r, &mut z, &mut partials)
        } else {
            m.apply_into(&r, &mut z);
            dot_with_scratch(&r, &z, &mut partials)
        };
        if rz_new == 0.0 || !rz_new.is_finite() {
            break; // residual left the preconditioner's range; stagnated
        }
        let beta = rz_new / rz;
        rz = rz_new;
        xpby(&z, beta, &mut p);
    }
    let final_rel = norm2(&r) / bnorm;
    if obs_on {
        hicond_obs::counter_add("cg/iterations", it as u64);
        hicond_obs::counter_add("cg/fused_applies", fused_applies);
        hicond_obs::hist_record("cg/iterations_per_solve", it as f64);
        hicond_obs::gauge_set("cg/final_rel_residual", final_rel);
    }
    CgResult {
        x,
        iterations: it,
        final_rel_residual: final_rel,
        residual_history: history,
        converged,
    }
}

/// Estimates the PCG convergence-rate-implied condition number from a
/// residual history: fits `‖rᵢ‖ ≈ C·qⁱ` on the tail and inverts
/// `q = (√κ−1)/(√κ+1)`.
///
/// A coarse but useful practical proxy for κ(A, M) used in the experiment
/// tables (the paper reports residual curves; we additionally report this
/// derived rate).
pub fn condition_estimate_from_history(history: &[f64]) -> Option<f64> {
    if history.len() < 4 {
        return None;
    }
    // Geometric-mean convergence factor over the second half of the run.
    let lo = history.len() / 2;
    let hi = history.len() - 1;
    let first = history[lo];
    let last = history[hi];
    if first <= 0.0 || last <= 0.0 || last >= first {
        return None;
    }
    let q = (last / first).powf(1.0 / (hi - lo) as f64);
    if q <= 0.0 || q >= 1.0 {
        return None;
    }
    let s = (1.0 + q) / (1.0 - q);
    Some(s * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CooBuilder, CsrMatrix};

    fn laplacian_path(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n - 1 {
            b.push(i, i, 1.0);
            b.push(i + 1, i + 1, 1.0);
            b.push_sym(i, i + 1, -1.0);
        }
        b.build()
    }

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn cg_solves_spd() {
        let a = spd_tridiag(50);
        let xtrue: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.mul(&xtrue);
        let res = cg_solve(&a, &b, &CgOptions::default());
        assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&xtrue) {
            assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_zero_rhs() {
        let a = spd_tridiag(10);
        let res = cg_solve(&a, &vec![0.0; 10], &CgOptions::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn pcg_jacobi_converges_not_slower() {
        // Badly scaled diagonal: Jacobi should fix it in few iterations.
        let n = 60;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 10f64.powi((i % 6) as i32));
        }
        let a = b.build();
        let rhs: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let plain = cg_solve(&a, &rhs, &CgOptions::default());
        let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let pre = pcg_solve(&a, &m, &rhs, &CgOptions::default());
        assert!(pre.converged);
        assert!(pre.iterations <= plain.iterations);
        assert!(pre.iterations <= 3);
    }

    #[test]
    fn cg_singular_consistent_laplacian() {
        // Laplacian with b ⟂ 1: converges to a solution with Ax = b.
        let n = 30;
        let a = laplacian_path(n);
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        crate::vector::deflate_constant(&mut b);
        let res = cg_solve(&a, &b, &CgOptions::default());
        assert!(res.converged);
        let ax = a.mul(&res.x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn fused_solver_is_bitwise_identical_to_unfused() {
        // Covers both preconditioners that override apply_dot_into plus a
        // non-overriding one (exercising the default unfused fallback).
        struct PlainJacobi(JacobiPreconditioner);
        impl Preconditioner for PlainJacobi {
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn apply_into(&self, r: &[f64], z: &mut [f64]) {
                self.0.apply_into(r, z);
            }
        }
        let n = 300;
        let a = spd_tridiag(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        let opts = CgOptions {
            rel_tol: 1e-10,
            ..Default::default()
        };
        let jac = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let cases: Vec<(CgResult, CgResult)> = vec![
            (
                pcg_solve(&a, &IdentityPreconditioner(n), &b, &opts),
                pcg_solve_unfused(&a, &IdentityPreconditioner(n), &b, &opts),
            ),
            (
                pcg_solve(&a, &jac, &b, &opts),
                pcg_solve_unfused(&a, &jac, &b, &opts),
            ),
            (
                pcg_solve(&a, &PlainJacobi(jac.clone()), &b, &opts),
                pcg_solve_unfused(&a, &PlainJacobi(jac.clone()), &b, &opts),
            ),
        ];
        for (k, (f, u)) in cases.iter().enumerate() {
            assert_eq!(f.iterations, u.iterations, "case {k}");
            assert_eq!(f.converged, u.converged, "case {k}");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&f.x), bits(&u.x), "case {k} iterate");
            assert_eq!(
                bits(&f.residual_history),
                bits(&u.residual_history),
                "case {k} residual trajectory"
            );
        }
    }

    #[test]
    fn residual_history_monotone_start_end() {
        let a = spd_tridiag(40);
        let b = vec![1.0; 40];
        let res = cg_solve(&a, &b, &CgOptions::default());
        assert!(res.residual_history.len() >= 2);
        assert!(res.residual_history[0] >= *res.residual_history.last().unwrap());
    }

    #[test]
    fn condition_estimate_sane() {
        // Perfectly conditioned: identity-like -> converges in 1 it, no estimate.
        let a = CsrMatrix::identity(10);
        let res = cg_solve(&a, &vec![1.0; 10], &CgOptions::default());
        assert!(res.iterations <= 1);
        // A mildly conditioned system yields a finite estimate ≥ 1.
        let a = spd_tridiag(100);
        let res = cg_solve(
            &a,
            &vec![1.0; 100],
            &CgOptions {
                rel_tol: 1e-12,
                ..Default::default()
            },
        );
        if let Some(k) = condition_estimate_from_history(&res.residual_history) {
            assert!(k >= 1.0 && k < 100.0);
        }
    }
}
