//! Abstract linear operators.
//!
//! Iterative methods (CG, Lanczos, pencil power iteration) only need
//! matrix–vector products, so they are written against [`LinearOperator`].
//! Implementations include [`CsrMatrix`], scaled/shifted
//! wrappers, and composite operators like the normalized Laplacian
//! `I − D^{-1/2} A D^{-1/2}` built without forming the product explicitly.

use crate::block::DenseBlock;
use crate::csr::CsrMatrix;
use crate::vector::{axpby_inplace, hadamard_inplace, hadamard_into, Parallelism};

/// A symmetric real linear operator on `R^n`.
pub trait LinearOperator {
    /// Dimension `n` of the (square) operator.
    fn dim(&self) -> usize;

    /// `y = A x`.
    fn apply_into(&self, x: &[f64], y: &mut [f64]);

    /// Allocating `A x`.
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply_into(x, &mut y);
        y
    }

    /// `y[:, j] = A x[:, j]` for each `j` in `active` (sorted, unique) —
    /// the multi-vector apply the block-PCG engine drives.
    ///
    /// **Contract:** each active column of the output must be bitwise
    /// identical to [`Self::apply_into`] on that column alone, at any
    /// thread cap. The default delegates column by column, satisfying the
    /// contract trivially; implementors that can amortize one operator
    /// traversal across the block (see [`CsrMatrix`]'s band-major
    /// override) should, as long as per-column arithmetic order is
    /// untouched. Inactive columns must not be read or written.
    ///
    /// # Panics
    ///
    /// Panics if block shapes disagree with the operator dimension or
    /// `active` indexes out of range.
    fn apply_block(&self, x: &DenseBlock, y: &mut DenseBlock, active: &[usize]) {
        assert_eq!(x.n(), self.dim(), "apply_block: x column length");
        assert_eq!(y.n(), self.dim(), "apply_block: y column length");
        for &j in active {
            self.apply_into(x.col(j), y.col_mut(j));
        }
    }

    /// Rayleigh quotient `xᵀAx / xᵀx` (undefined for `x = 0`).
    fn rayleigh(&self, x: &[f64]) -> f64 {
        let y = self.apply(x);
        crate::vector::dot(x, &y) / crate::vector::dot(x, x)
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        assert_eq!(self.nrows(), self.ncols(), "operator must be square");
        self.nrows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.mul_into_with(x, y, Parallelism::default());
    }

    /// Band-major block SpMV: one sweep of the band index feeds every
    /// active column ([`crate::blocked::BlockIndex::mul_block_into`]),
    /// with the same dispatch thresholds as [`CsrMatrix::mul_into_with`].
    /// Per-column results are bitwise identical to `apply_into` on every
    /// path, so the dispatch remains a pure performance knob.
    fn apply_block(&self, x: &DenseBlock, y: &mut DenseBlock, active: &[usize]) {
        assert_eq!(x.n(), self.ncols(), "apply_block: x column length");
        assert_eq!(y.n(), self.nrows(), "apply_block: y column length");
        if self.nnz() >= crate::blocked::spmv_block_threshold() {
            if let Some(bi) = self.block_index() {
                let xs: Vec<&[f64]> = active.iter().map(|&j| x.col(j)).collect();
                let mut ys = y.cols_mut_subset(active);
                let parallel = Parallelism::default().is_parallel() && self.nrows() >= 4096;
                bi.mul_block_into(self.col_idx(), self.values(), &xs, &mut ys, parallel);
                return;
            }
        }
        for &j in active {
            self.mul_into_with(x.col(j), y.col_mut(j), Parallelism::default());
        }
    }
}

/// `alpha * A + beta * I` without materializing the sum.
pub struct ShiftedOperator<'a, A: LinearOperator> {
    /// Underlying operator.
    pub inner: &'a A,
    /// Multiplier on the operator.
    pub alpha: f64,
    /// Multiplier on the identity.
    pub beta: f64,
}

impl<'a, A: LinearOperator> LinearOperator for ShiftedOperator<'a, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_into(x, y);
        axpby_inplace(self.alpha, self.beta, x, y);
    }
}

/// Diagonal congruence `S A S` for a diagonal matrix `S = diag(s)`.
///
/// With `s = d^{-1/2}` and `A` a Laplacian this is the normalized Laplacian
/// `Â = D^{-1/2} A D^{-1/2}` of the paper's Section 4.
pub struct DiagonalCongruence<'a, A: LinearOperator> {
    /// Inner operator.
    pub inner: &'a A,
    /// Diagonal scaling applied on both sides.
    pub scaling: &'a [f64],
}

impl<'a, A: LinearOperator> DiagonalCongruence<'a, A> {
    /// Builds `S A S`; `scaling.len()` must equal the operator dimension.
    ///
    /// # Panics
    ///
    /// Panics if the scaling vector length differs from the inner operator dimension.
    pub fn new(inner: &'a A, scaling: &'a [f64]) -> Self {
        assert_eq!(inner.dim(), scaling.len());
        DiagonalCongruence { inner, scaling }
    }
}

impl<'a, A: LinearOperator> LinearOperator for DiagonalCongruence<'a, A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        let mut sx = vec![0.0; x.len()];
        hadamard_into(x, self.scaling, &mut sx);
        self.inner.apply_into(&sx, y);
        hadamard_inplace(y, self.scaling);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    fn path3() -> CsrMatrix {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 0, 1.0);
        b.push(1, 1, 2.0);
        b.push(2, 2, 1.0);
        b.push_sym(0, 1, -1.0);
        b.push_sym(1, 2, -1.0);
        b.build()
    }

    #[test]
    fn csr_as_operator() {
        let a = path3();
        assert_eq!(a.dim(), 3);
        assert_eq!(a.apply(&[1.0, 1.0, 1.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn shifted_operator() {
        let a = path3();
        let s = ShiftedOperator {
            inner: &a,
            alpha: -1.0,
            beta: 2.0,
        };
        // (2I - A) x for x = e1
        let y = s.apply(&[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn congruence_normalized_laplacian_kernel() {
        let a = path3();
        let d = a.diagonal();
        let s: Vec<f64> = d.iter().map(|&x| 1.0 / x.sqrt()).collect();
        let norm = DiagonalCongruence::new(&a, &s);
        // kernel of Â is D^{1/2} 1
        let dsqrt: Vec<f64> = d.iter().map(|&x| x.sqrt()).collect();
        let y = norm.apply(&dsqrt);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn rayleigh_quotient() {
        let a = CsrMatrix::from_diagonal(&[1.0, 5.0]);
        assert!((a.rayleigh(&[1.0, 0.0]) - 1.0).abs() < 1e-14);
        assert!((a.rayleigh(&[0.0, 2.0]) - 5.0).abs() < 1e-14);
    }
}
