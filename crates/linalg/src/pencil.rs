//! Iterative generalized-eigenvalue (pencil) estimation.
//!
//! The support number σ(A,B) of support theory equals `λ_max(A,B)`
//! (paper Lemma 5.3). On problems too large for the exact dense route in
//! [`crate::dense::pencil_eigen_dense`], this module estimates `λ_max(A,B)`
//! by power iteration on `B⁺A` with inner CG solves of `B`, deflating the
//! shared constant-vector kernel of connected Laplacians.

use crate::cg::{cg_solve, CgOptions};
use crate::ops::LinearOperator;
use crate::vector::{deflate_constant, dot, normalize};

/// Options for [`pencil_lambda_max`].
#[derive(Debug, Clone)]
pub struct PencilOptions {
    /// Outer power-iteration steps.
    pub max_outer: usize,
    /// Relative change in the Rayleigh estimate that counts as converged.
    pub outer_tol: f64,
    /// Inner CG options for the `B`-solves.
    pub inner: CgOptions,
    /// Seed for the starting vector.
    pub seed: u64,
}

impl Default for PencilOptions {
    fn default() -> Self {
        PencilOptions {
            max_outer: 60,
            outer_tol: 1e-4,
            inner: CgOptions {
                rel_tol: 1e-9,
                max_iter: 10_000,
                record_residuals: false,
            },
            seed: 11,
        }
    }
}

/// Estimates `λ_max(A, B)` for symmetric PSD `A, B` sharing the constant
/// vector as kernel (connected graph Laplacians on the same vertex set).
///
/// Returns the generalized Rayleigh quotient of the final iterate — a
/// certified *lower* bound on λ_max that in practice converges to it; power
/// iteration makes it tight unless the top generalized eigenvalue is highly
/// clustered.
///
/// # Panics
///
/// Panics if the operator dimensions disagree.
pub fn pencil_lambda_max<A, B>(a: &A, b: &B, opts: &PencilOptions) -> f64
where
    A: LinearOperator,
    B: LinearOperator,
{
    let n = a.dim();
    assert_eq!(b.dim(), n, "pencil: dimension mismatch");
    // Deterministic pseudo-random start, deflated.
    let mut x: Vec<f64> = {
        let mut state = opts.seed.wrapping_add(0x9E3779B97F4A7C15);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                ((z ^ (z >> 31)) as f64 / u64::MAX as f64) - 0.5
            })
            .collect()
    };
    deflate_constant(&mut x);
    normalize(&mut x);

    let mut lambda = 0.0;
    let mut ax = vec![0.0; n];
    let mut bx = vec![0.0; n];
    for _ in 0..opts.max_outer {
        a.apply_into(&x, &mut ax);
        deflate_constant(&mut ax);
        // y = B⁺ (A x): CG on the consistent singular system.
        let sol = cg_solve(b, &ax, &opts.inner);
        let mut y = sol.x;
        deflate_constant(&mut y);
        if normalize(&mut y) == 0.0 {
            break;
        }
        // Generalized Rayleigh quotient at y.
        a.apply_into(&y, &mut ax);
        b.apply_into(&y, &mut bx);
        let num = dot(&y, &ax);
        let den = dot(&y, &bx);
        let new_lambda = if den > 0.0 { num / den } else { lambda };
        let rel = (new_lambda - lambda).abs() / new_lambda.abs().max(1e-300);
        x = y;
        lambda = new_lambda;
        if rel < opts.outer_tol {
            break;
        }
    }
    lambda
}

/// Estimates the condition number `κ(A,B) = λ_max(A,B)·λ_max(B,A)`
/// (paper Definition 5.1) by two pencil solves.
pub fn condition_number<A, B>(a: &A, b: &B, opts: &PencilOptions) -> f64
where
    A: LinearOperator,
    B: LinearOperator,
{
    pencil_lambda_max(a, b, opts) * pencil_lambda_max(b, a, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CooBuilder, CsrMatrix};

    fn laplacian_cycle(n: usize, w: impl Fn(usize) -> f64) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            let j = (i + 1) % n;
            let wi = w(i);
            b.push(i, i, wi);
            b.push(j, j, wi);
            b.push_sym(i, j, -wi);
        }
        b.build()
    }

    #[test]
    fn identical_pencil_is_one() {
        let a = laplacian_cycle(20, |_| 1.0);
        let lam = pencil_lambda_max(&a, &a, &PencilOptions::default());
        assert!((lam - 1.0).abs() < 1e-6, "{lam}");
    }

    #[test]
    fn scaled_pencil() {
        let a = laplacian_cycle(16, |_| 1.0);
        let b3 = a.scaled(3.0);
        let lam = pencil_lambda_max(&b3, &a, &PencilOptions::default());
        assert!((lam - 3.0).abs() < 1e-5, "{lam}");
        let lam_inv = pencil_lambda_max(&a, &b3, &PencilOptions::default());
        assert!((lam_inv - 1.0 / 3.0).abs() < 1e-5, "{lam_inv}");
    }

    #[test]
    fn condition_of_scaling_is_one() {
        let a = laplacian_cycle(12, |i| 1.0 + (i % 3) as f64);
        let b2 = a.scaled(2.0);
        // κ(A, 2A) = λmax(A,2A)·λmax(2A,A) = (1/2)(2) = 1.
        let k = condition_number(&a, &b2, &PencilOptions::default());
        assert!((k - 1.0).abs() < 1e-5, "{k}");
    }

    #[test]
    fn matches_dense_on_small_pencil() {
        // Cycle vs path (cycle minus one edge): dense vs iterative agree.
        let n = 10;
        let cycle = laplacian_cycle(n, |_| 1.0);
        let mut pb = CooBuilder::new(n, n);
        for i in 0..n - 1 {
            pb.push(i, i, 1.0);
            pb.push(i + 1, i + 1, 1.0);
            pb.push_sym(i, i + 1, -1.0);
        }
        let path = pb.build();
        let ones = vec![1.0; n];
        let dense_vals =
            crate::dense::pencil_eigen_dense(&cycle.to_dense(), &path.to_dense(), &ones);
        let dense_max = *dense_vals.last().unwrap();
        let iter_max = pencil_lambda_max(
            &cycle,
            &path,
            &PencilOptions {
                max_outer: 200,
                outer_tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(
            (dense_max - iter_max).abs() < 1e-3 * dense_max,
            "dense {dense_max} vs iter {iter_max}"
        );
    }
}
