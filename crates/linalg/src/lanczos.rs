//! Lanczos iteration with full reorthogonalization for extreme eigenpairs
//! of symmetric operators.
//!
//! Section 4 of the paper studies the low-frequency eigenvectors of the
//! normalized Laplacian `Â = D^{-1/2} A D^{-1/2}`; on graphs too large for
//! the dense Jacobi verifier this driver computes them iteratively. Full
//! reorthogonalization keeps the Ritz basis clean at the modest subspace
//! sizes we need (a handful of extreme pairs).

use crate::ops::LinearOperator;
use crate::tridiag::tridiag_eigen;
use crate::vector::{dot, norm2, normalize};

/// Which end of the spectrum to target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectrumEnd {
    /// Smallest eigenvalues.
    Smallest,
    /// Largest eigenvalues.
    Largest,
}

/// Options for [`lanczos_extreme`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Number of eigenpairs requested.
    pub num_pairs: usize,
    /// Which end of the spectrum.
    pub which: SpectrumEnd,
    /// Maximum Krylov subspace dimension.
    pub max_subspace: usize,
    /// Residual tolerance `‖Av − λv‖ ≤ tol·max(1,|λ|)` for convergence.
    pub tol: f64,
    /// Deterministic seed for the starting vector.
    pub seed: u64,
    /// Optional directions to deflate (e.g. the known kernel `D^{1/2}1`
    /// of a normalized Laplacian). Each must be nonzero; they are
    /// orthonormalized internally.
    pub deflate: Vec<Vec<f64>>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            num_pairs: 4,
            which: SpectrumEnd::Smallest,
            max_subspace: 200,
            tol: 1e-8,
            seed: 7,
            deflate: Vec::new(),
        }
    }
}

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Converged (or best-effort) eigenvalues, sorted toward the requested
    /// end first.
    pub eigenvalues: Vec<f64>,
    /// Matching eigenvectors (each of length `n`).
    pub eigenvectors: Vec<Vec<f64>>,
    /// Final residual norms `‖Av − λv‖₂` per returned pair.
    pub residuals: Vec<f64>,
    /// Krylov dimension used.
    pub subspace_dim: usize,
}

/// Simple deterministic pseudo-random starting vector (splitmix64 stream).
fn seeded_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| (next() as f64 / u64::MAX as f64) - 0.5)
        .collect()
}

/// Computes `opts.num_pairs` extreme eigenpairs of the symmetric operator
/// `a` by Lanczos with full reorthogonalization.
pub fn lanczos_extreme<A: LinearOperator>(a: &A, opts: &LanczosOptions) -> LanczosResult {
    let _span = hicond_obs::span("lanczos");
    let n = a.dim();
    let k_want = opts.num_pairs.min(n);
    let m_max = opts.max_subspace.min(n).max(k_want + 2).min(n);

    // Orthonormalize the deflation directions.
    let mut deflate: Vec<Vec<f64>> = Vec::new();
    for dir in &opts.deflate {
        let mut v = dir.clone();
        for u in &deflate {
            let c = dot(&v, u);
            for (vi, ui) in v.iter_mut().zip(u) {
                *vi -= c * ui;
            }
        }
        if normalize(&mut v) > 1e-12 {
            deflate.push(v);
        }
    }

    let orthogonalize = |v: &mut [f64], basis: &[Vec<f64>]| {
        // Two passes of classical Gram-Schmidt ≈ modified GS stability.
        for _ in 0..2 {
            for u in basis {
                let c = dot(v, u);
                for (vi, ui) in v.iter_mut().zip(u) {
                    *vi -= c * ui;
                }
            }
        }
    };

    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m_max);
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    let mut v0 = seeded_vector(n, opts.seed);
    orthogonalize(&mut v0, &deflate);
    if normalize(&mut v0) == 0.0 {
        // Operator dimension so small the deflation space is everything.
        return LanczosResult {
            eigenvalues: Vec::new(),
            eigenvectors: Vec::new(),
            residuals: Vec::new(),
            subspace_dim: 0,
        };
    }
    q.push(v0);

    let mut w = vec![0.0; n];
    let mut result_ready: Option<(Vec<f64>, Vec<f64>, usize)> = None;

    for j in 0..m_max {
        a.apply_into(&q[j], &mut w);
        let alpha = dot(&w, &q[j]);
        alphas.push(alpha);
        // w -= alpha q_j + beta q_{j-1}, then full reorthogonalization.
        for (wi, qi) in w.iter_mut().zip(&q[j]) {
            *wi -= alpha * qi;
        }
        if j > 0 {
            let beta_prev = betas[j - 1];
            let qprev = &q[j - 1];
            for (wi, qi) in w.iter_mut().zip(qprev) {
                *wi -= beta_prev * qi;
            }
        }
        orthogonalize(&mut w, &deflate);
        orthogonalize(&mut w, &q);
        let beta = norm2(&w);

        // Convergence check every few steps once the space is big enough.
        let dim = j + 1;
        if dim >= k_want && (dim % 4 == 0 || dim == m_max || beta <= 1e-14) {
            let (tvals, tvecs) = tridiag_eigen(&alphas, &betas);
            let idx: Vec<usize> = match opts.which {
                SpectrumEnd::Smallest => (0..k_want.min(dim)).collect(),
                SpectrumEnd::Largest => (dim - k_want.min(dim)..dim).rev().collect(),
            };
            // Ritz residual bound: |beta * last component of tridiag evec|.
            let all_converged = idx.iter().all(|&i| {
                let last = tvecs[(dim - 1) * dim + i];
                (beta * last).abs() <= opts.tol * tvals[i].abs().max(1.0)
            });
            if all_converged || dim == m_max || beta <= 1e-14 {
                result_ready = Some((tvals, tvecs, dim));
                break;
            }
        }
        if beta <= 1e-14 {
            // Invariant subspace found before enough pairs: diagonalize what
            // we have.
            let (tvals, tvecs) = tridiag_eigen(&alphas, &betas);
            result_ready = Some((tvals, tvecs, j + 1));
            break;
        }
        betas.push(beta);
        let mut qnext = std::mem::take(&mut w);
        for x in qnext.iter_mut() {
            *x /= beta;
        }
        q.push(qnext);
        w = vec![0.0; n];
    }

    let (tvals, tvecs, dim) = result_ready.unwrap_or_else(|| {
        let (tv, tz) = tridiag_eigen(&alphas, &betas);
        let d = alphas.len();
        (tv, tz, d)
    });

    let k = k_want.min(dim);
    let picked: Vec<usize> = match opts.which {
        SpectrumEnd::Smallest => (0..k).collect(),
        SpectrumEnd::Largest => (dim - k..dim).rev().collect(),
    };
    let mut eigenvalues = Vec::with_capacity(k);
    let mut eigenvectors = Vec::with_capacity(k);
    let mut residuals = Vec::with_capacity(k);
    let mut avec = vec![0.0; n];
    for &i in &picked {
        let lam = tvals[i];
        let mut v = vec![0.0; n];
        for (jj, qj) in q.iter().enumerate().take(dim) {
            let c = tvecs[jj * dim + i];
            for (vi, qji) in v.iter_mut().zip(qj) {
                *vi += c * qji;
            }
        }
        normalize(&mut v);
        a.apply_into(&v, &mut avec);
        let mut res = 0.0;
        for (av, vv) in avec.iter().zip(&v) {
            let d = av - lam * vv;
            res += d * d;
        }
        eigenvalues.push(lam);
        eigenvectors.push(v);
        residuals.push(res.sqrt());
    }

    if hicond_obs::enabled() {
        hicond_obs::counter_add("lanczos/runs", 1);
        hicond_obs::counter_add("lanczos/steps", dim as u64);
        hicond_obs::hist_record("lanczos/subspace_dim", dim as f64);
    }
    LanczosResult {
        eigenvalues,
        eigenvectors,
        residuals,
        subspace_dim: dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CooBuilder, CsrMatrix};
    use crate::ops::DiagonalCongruence;

    fn laplacian_path(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n - 1 {
            b.push(i, i, 1.0);
            b.push(i + 1, i + 1, 1.0);
            b.push_sym(i, i + 1, -1.0);
        }
        b.build()
    }

    #[test]
    fn diagonal_extremes() {
        let d: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let a = CsrMatrix::from_diagonal(&d);
        let res = lanczos_extreme(
            &a,
            &LanczosOptions {
                num_pairs: 3,
                which: SpectrumEnd::Smallest,
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(
            (res.eigenvalues[0] - 1.0).abs() < 1e-7,
            "{:?}",
            res.eigenvalues
        );
        assert!((res.eigenvalues[1] - 2.0).abs() < 1e-7);
        assert!((res.eigenvalues[2] - 3.0).abs() < 1e-7);

        let res = lanczos_extreme(
            &a,
            &LanczosOptions {
                num_pairs: 2,
                which: SpectrumEnd::Largest,
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert!((res.eigenvalues[0] - 30.0).abs() < 1e-7);
        assert!((res.eigenvalues[1] - 29.0).abs() < 1e-7);
    }

    #[test]
    fn path_laplacian_low_end() {
        let n = 40;
        let a = laplacian_path(n);
        let res = lanczos_extreme(
            &a,
            &LanczosOptions {
                num_pairs: 3,
                which: SpectrumEnd::Smallest,
                tol: 1e-9,
                max_subspace: 40,
                ..Default::default()
            },
        );
        // λ_k = 2 - 2 cos(kπ/n)
        for (k, lam) in res.eigenvalues.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((lam - expect).abs() < 1e-6, "k={k}: {lam} vs {expect}");
        }
        // Residuals small.
        for r in &res.residuals {
            assert!(*r < 1e-6);
        }
    }

    #[test]
    fn deflation_skips_kernel() {
        let n = 25;
        let a = laplacian_path(n);
        let ones = vec![1.0; n];
        let res = lanczos_extreme(
            &a,
            &LanczosOptions {
                num_pairs: 2,
                which: SpectrumEnd::Smallest,
                deflate: vec![ones],
                tol: 1e-9,
                max_subspace: 25,
                ..Default::default()
            },
        );
        // With the kernel deflated, smallest is λ_1 > 0.
        let expect = 2.0 - 2.0 * (std::f64::consts::PI / n as f64).cos();
        assert!((res.eigenvalues[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn normalized_laplacian_in_0_2() {
        let n = 30;
        let a = laplacian_path(n);
        let d = a.diagonal();
        let s: Vec<f64> = d.iter().map(|&x| 1.0 / x.sqrt()).collect();
        let norm = DiagonalCongruence::new(&a, &s);
        let res = lanczos_extreme(
            &norm,
            &LanczosOptions {
                num_pairs: 2,
                which: SpectrumEnd::Largest,
                tol: 1e-8,
                max_subspace: 30,
                ..Default::default()
            },
        );
        for lam in &res.eigenvalues {
            assert!(*lam <= 2.0 + 1e-8 && *lam >= 0.0 - 1e-8);
        }
    }
}
