//! Structured invariant checking shared across the workspace.
//!
//! Every core data structure (CSR matrices here; graphs, partitions and
//! tree-contraction state downstream) exposes two layers:
//!
//! * `check_invariants(..) -> Result<(), InvariantViolation>` — always
//!   compiled, callable on untrusted input in any build;
//! * `debug_invariants(..)` — a wrapper that panics on violation, compiled
//!   to a **no-op** unless `debug_assertions` is on (dev/test profiles) or
//!   the `check-invariants` cargo feature is enabled. Release builds pay
//!   nothing; `--features check-invariants` turns the validation back on
//!   in optimized builds for debugging production-sized inputs.
//!
//! A violation is structured rather than stringly: it names the crate,
//! structure and rule that failed plus witness indices, so harness code
//! can aggregate or snapshot violations mechanically.

use std::fmt;

/// A violated structural invariant: which structure, which rule, where.
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantViolation {
    /// Crate that owns the structure (e.g. `"hicond-linalg"`).
    pub krate: &'static str,
    /// Structure name (e.g. `"CsrMatrix"`).
    pub structure: &'static str,
    /// Rule identifier in kebab-case (e.g. `"cols-sorted"`).
    pub rule: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Indices witnessing the violation (rows, vertices, arcs — rule
    /// dependent; empty when the violation is global).
    pub witness: Vec<usize>,
}

impl InvariantViolation {
    /// Convenience constructor.
    pub fn new(
        krate: &'static str,
        structure: &'static str,
        rule: &'static str,
        message: impl Into<String>,
        witness: Vec<usize>,
    ) -> Self {
        InvariantViolation {
            krate,
            structure,
            rule,
            message: message.into(),
            witness,
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violation [{}::{}/{}]: {}",
            self.krate, self.structure, self.rule, self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, " (witness: {:?})", self.witness)?;
        }
        Ok(())
    }
}

impl std::error::Error for InvariantViolation {}

/// True when invariant checking is compiled in (debug builds or the
/// `check-invariants` feature).
pub const fn invariant_checks_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "check-invariants"))
}

/// Panics with the violation if `result` is an error. Compiles to nothing
/// when invariant checks are disabled — callers should gate the *check*
/// itself (which may be O(n)) behind [`invariant_checks_enabled`] or use
/// the `debug_invariants` wrappers on each structure.
///
/// # Panics
/// Panics when `result` is `Err` and invariant checks are enabled.
#[inline]
pub fn enforce(result: Result<(), InvariantViolation>) {
    #[cfg(any(debug_assertions, feature = "check-invariants"))]
    if let Err(v) = result {
        // audit: allow(panic-path) — aborting with the structured report is the contract here
        panic!("{v}");
    }
    #[cfg(not(any(debug_assertions, feature = "check-invariants")))]
    let _ = result;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_all_parts() {
        let v = InvariantViolation::new(
            "hicond-linalg",
            "CsrMatrix",
            "cols-sorted",
            "row 3 has unsorted columns",
            vec![3, 7],
        );
        let s = v.to_string();
        assert!(s.contains("hicond-linalg"));
        assert!(s.contains("CsrMatrix"));
        assert!(s.contains("cols-sorted"));
        assert!(s.contains("[3, 7]"));
    }

    #[test]
    fn enforce_ok_is_silent() {
        enforce(Ok(()));
    }

    #[test]
    #[should_panic(expected = "invariant violation")]
    fn enforce_err_panics_in_debug() {
        // Test profiles have debug_assertions on, so enforcement is active.
        enforce(Err(InvariantViolation::new(
            "hicond-linalg",
            "CsrMatrix",
            "rule",
            "boom",
            vec![],
        )));
    }
}
