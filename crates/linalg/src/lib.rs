//! Sparse and dense linear-algebra substrate for the `hicond` workspace.
//!
//! The paper this workspace reproduces (Koutis & Miller, *Graph partitioning
//! into isolated, high conductance clusters*, SPAA 2008) leans on a fairly
//! specific linear-algebra toolkit:
//!
//! * symmetric sparse matrices in CSR form for graph Laplacians
//!   ([`CsrMatrix`]),
//! * conjugate gradients with pluggable preconditioners ([`cg`]),
//! * Lanczos iteration for the extreme eigenpairs of normalized Laplacians
//!   ([`lanczos`]),
//! * dense symmetric kernels — Cholesky factorization and a Jacobi
//!   eigensolver — used both as coarse-grid direct solvers and as exact
//!   verifiers in tests and experiments ([`dense`]),
//! * Schur complements with respect to vertex elimination (paper
//!   Definition 5.5; [`schur`]),
//! * generalized eigenvalue (matrix pencil) computations behind the support
//!   numbers σ(A,B) of support theory ([`pencil`]).
//!
//! Everything here is written from scratch on `f64`, with rayon-parallel
//! kernels where the access pattern allows and deterministic sequential
//! fallbacks controlled by [`Parallelism`].

pub mod block;
pub mod blocked;
pub mod cg;
pub mod chebyshev;
pub mod csr;
pub mod dense;
pub mod ichol;
pub mod invariant;
pub mod lanczos;
pub mod ops;
pub mod pencil;
pub mod schur;
pub mod serialize;
pub mod ssor;
pub mod tridiag;
pub mod vector;

pub use block::{block_pcg_solve, DenseBlock};
pub use blocked::{set_spmv_block_threshold, spmv_block_threshold, BlockIndex};
pub use cg::{
    cg_solve, pcg_solve, pcg_solve_unfused, CgOptions, CgResult, IdentityPreconditioner,
    Preconditioner,
};
pub use chebyshev::ChebyshevSolver;
pub use csr::{CooBuilder, CsrMatrix};
pub use dense::DenseMatrix;
pub use ichol::IncompleteCholesky;
pub use invariant::{invariant_checks_enabled, InvariantViolation};
pub use lanczos::{lanczos_extreme, LanczosOptions, LanczosResult};
pub use ops::LinearOperator;
pub use pencil::{pencil_lambda_max, PencilOptions};
pub use schur::schur_complement;
pub use ssor::SsorPreconditioner;
pub use vector::{axpy, dot, norm2, scale, Parallelism};

/// Relative tolerance used by equality-style assertions across the workspace.
pub const DEFAULT_REL_TOL: f64 = 1e-10;

/// Returns `true` when `a` and `b` agree to relative tolerance `tol`
/// (absolute tolerance for values near zero).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
        assert!(approx_eq(0.0, 1e-12, 1e-10));
    }
}
