//! Compressed sparse row (CSR) matrices.
//!
//! The workspace stores graph Laplacians and quotient operators as symmetric
//! CSR matrices. Assembly goes through [`CooBuilder`], which accepts
//! duplicate triplets and sums them — exactly what the algebraic quotient
//! construction `Q = RᵀAR` of the paper's Definition 3.1 produces.

use crate::blocked::{self, BlockIndex};
use crate::invariant::InvariantViolation;
use crate::vector::Parallelism;
use rayon::prelude::*;
use std::sync::OnceLock;

/// A sparse matrix in CSR format over `f64`.
///
/// Invariants: `row_ptr.len() == nrows + 1`, `row_ptr` is non-decreasing,
/// column indices within each row are strictly increasing and `< ncols`.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Lazily built row-band index for the blocked SpMV kernel. Depends
    /// only on `row_ptr` (structure), so it survives `values_mut` edits;
    /// `None` inside means the structure is not blockable (a band would
    /// overflow `u32` offsets) and the plain kernel is used instead.
    bands: OnceLock<Option<BlockIndex>>,
}

/// Equality is over the mathematical content (shape + structure + values);
/// the derived impl would also compare the lazily built block-index cache,
/// which is a performance artifact, not part of the matrix's identity.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Internal constructor: all in-crate assembly funnels through here so
    /// the block-index cache slot is initialized in exactly one place.
    fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            bands: OnceLock::new(),
        }
    }
    /// Builds a CSR matrix from raw parts, checking the invariants.
    ///
    /// # Panics
    /// Panics if the invariants listed on the type are violated.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length mismatch");
        // bounds: row_ptr.len() == nrows + 1 was asserted just above
        assert_eq!(row_ptr[nrows], col_idx.len(), "row_ptr end");
        for r in 0..nrows {
            assert!(row_ptr[r] <= row_ptr[r + 1], "row_ptr monotone");
            let cols = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns sorted and unique in row {r}");
            }
            if let Some(&c) = cols.last() {
                assert!((c as usize) < ncols, "column index out of range");
            }
        }
        CsrMatrix::from_raw(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Fallible variant of [`CsrMatrix::from_parts`]: validates the same
    /// invariants (plus finite values) and returns the violation instead of
    /// panicking. This is the constructor decode paths must use — artifact
    /// bytes are untrusted input.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, InvariantViolation> {
        let m = CsrMatrix::from_raw(nrows, ncols, row_ptr, col_idx, values);
        m.check_invariants()?;
        Ok(m)
    }

    /// Validates the structural invariants documented on the type:
    /// `row_ptr` shape and monotonicity, strictly increasing in-bounds
    /// column indices per row, and finite stored values.
    ///
    /// Always compiled; use [`CsrMatrix::debug_invariants`] for the
    /// zero-cost-in-release variant.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let fail = |rule: &'static str, message: String, witness: Vec<usize>| {
            Err(InvariantViolation::new(
                "hicond-linalg",
                "CsrMatrix",
                rule,
                message,
                witness,
            ))
        };
        // checked_sub keeps the comparison total when a decoded nrows is
        // usize::MAX (nrows + 1 would overflow).
        if self.row_ptr.len().checked_sub(1) != Some(self.nrows) {
            return fail(
                "row-ptr-len",
                format!(
                    "row_ptr has length {}, expected nrows + 1 for nrows = {}",
                    self.row_ptr.len(),
                    self.nrows
                ),
                vec![],
            );
        }
        if self.col_idx.len() != self.values.len() {
            return fail(
                "col-val-len",
                format!(
                    "{} column indices vs {} values",
                    self.col_idx.len(),
                    self.values.len()
                ),
                vec![],
            );
        }
        if self.row_ptr.first() != Some(&0) || self.row_ptr.last() != Some(&self.col_idx.len()) {
            return fail(
                "row-ptr-ends",
                format!(
                    "row_ptr must start at 0 and end at nnz = {}",
                    self.col_idx.len()
                ),
                vec![],
            );
        }
        // A validator must be total: every access below is `get`-based, so
        // a row_ptr whose interior entries are wild (possible in decoded
        // bytes) reports a violation instead of panicking mid-check.
        for r in 0..self.nrows {
            let row = self
                .row_ptr
                .get(r)
                .zip(self.row_ptr.get(r + 1))
                .map(|(&lo, &hi)| (lo, hi));
            let Some((lo, hi)) = row else {
                return fail("row-ptr-len", format!("row_ptr misses row {r}"), vec![r]);
            };
            if lo > hi || hi > self.col_idx.len() {
                return fail(
                    "row-ptr-monotone",
                    format!("row_ptr range [{lo}, {hi}) invalid at row {r}"),
                    vec![r],
                );
            }
            let cols = self.col_idx.get(lo..hi).unwrap_or(&[]);
            for w in cols.windows(2) {
                let (Some(&a), Some(&b)) = (w.first(), w.last()) else {
                    continue;
                };
                if a >= b {
                    return fail(
                        "cols-sorted",
                        format!("row {r} columns not strictly increasing ({a} then {b})"),
                        vec![r, a as usize, b as usize],
                    );
                }
            }
            if let Some(&c) = cols.last() {
                if (c as usize) >= self.ncols {
                    return fail(
                        "cols-in-bounds",
                        format!("row {r} has column {c} >= ncols {}", self.ncols),
                        vec![r, c as usize],
                    );
                }
            }
        }
        for (k, &v) in self.values.iter().enumerate() {
            if !v.is_finite() {
                return fail(
                    "values-finite",
                    format!("stored value at position {k} is {v}"),
                    vec![k],
                );
            }
        }
        Ok(())
    }

    /// Validates Laplacian-specific invariants on top of
    /// [`CsrMatrix::check_invariants`]: the matrix is square, symmetric
    /// (within `tol` relative), and every row sums to zero (within `tol`
    /// of the diagonal scale).
    pub fn check_laplacian_invariants(&self, tol: f64) -> Result<(), InvariantViolation> {
        self.check_invariants()?;
        let fail = |rule: &'static str, message: String, witness: Vec<usize>| {
            Err(InvariantViolation::new(
                "hicond-linalg",
                "CsrMatrix",
                rule,
                message,
                witness,
            ))
        };
        if self.nrows != self.ncols {
            return fail(
                "laplacian-square",
                format!("{}×{} matrix is not square", self.nrows, self.ncols),
                vec![],
            );
        }
        for r in 0..self.nrows {
            let mut sum = 0.0;
            let mut scale: f64 = 1.0;
            for (c, v) in self.row(r) {
                sum += v;
                scale = scale.max(v.abs());
                let vt = self.get(c, r);
                if !crate::approx_eq(v, vt, tol) {
                    return fail(
                        "laplacian-symmetric",
                        format!("A[{r},{c}] = {v} but A[{c},{r}] = {vt}"),
                        vec![r, c],
                    );
                }
            }
            if sum.abs() > tol * scale {
                return fail(
                    "laplacian-zero-row-sum",
                    format!("row {r} sums to {sum} (scale {scale})"),
                    vec![r],
                );
            }
        }
        Ok(())
    }

    /// Panics on any violation of [`CsrMatrix::check_invariants`].
    /// Compiles to a no-op in release builds unless the
    /// `check-invariants` feature is enabled.
    ///
    /// # Panics
    /// Panics with the structured violation report when a structural
    /// invariant fails and checks are compiled in.
    #[inline]
    pub fn debug_invariants(&self) {
        #[cfg(any(debug_assertions, feature = "check-invariants"))]
        crate::invariant::enforce(self.check_invariants());
    }

    /// Panics on any violation of [`CsrMatrix::check_laplacian_invariants`]
    /// at tolerance [`crate::DEFAULT_REL_TOL`]. No-op in release builds
    /// unless the `check-invariants` feature is enabled.
    ///
    /// # Panics
    /// Panics with the structured violation report when a Laplacian
    /// invariant fails and checks are compiled in.
    #[inline]
    pub fn debug_laplacian_invariants(&self) {
        #[cfg(any(debug_assertions, feature = "check-invariants"))]
        crate::invariant::enforce(self.check_laplacian_invariants(crate::DEFAULT_REL_TOL));
    }

    /// The `n × n` zero matrix (no stored entries).
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix::from_raw(nrows, ncols, vec![0; nrows + 1], Vec::new(), Vec::new())
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix::from_raw(
            n,
            n,
            (0..=n).collect(),
            (0..n as u32).collect(),
            vec![1.0; n],
        )
    }

    /// Diagonal matrix with the given diagonal.
    pub fn from_diagonal(d: &[f64]) -> Self {
        let n = d.len();
        CsrMatrix::from_raw(n, n, (0..=n).collect(), (0..n as u32).collect(), d.to_vec())
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to stored values (structure is fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Iterates the `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        self.col_idx[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Entry `(i, j)` or 0 if not stored. Binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a dense vector (square matrices).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.nrows, self.ncols, "diagonal of non-square matrix");
        (0..self.nrows).map(|i| self.get(i, i)).collect()
    }

    /// Sequential `y = A x` into a caller-provided buffer.
    ///
    /// This is the **reference kernel**: every other SpMV path in the crate
    /// (row-parallel, blocked, SELL) must reproduce its output bitwise. The
    /// inner loop runs over row slices (`zip` of columns and values) so the
    /// optimizer drops the per-nonzero bounds checks; the accumulation
    /// order — increasing storage position, `v * x[c]` per term, one scalar
    /// accumulator per row — is the contract the twins must honor.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length disagrees with the matrix shape.
    pub fn mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "mul: x length");
        assert_eq!(y.len(), self.nrows, "mul: y length");
        for (r, yr) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[r];
            let hi = self.row_ptr[r + 1];
            let mut acc = 0.0;
            for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// Parallel `y = A x` (row-parallel; deterministic since each row is a
    /// single sequential reduction).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` length disagrees with the matrix shape.
    pub fn par_mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "mul: x length");
        assert_eq!(y.len(), self.nrows, "mul: y length");
        let rp = &self.row_ptr;
        let ci = &self.col_idx;
        let vs = &self.values;
        y.par_iter_mut().enumerate().for_each(|(r, yr)| {
            let lo = rp[r];
            let hi = rp[r + 1];
            let mut acc = 0.0;
            for (&c, &v) in ci[lo..hi].iter().zip(&vs[lo..hi]) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        });
    }

    /// The lazily built row-band index backing the blocked SpMV kernel, or
    /// `None` when the structure cannot be band-indexed (a single band
    /// would overflow `u32` local offsets). Built at most once per matrix;
    /// the cache depends only on structure, so it remains valid across
    /// [`CsrMatrix::values_mut`] edits.
    pub fn block_index(&self) -> Option<&BlockIndex> {
        self.bands
            .get_or_init(|| BlockIndex::build(self.nrows, &self.row_ptr))
            .as_ref()
    }

    /// `y = A x` under an execution policy.
    ///
    /// Matrices at or above the [`blocked::spmv_block_threshold`] nonzero
    /// count route through the cache-blocked kernel (band-parallel when the
    /// policy allows); smaller ones use the plain row loop. All paths are
    /// bitwise identical, so the thresholds tune speed, never results.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_into_with(&self, x: &[f64], y: &mut [f64], par: Parallelism) {
        assert_eq!(x.len(), self.ncols, "mul: x length");
        assert_eq!(y.len(), self.nrows, "mul: y length");
        if self.nnz() >= blocked::spmv_block_threshold() {
            if let Some(bi) = self.block_index() {
                if par.is_parallel() && self.nrows >= 4096 {
                    bi.par_mul_into(&self.col_idx, &self.values, x, y);
                } else {
                    bi.mul_into(&self.col_idx, &self.values, x, y);
                }
                return;
            }
        }
        if par.is_parallel() && self.nrows >= 4096 {
            self.par_mul_into(x, y);
        } else {
            self.mul_into(x, y);
        }
    }

    /// Allocating `A x`.
    pub fn mul(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.mul_into_with(x, &mut y, Parallelism::default());
        y
    }

    /// Transpose (also CSR). Runs in O(nnz + ncols) with one counting pass
    /// and no auxiliary cursor array: `row_ptr[c]` doubles as the insert
    /// cursor for column `c` during the scatter and is shifted back into
    /// place afterwards.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0; nnz];
        for r in 0..self.nrows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k] as usize;
                let pos = row_ptr[c];
                row_ptr[c] += 1;
                col_idx[pos] = r as u32;
                values[pos] = self.values[k];
            }
        }
        // Each cursor ended at the start of the next column's range; shift
        // right by one to restore the row-pointer invariant.
        for c in (1..=self.ncols).rev() {
            row_ptr[c] = row_ptr[c - 1];
        }
        row_ptr[0] = 0;
        // Row order of the source guarantees each output row is sorted.
        CsrMatrix::from_raw(self.ncols, self.nrows, row_ptr, col_idx, values)
    }

    /// Checks symmetry up to relative tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| crate::approx_eq(*a, *b, tol))
    }

    /// Sparse matrix sum `A + B` (same shape). Runs in O(nnz(A) + nnz(B))
    /// via a two-pointer merge of each (sorted) row pair — one counting
    /// pass to size the output exactly, one fill pass, no intermediate
    /// triplet buffer or sort.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn add(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let merge_row = |r: usize, emit: &mut dyn FnMut(u32, f64)| {
            let (mut i, ie) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let (mut j, je) = (other.row_ptr[r], other.row_ptr[r + 1]);
            while i < ie && j < je {
                let (ci, cj) = (self.col_idx[i], other.col_idx[j]);
                match ci.cmp(&cj) {
                    std::cmp::Ordering::Less => {
                        emit(ci, self.values[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        emit(cj, other.values[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        emit(ci, self.values[i] + other.values[j]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            while i < ie {
                emit(self.col_idx[i], self.values[i]);
                i += 1;
            }
            while j < je {
                emit(other.col_idx[j], other.values[j]);
                j += 1;
            }
        };
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for r in 0..self.nrows {
            let mut cnt = 0usize;
            merge_row(r, &mut |_, _| cnt += 1);
            row_ptr[r + 1] = cnt;
        }
        for r in 0..self.nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let nnz = row_ptr[self.nrows];
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for r in 0..self.nrows {
            merge_row(r, &mut |c, v| {
                col_idx.push(c);
                values.push(v);
            });
        }
        let m = CsrMatrix::from_raw(self.nrows, self.ncols, row_ptr, col_idx, values);
        m.debug_invariants();
        m
    }

    /// `A * s` for scalar `s`.
    pub fn scaled(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Sparse–sparse product `A · B`.
    ///
    /// Row-parallel Gustavson with a dense accumulator per worker; used for
    /// the quotient triple product `Q = Rᵀ A R` (paper Remark 1 notes this is
    /// "easily computed via parallel sparse matrix multiplication").
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul shape");
        let n = self.nrows;
        let m = other.ncols;
        let rows: Vec<(Vec<u32>, Vec<f64>)> = (0..n)
            .into_par_iter()
            .map(|r| {
                let mut cols: Vec<u32> = Vec::new();
                let mut vals: Vec<f64> = Vec::new();
                // Sort-merge accumulator; rows are short in every use here
                // (bounded-degree Laplacians, 0/1 membership matrices).
                let mut acc: Vec<(u32, f64)> = Vec::new();
                for (k, av) in self.row(r) {
                    for (c, bv) in other.row(k) {
                        acc.push((c as u32, av * bv));
                    }
                }
                acc.sort_unstable_by_key(|&(c, _)| c);
                for (c, v) in acc {
                    match vals.last_mut() {
                        Some(last_v) if cols.last() == Some(&c) => *last_v += v,
                        _ => {
                            cols.push(c);
                            vals.push(v);
                        }
                    }
                }
                (cols, vals)
            })
            .collect();
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut nnz = 0usize;
        for (c, _) in &rows {
            nnz += c.len();
            row_ptr.push(nnz);
        }
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (c, v) in rows {
            col_idx.extend(c);
            values.extend(v);
        }
        CsrMatrix::from_raw(n, m, row_ptr, col_idx, values)
    }

    /// Extracts the principal submatrix on `keep` (indices must be sorted,
    /// unique). Returns the submatrix in the induced order.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or an index is out of range.
    pub fn principal_submatrix(&self, keep: &[usize]) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols);
        let mut inv = vec![u32::MAX; self.nrows];
        for (new, &old) in keep.iter().enumerate() {
            inv[old] = new as u32;
        }
        let mut b = CooBuilder::new(keep.len(), keep.len());
        for (new_r, &old_r) in keep.iter().enumerate() {
            for (c, v) in self.row(old_r) {
                if inv[c] != u32::MAX {
                    b.push(new_r, inv[c] as usize, v);
                }
            }
        }
        b.build()
    }

    /// Drops stored entries with `|value| <= eps` (structural cleanup).
    pub fn pruned(&self, eps: f64) -> CsrMatrix {
        let mut b = CooBuilder::new(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                if v.abs() > eps {
                    b.push(r, c, v);
                }
            }
        }
        b.build()
    }

    /// Converts to a dense row-major matrix (small problems / tests only).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut d = crate::dense::DenseMatrix::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (c, v) in self.row(r) {
                d[(r, c)] += v;
            }
        }
        d
    }
}

/// Triplet (COO) accumulator that builds a [`CsrMatrix`], summing duplicates.
#[derive(Debug, Clone)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// New empty builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// With preallocated capacity for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates are summed at build time.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.nrows && col < self.ncols, "triplet in range");
        self.entries.push((row as u32, col as u32, value));
    }

    /// Adds a symmetric pair `(row, col)` and `(col, row)`.
    pub fn push_sym(&mut self, row: usize, col: usize, value: f64) {
        self.push(row, col, value);
        if row != col {
            self.push(col, row, value);
        }
    }

    /// Number of triplets currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no triplets buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts, merges duplicates, and emits the CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries
            .par_sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut out_col: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut out_val: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut out_row_ptr = vec![0usize; self.nrows + 1];
        let mut k = 0usize;
        let n = self.entries.len();
        for r in 0..self.nrows as u32 {
            while k < n && self.entries[k].0 == r {
                let c = self.entries[k].1;
                let mut acc = self.entries[k].2;
                k += 1;
                while k < n && self.entries[k].0 == r && self.entries[k].1 == c {
                    acc += self.entries[k].2;
                    k += 1;
                }
                out_col.push(c);
                out_val.push(acc);
            }
            out_row_ptr[r as usize + 1] = out_col.len();
        }
        let m = CsrMatrix::from_raw(self.nrows, self.ncols, out_row_ptr, out_col, out_val);
        m.debug_invariants();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 -1 0; -1 2 -1; 0 -1 2]
        let mut b = CooBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 2.0);
        }
        b.push_sym(0, 1, -1.0);
        b.push_sym(1, 2, -1.0);
        b.build()
    }

    #[test]
    fn build_and_get() {
        let a = small();
        assert_eq!(a.nnz(), 7);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 2), 0.0);
        assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.5);
        b.push(1, 0, -1.0);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn matvec() {
        let a = small();
        let y = a.mul(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn par_matvec_matches() {
        let n = 10_000;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.mul_into(&x, &mut y1);
        a.par_mul_into(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn blocked_dispatch_is_bitwise_transparent() {
        // Force every mul_into_with through the blocked kernel and check it
        // agrees bitwise with the reference at both parallelism policies.
        let _guard = crate::blocked::TEST_THRESHOLD_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let n = 9_000;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 3.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
            if i + 37 < n {
                b.push_sym(i, i + 37, -0.5);
            }
        }
        let a = b.build();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut y_ref = vec![0.0; n];
        a.mul_into(&x, &mut y_ref);
        crate::blocked::set_spmv_block_threshold(Some(0));
        let mut y_seq = vec![0.0; n];
        let mut y_par = vec![0.0; n];
        a.mul_into_with(&x, &mut y_seq, Parallelism::Sequential);
        a.mul_into_with(&x, &mut y_par, Parallelism::Parallel);
        crate::blocked::set_spmv_block_threshold(None);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&y_ref), bits(&y_seq));
        assert_eq!(bits(&y_ref), bits(&y_par));
        assert!(a.block_index().is_some());
    }

    #[test]
    fn transpose_roundtrip() {
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 2, 5.0);
        b.push(1, 0, 1.0);
        b.push(1, 1, -2.0);
        let a = b.build();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 1.0);
        let tt = t.transpose();
        assert_eq!(a, tt);
    }

    #[test]
    fn transpose_preserves_nnz() {
        let mut b = CooBuilder::new(50, 30);
        for i in 0..50 {
            b.push(i, (i * 7) % 30, i as f64 + 1.0);
            b.push(i, (i * 13 + 5) % 30, -(i as f64));
        }
        let a = b.build();
        let t = a.transpose();
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(t.transpose(), a);
        // Explicit structural zeros survive the transpose too.
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 0.0);
        let z = b.build();
        assert_eq!(z.transpose().nnz(), 1);
    }

    #[test]
    fn add_merges_in_linear_time_shape() {
        // Disjoint, overlapping, and cancelling entries in one test.
        let mut b1 = CooBuilder::new(3, 3);
        b1.push(0, 0, 1.0);
        b1.push(0, 2, 2.0);
        b1.push(2, 1, 4.0);
        let a = b1.build();
        let mut b2 = CooBuilder::new(3, 3);
        b2.push(0, 1, 3.0);
        b2.push(0, 2, -2.0); // cancels a's (0,2) in value, not structure
        b2.push(1, 0, 5.0);
        let b = b2.build();
        let s = a.add(&b);
        // Union of patterns: (0,0) (0,1) (0,2) (1,0) (2,1).
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 3.0);
        assert_eq!(s.get(0, 2), 0.0); // structural zero kept, like CooBuilder
        assert_eq!(s.get(1, 0), 5.0);
        assert_eq!(s.get(2, 1), 4.0);
        // Commutes and matches the triplet-builder semantics.
        assert_eq!(s, b.add(&a));
    }

    #[test]
    fn add_nnz_bounds() {
        let a = small();
        let sum = a.add(&a);
        assert_eq!(sum.nnz(), a.nnz()); // identical pattern: no growth
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(sum.get(r, c), 2.0 * a.get(r, c));
            }
        }
        let empty = CsrMatrix::zeros(3, 3);
        assert_eq!(a.add(&empty), a);
        assert_eq!(empty.add(&a), a);
    }

    #[test]
    fn matmul_small() {
        let a = small();
        let i = CsrMatrix::identity(3);
        let ai = a.matmul(&i);
        assert_eq!(ai, a);
        // A * A on the path Laplacian+2I
        let aa = a.matmul(&a);
        assert_eq!(aa.get(0, 0), 5.0); // 2*2 + (-1)(-1)
        assert_eq!(aa.get(0, 2), 1.0);
    }

    #[test]
    fn principal_submatrix_picks_rows_cols() {
        let a = small();
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(1, 1), 2.0);
    }

    #[test]
    fn add_and_scale() {
        let a = small();
        let two_a = a.add(&a);
        assert_eq!(two_a.get(1, 0), -2.0);
        let s = a.scaled(3.0);
        assert_eq!(s.get(1, 1), 6.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = small();
        assert_eq!(a.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn pruned_drops_small() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 1e-15);
        let a = b.build().pruned(1e-12);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn from_diagonal_matvec() {
        let d = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.mul(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }
}

/// Property tests that the invariant layer accepts everything the builder
/// produces and rejects targeted corruptions of the private representation.
/// These live inside the module so they can mutate `row_ptr`/`col_idx`/
/// `values` directly.
#[cfg(test)]
mod invariant_props {
    use super::*;
    use proptest::prelude::*;

    /// Random sparse matrix on `n` columns built through [`CooBuilder`]
    /// (duplicates allowed; the builder merges them).
    fn coo_matrix(n: usize) -> impl Strategy<Value = CsrMatrix> {
        prop::collection::vec((0..n, 0..n, -10.0..10.0f64), 1..4 * n).prop_map(move |entries| {
            let mut b = CooBuilder::new(n, n);
            for (r, c, v) in entries {
                b.push(r, c, v);
            }
            b.build()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn builder_output_satisfies_invariants(m in coo_matrix(9)) {
            prop_assert!(m.check_invariants().is_ok());
        }

        #[test]
        fn non_finite_value_is_rejected(mut m in coo_matrix(9), k in any::<usize>()) {
            prop_assume!(m.nnz() > 0);
            let k = k % m.values.len();
            m.values[k] = f64::NAN;
            let err = m.check_invariants().expect_err("NaN value must be rejected");
            prop_assert_eq!(err.rule, "values-finite");
        }

        #[test]
        fn out_of_bounds_column_is_rejected(mut m in coo_matrix(9), k in any::<usize>()) {
            prop_assume!(m.nnz() > 0);
            let k = k % m.col_idx.len();
            // bounds: ncols is 9 here, far below u32::MAX
            m.col_idx[k] = m.ncols as u32;
            // Depending on position this trips either the sortedness or
            // the bounds rule; both are violations.
            prop_assert!(m.check_invariants().is_err());
        }

        #[test]
        fn unsorted_columns_are_rejected(mut m in coo_matrix(9)) {
            // Swap the first two entries of some row with distinct columns.
            let row = (0..m.nrows).find(|&r| {
                let (s, e) = (m.row_ptr[r], m.row_ptr[r + 1]);
                e - s >= 2 && m.col_idx[s] != m.col_idx[s + 1]
            });
            let r = match row {
                Some(r) => r,
                None => return, // discard: no row wide enough to corrupt
            };
            let s = m.row_ptr[r];
            m.col_idx.swap(s, s + 1);
            let err = m.check_invariants().expect_err("unsorted row must be rejected");
            prop_assert_eq!(err.rule, "cols-sorted");
        }

        #[test]
        fn broken_row_ptr_is_rejected(mut m in coo_matrix(9)) {
            prop_assume!(m.nnz() > 0);
            // Truncating the final offset desynchronizes row_ptr from the
            // entry arrays.
            m.row_ptr[m.nrows] -= 1;
            prop_assert!(m.check_invariants().is_err());
        }
    }
}
