//! Cache-blocked CSR SpMV: row-band blocking with a precomputed block index.
//!
//! Plain CSR SpMV walks `row_ptr: &[usize]` and performs one indexed load
//! per nonzero through three parallel arrays. On matrices whose working set
//! exceeds the last-level cache, the row-pointer traffic and bounds checks
//! become a measurable fraction of the per-nnz cost. This module trades a
//! one-time O(nrows) index build for a tighter steady-state kernel:
//!
//! * rows are grouped into **bands** of [`BAND_ROWS`] rows, so the output
//!   slice, the band's row pointers, and the band's nonzeros stream through
//!   cache together;
//! * each band stores **band-local `u32` row pointers** (offsets from the
//!   band's first nonzero), halving index bandwidth versus `usize` and
//!   letting the inner loop run over plain slices with no bounds checks;
//! * the parallel path assigns whole bands to workers via
//!   `par_chunks_mut(BAND_ROWS)` — each output element is still written by
//!   exactly one worker, and each row is still a single sequential
//!   reduction in storage order.
//!
//! **Bitwise contract.** Both blocked kernels accumulate every row in
//! exactly the order [`crate::csr::CsrMatrix::mul_into`] does (increasing
//! nonzero position, `v * x[c]` per element, one scalar accumulator per
//! row). Blocking changes *which* pointer arithmetic finds the row, never
//! the floating-point expression — so blocked and unblocked results are
//! bitwise identical at any thread count, and the dispatch threshold is a
//! pure performance knob that tests may pin to 0 or `usize::MAX` freely.
//!
//! An optional SELL-C-style padded layout ([`SellMatrix`], feature `sell`)
//! regularizes short rows for wide hardware; it keeps the same per-row
//! accumulation order via an explicit row-length guard, so it also matches
//! the reference bitwise.

use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Rows per cache band. 1024 rows × (8B ptr + ~5 nnz × 12B) keeps a band's
/// index and value traffic comfortably inside a 256 KiB L2 slice for the
/// bounded-degree Laplacians this workspace solves.
pub const BAND_ROWS: usize = 1024;

/// Default nnz threshold above which [`crate::csr::CsrMatrix::mul_into_with`]
/// routes through the blocked kernel. Below it the index build and extra
/// indirection cost more than they save.
pub const DEFAULT_BLOCK_NNZ: usize = 1 << 15;

/// Sentinel meaning "no runtime override installed".
const UNSET: usize = usize::MAX;

/// Serializes tests that toggle the process-global threshold override.
/// Results are threshold-independent (all kernels bitwise identical), but
/// assertions *about the threshold value itself* must not interleave.
#[cfg(test)]
pub(crate) static TEST_THRESHOLD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

static BLOCK_NNZ_OVERRIDE: AtomicUsize = AtomicUsize::new(UNSET);

/// Overrides the blocked-SpMV nnz dispatch threshold for this process.
///
/// `Some(0)` forces every SpMV through the blocked path (determinism tests
/// use this), `Some(n)` sets the crossover, and `None` restores the
/// environment/default resolution. Because blocked and unblocked kernels
/// are bitwise identical, toggling this concurrently with solves is safe —
/// it changes speed, never results. An override of `usize::MAX` disables
/// blocking entirely.
pub fn set_spmv_block_threshold(t: Option<usize>) {
    // UNSET doubles as the sentinel; Some(usize::MAX) and None coincide in
    // effect only when the default also resolves to MAX, so map MAX - 0
    // explicitly: Some(MAX) means "never block", which the dispatch test
    // `nnz >= MAX` already expresses for every finite matrix.
    // ordering: Relaxed suffices — the threshold is a self-contained
    // performance knob, not a publication latch: no other memory is
    // released by this store, and readers seeing a stale value merely
    // dispatch the other (bitwise-identical) kernel.
    BLOCK_NNZ_OVERRIDE.store(t.unwrap_or(UNSET), Ordering::Relaxed);
}

/// Resolves the active blocked-SpMV nnz threshold: runtime override if one
/// is installed, else `HICOND_SPMV_BLOCK_NNZ`, else [`DEFAULT_BLOCK_NNZ`].
///
/// # Panics
/// Panics if `HICOND_SPMV_BLOCK_NNZ` is set but not a base-10 `usize` —
/// the same strict stance as `HICOND_THREADS`: a set-but-garbled tuning
/// variable is an operator error that must fail fast, not degrade silently.
pub fn spmv_block_threshold() -> usize {
    // ordering: Relaxed suffices — the value is complete in the atomic
    // itself (no guarded payload to acquire), and a racing reader at worst
    // picks the other bitwise-identical kernel for one dispatch.
    let o = BLOCK_NNZ_OVERRIDE.load(Ordering::Relaxed);
    if o != UNSET {
        return o;
    }
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("HICOND_SPMV_BLOCK_NNZ") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(v) => v,
            // A set-but-garbled env var is an operator error that must fail
            // fast, not degrade silently.
            // audit: allow(panic-path)
            Err(_) => panic!(
                "invalid HICOND_SPMV_BLOCK_NNZ value `{raw}`: expected a non-negative integer"
            ),
        },
        Err(_) => DEFAULT_BLOCK_NNZ,
    })
}

/// Precomputed row-band index over a CSR structure.
///
/// For band `b` covering rows `[b·BAND_ROWS, min((b+1)·BAND_ROWS, nrows))`:
/// `nnz_start[b]` is the global position of the band's first nonzero and
/// `local_ptr[ptr_start(b) + i]` is the `u32` offset of band row `i`'s
/// nonzeros from `nnz_start[b]` (one extra terminator entry per band).
/// Depends only on `row_ptr`, never on values — so it stays valid across
/// `values_mut` edits.
#[derive(Debug, Clone)]
pub struct BlockIndex {
    nrows: usize,
    nnz_start: Vec<usize>,
    local_ptr: Vec<u32>,
}

impl BlockIndex {
    /// Builds the band index for a CSR row-pointer array (`row_ptr.len() ==
    /// nrows + 1`, monotone — guaranteed by `CsrMatrix`'s invariants).
    ///
    /// Returns `None` if any single band holds more than `u32::MAX`
    /// nonzeros (≥ 4 Gi entries in 1024 rows) — callers fall back to the
    /// unblocked kernel, which is bitwise identical anyway.
    pub fn build(nrows: usize, row_ptr: &[usize]) -> Option<BlockIndex> {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        let nbands = nrows.div_ceil(BAND_ROWS);
        let mut nnz_start = Vec::with_capacity(nbands);
        let mut local_ptr = Vec::with_capacity(nrows + nbands);
        for b in 0..nbands {
            let r0 = b * BAND_ROWS;
            let r1 = ((b + 1) * BAND_ROWS).min(nrows);
            let base = row_ptr[r0];
            if row_ptr[r1] - base > u32::MAX as usize {
                return None;
            }
            nnz_start.push(base);
            for &p in &row_ptr[r0..=r1] {
                local_ptr.push((p - base) as u32);
            }
        }
        Some(BlockIndex {
            nrows,
            nnz_start,
            local_ptr,
        })
    }

    /// Number of row bands.
    pub fn nbands(&self) -> usize {
        self.nnz_start.len()
    }

    /// Heap bytes held by the index (for capacity accounting).
    pub fn heap_bytes(&self) -> usize {
        self.nnz_start.len() * std::mem::size_of::<usize>()
            + self.local_ptr.len() * std::mem::size_of::<u32>()
    }

    /// Start of band `b`'s entries inside `local_ptr` (each band owns
    /// `rows_in_band + 1` entries).
    #[inline]
    fn ptr_start(&self, b: usize) -> usize {
        // Every band before the last has exactly BAND_ROWS + 1 entries.
        b * (BAND_ROWS + 1)
    }

    /// Computes one band of `y = A x`: rows `[r0, r1)` of the product into
    /// `y_band` (length `r1 - r0`). The inner loop is the bitwise-identical
    /// twin of the reference kernel's, expressed over band-local slices.
    #[inline]
    fn band_into(&self, b: usize, col_idx: &[u32], values: &[f64], x: &[f64], y_band: &mut [f64]) {
        let base = self.nnz_start[b];
        let ps = self.ptr_start(b);
        let lp = &self.local_ptr[ps..ps + y_band.len() + 1];
        let band_nnz = lp[y_band.len()] as usize;
        let ci = &col_idx[base..base + band_nnz];
        let vs = &values[base..base + band_nnz];
        for (i, yr) in y_band.iter_mut().enumerate() {
            let lo = lp[i] as usize;
            let hi = lp[i + 1] as usize;
            let mut acc = 0.0;
            for (&c, &v) in ci[lo..hi].iter().zip(&vs[lo..hi]) {
                // CsrMatrix validates col indices at construction,
                // so `c` is in bounds: c < ncols == x.len().
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// Sequential blocked `y = A x`. Bitwise identical to
    /// [`crate::csr::CsrMatrix::mul_into`] on the same operands.
    ///
    /// # Panics
    /// Panics if `y.len()` disagrees with the indexed row count.
    pub fn mul_into(&self, col_idx: &[u32], values: &[f64], x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "blocked mul: y length");
        if hicond_obs::enabled() {
            hicond_obs::counter_add("spmv/blocks", self.nbands() as u64);
        }
        for (b, y_band) in y.chunks_mut(BAND_ROWS).enumerate() {
            self.band_into(b, col_idx, values, x, y_band);
        }
    }

    /// Parallel blocked `y = A x`: whole bands are distributed across
    /// workers, each band computed by the sequential band kernel. Since a
    /// band's result does not depend on which worker runs it, the output is
    /// bitwise identical to the sequential path at any thread count.
    ///
    /// # Panics
    /// Panics if `y.len()` disagrees with the indexed row count.
    pub fn par_mul_into(&self, col_idx: &[u32], values: &[f64], x: &[f64], y: &mut [f64]) {
        assert_eq!(y.len(), self.nrows, "blocked mul: y length");
        if hicond_obs::enabled() {
            hicond_obs::counter_add("spmv/blocks", self.nbands() as u64);
        }
        y.par_chunks_mut(BAND_ROWS)
            .enumerate()
            .for_each(|(b, y_band)| {
                self.band_into(b, col_idx, values, x, y_band);
            });
    }

    /// Multi-vector blocked SpMV: `ys[j] = A xs[j]` for every column, with
    /// a **band-major** traversal — each matrix band's pointers, indices,
    /// and values are loaded once and feed all k columns while still hot in
    /// cache, instead of being re-streamed k times. This is the kernel the
    /// block-PCG engine amortizes its matrix traffic with.
    ///
    /// The per-(band, column) work is exactly [`Self::band_into`], so each
    /// column's result is bitwise identical to [`Self::mul_into`] on that
    /// column alone; band-major vs column-major ordering moves no
    /// floating-point operation *within* a column. The parallel path
    /// distributes whole bands (each worker writing its band's rows of
    /// every column), preserving the one-writer-per-element discipline —
    /// bitwise identical at any thread count and jitter seed.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` disagree in column count or any output
    /// column's length disagrees with the indexed row count.
    pub fn mul_block_into(
        &self,
        col_idx: &[u32],
        values: &[f64],
        xs: &[&[f64]],
        ys: &mut [&mut [f64]],
        parallel: bool,
    ) {
        assert_eq!(xs.len(), ys.len(), "blocked block mul: column count");
        for y in ys.iter() {
            assert_eq!(y.len(), self.nrows, "blocked block mul: y length");
        }
        if self.nrows == 0 || xs.is_empty() {
            return;
        }
        if hicond_obs::enabled() {
            hicond_obs::counter_add("spmv/blocks", self.nbands() as u64);
            hicond_obs::counter_add("spmv/block_columns", xs.len() as u64);
        }
        if !parallel {
            for b in 0..self.nbands() {
                let r0 = b * BAND_ROWS;
                let r1 = ((b + 1) * BAND_ROWS).min(self.nrows);
                for (x, y) in xs.iter().zip(ys.iter_mut()) {
                    self.band_into(b, col_idx, values, x, &mut y[r0..r1]);
                }
            }
            return;
        }
        // Regroup the k column buffers into per-band bundles (band b owns
        // rows [b·BAND_ROWS, …) of every column — disjoint mutable views,
        // extracted safely) so whole bands parallelize across workers.
        let mut per_band: Vec<Vec<&mut [f64]>> = (0..self.nbands())
            .map(|_| Vec::with_capacity(xs.len()))
            .collect();
        for y in ys.iter_mut() {
            for (b, band) in y.chunks_mut(BAND_ROWS).enumerate() {
                per_band[b].push(band);
            }
        }
        per_band
            .par_iter_mut()
            .enumerate()
            .for_each(|(b, y_bands)| {
                for (x, y_band) in xs.iter().zip(y_bands.iter_mut()) {
                    self.band_into(b, col_idx, values, x, y_band);
                }
            });
    }
}

/// SELL-C-style padded layout (`C = 8`, σ = 1: no row reordering).
///
/// Rows are grouped into chunks of 8; each chunk stores its nonzeros
/// slot-major (all rows' k-th entries adjacent), padded to the chunk's
/// widest row. An explicit per-row length guard skips padded lanes, so no
/// padded value ever enters the arithmetic — each row still accumulates its
/// real nonzeros in storage order, keeping the result bitwise identical to
/// the CSR reference. Enable with the `sell` feature; this layout is an
/// opt-in experiment for wide-SIMD hardware, not the default dispatch.
#[cfg(feature = "sell")]
#[derive(Debug, Clone)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    /// Slot offset of each chunk into `col_idx`/`values` (len = nchunks+1),
    /// in units of C-row groups: chunk c occupies slots
    /// `[chunk_ptr[c] * C, chunk_ptr[c+1] * C)`.
    chunk_ptr: Vec<usize>,
    /// Real nonzero count of every row (the padding guard).
    row_len: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

#[cfg(feature = "sell")]
impl SellMatrix {
    /// Chunk height.
    pub const C: usize = 8;

    /// Converts a CSR matrix into the padded layout.
    pub fn from_csr(m: &crate::csr::CsrMatrix) -> SellMatrix {
        let n = m.nrows();
        let rp = m.row_ptr();
        let nchunks = n.div_ceil(Self::C);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        chunk_ptr.push(0usize);
        let mut width = Vec::with_capacity(nchunks);
        for c in 0..nchunks {
            let r0 = c * Self::C;
            let r1 = ((c + 1) * Self::C).min(n);
            let w = (r0..r1).map(|r| rp[r + 1] - rp[r]).max().unwrap_or(0);
            width.push(w);
            chunk_ptr.push(chunk_ptr[c] + w);
        }
        let slots = chunk_ptr[nchunks] * Self::C;
        // Padding columns are 0 and padding values are 0.0, but the guard
        // means they are never read as operands — the zeros are inert.
        let mut col_idx = vec![0u32; slots];
        let mut values = vec![0.0f64; slots];
        let mut row_len = vec![0u32; n];
        let src_ci = m.col_idx();
        let src_vs = m.values();
        for c in 0..nchunks {
            let r0 = c * Self::C;
            let base = chunk_ptr[c] * Self::C;
            for r in r0..((c + 1) * Self::C).min(n) {
                let lane = r - r0;
                let (lo, hi) = (rp[r], rp[r + 1]);
                row_len[r] = (hi - lo) as u32;
                for (s, k) in (lo..hi).enumerate() {
                    let slot = base + s * Self::C + lane;
                    col_idx[slot] = src_ci[k];
                    values[slot] = src_vs[k];
                }
            }
        }
        SellMatrix {
            nrows: n,
            ncols: m.ncols(),
            chunk_ptr,
            row_len,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Stored slots including padding (the layout's bandwidth cost).
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// `y = A x`, slot-major traversal with per-row length guards.
    /// Bitwise identical to the CSR reference: row `r`'s k-th accumulated
    /// term is the same `v * x[c]` in the same order.
    ///
    /// # Panics
    /// Panics if `x` or `y` length disagrees with the matrix shape.
    pub fn mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "sell mul: x length");
        assert_eq!(y.len(), self.nrows, "sell mul: y length");
        for (c, y_chunk) in y.chunks_mut(Self::C).enumerate() {
            let base = self.chunk_ptr[c] * Self::C;
            let width = self.chunk_ptr[c + 1] - self.chunk_ptr[c];
            let r0 = c * Self::C;
            let mut acc = [0.0f64; Self::C];
            for s in 0..width {
                let slot0 = base + s * Self::C;
                for lane in 0..y_chunk.len() {
                    if (s as u32) < self.row_len[r0 + lane] {
                        let slot = slot0 + lane;
                        // Padded slots are excluded by the row_len guard.
                        acc[lane] += self.values[slot]
                            // bounds: live slots hold CSR col indices < ncols
                            * x[self.col_idx[slot] as usize];
                    }
                }
            }
            y_chunk.copy_from_slice(&acc[..y_chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;

    fn banded(n: usize, bw: usize) -> crate::csr::CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0 + (i % 7) as f64);
            for d in 1..=bw {
                if i + d < n {
                    b.push_sym(i, i + d, -1.0 / d as f64);
                }
            }
        }
        b.build()
    }

    #[test]
    fn blocked_matches_reference_bitwise() {
        // Sizes straddling one band, an exact band boundary, and many bands.
        for n in [5usize, BAND_ROWS, BAND_ROWS + 1, 3 * BAND_ROWS + 17] {
            let a = banded(n, 3);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let mut y_ref = vec![0.0; n];
            let mut y_blk = vec![0.0; n];
            let mut y_par = vec![0.0; n];
            a.mul_into(&x, &mut y_ref);
            let bi = BlockIndex::build(n, a.row_ptr()).expect("index builds");
            bi.mul_into(a.col_idx(), a.values(), &x, &mut y_blk);
            bi.par_mul_into(a.col_idx(), a.values(), &x, &mut y_par);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&y_ref), bits(&y_blk), "n={n} sequential");
            assert_eq!(bits(&y_ref), bits(&y_par), "n={n} parallel");
        }
    }

    #[test]
    fn block_mul_matches_per_column_bitwise() {
        for n in [7usize, BAND_ROWS, 2 * BAND_ROWS + 31] {
            let a = banded(n, 4);
            let cols: Vec<Vec<f64>> = (0..3)
                .map(|j| (0..n).map(|i| ((i + 31 * j) as f64 * 0.3).sin()).collect())
                .collect();
            let bi = BlockIndex::build(n, a.row_ptr()).expect("index builds");
            let mut refs: Vec<Vec<f64>> = vec![vec![0.0; n]; 3];
            for (x, y) in cols.iter().zip(refs.iter_mut()) {
                bi.mul_into(a.col_idx(), a.values(), x, y);
            }
            for parallel in [false, true] {
                let xs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
                let mut outs: Vec<Vec<f64>> = vec![vec![0.0; n]; 3];
                let mut ys: Vec<&mut [f64]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
                bi.mul_block_into(a.col_idx(), a.values(), &xs, &mut ys, parallel);
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                for (j, (got, want)) in outs.iter().zip(&refs).enumerate() {
                    assert_eq!(bits(got), bits(want), "n={n} parallel={parallel} col={j}");
                }
            }
        }
    }

    #[test]
    fn band_geometry() {
        let a = banded(2 * BAND_ROWS + 100, 2);
        let bi = BlockIndex::build(a.nrows(), a.row_ptr()).unwrap();
        assert_eq!(bi.nbands(), 3);
        assert!(bi.heap_bytes() > 0);
        // Empty matrix: zero bands, still valid.
        let z = crate::csr::CsrMatrix::zeros(0, 0);
        let bz = BlockIndex::build(0, z.row_ptr()).unwrap();
        assert_eq!(bz.nbands(), 0);
        let mut y: Vec<f64> = vec![];
        bz.mul_into(z.col_idx(), z.values(), &[], &mut y);
    }

    #[test]
    fn threshold_override_roundtrip() {
        let _guard = TEST_THRESHOLD_LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        set_spmv_block_threshold(Some(0));
        assert_eq!(spmv_block_threshold(), 0);
        set_spmv_block_threshold(Some(123));
        assert_eq!(spmv_block_threshold(), 123);
        set_spmv_block_threshold(None);
        // Default resolution (no env set in the test harness).
        let t = spmv_block_threshold();
        assert!(t == DEFAULT_BLOCK_NNZ || t > 0, "resolved {t}");
        set_spmv_block_threshold(None);
    }

    #[cfg(feature = "sell")]
    #[test]
    fn sell_matches_reference_bitwise() {
        for n in [3usize, 8, 9, 1000] {
            let a = banded(n, 4);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
            let mut y_ref = vec![0.0; n];
            a.mul_into(&x, &mut y_ref);
            let s = SellMatrix::from_csr(&a);
            assert_eq!(s.nrows(), n);
            assert!(s.padded_len() >= a.nnz());
            let mut y_sell = vec![0.0; n];
            s.mul_into(&x, &mut y_sell);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&y_ref), bits(&y_sell), "n={n}");
        }
    }
}
