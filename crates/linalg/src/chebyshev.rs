//! Chebyshev semi-iteration.
//!
//! A *linear* fixed-step solver: unlike CG (whose iterates depend
//! nonlinearly on the residual), `k` steps of Chebyshev iteration apply a
//! fixed polynomial in the operator, so the result is a legitimate
//! stationary preconditioner — usable as a smoother or inner coarse solve
//! inside multilevel cycles where PCG demands a fixed linear operator.
//! Requires (estimates of) the extreme eigenvalues of the operator on the
//! relevant subspace.

use crate::cg::Preconditioner;
use crate::lanczos::{lanczos_extreme, LanczosOptions, SpectrumEnd};
use crate::ops::LinearOperator;
use crate::vector::deflate_constant;
use crate::CsrMatrix;

/// Chebyshev iteration applying `p_k(A)·r ≈ A⁻¹r` on the eigenvalue
/// interval `[lambda_min, lambda_max]`.
#[derive(Debug, Clone)]
pub struct ChebyshevSolver {
    a: CsrMatrix,
    lambda_min: f64,
    lambda_max: f64,
    steps: usize,
    /// Project inputs/outputs orthogonal to the constant vector (set for
    /// singular Laplacians whose spectrum bound excludes the kernel).
    pub deflate_kernel: bool,
}

impl ChebyshevSolver {
    /// Builds with explicit spectrum bounds `0 < lambda_min ≤ lambda_max`.
    ///
    /// # Panics
    ///
    /// Panics if the eigenvalue bounds are invalid or `steps` is zero.
    pub fn new(a: &CsrMatrix, lambda_min: f64, lambda_max: f64, steps: usize) -> Self {
        assert!(
            lambda_min > 0.0 && lambda_max >= lambda_min,
            "need 0 < lambda_min <= lambda_max"
        );
        assert!(steps >= 1);
        ChebyshevSolver {
            a: a.clone(),
            lambda_min,
            lambda_max,
            steps,
            deflate_kernel: false,
        }
    }

    /// Estimates the spectrum bounds by Lanczos (deflating the constant
    /// vector for Laplacians) and builds the solver.
    pub fn with_estimated_spectrum(a: &CsrMatrix, steps: usize, laplacian_kernel: bool) -> Self {
        let n = a.nrows();
        let deflate = if laplacian_kernel {
            vec![vec![1.0; n]]
        } else {
            Vec::new()
        };
        let low = lanczos_extreme(
            a,
            &LanczosOptions {
                num_pairs: 1,
                which: SpectrumEnd::Smallest,
                deflate: deflate.clone(),
                max_subspace: 60.min(n),
                tol: 1e-6,
                ..Default::default()
            },
        );
        let high = lanczos_extreme(
            a,
            &LanczosOptions {
                num_pairs: 1,
                which: SpectrumEnd::Largest,
                deflate,
                max_subspace: 60.min(n),
                tol: 1e-6,
                ..Default::default()
            },
        );
        let lmin = low.eigenvalues.first().copied().unwrap_or(1e-12).max(1e-12);
        let lmax = high.eigenvalues.first().copied().unwrap_or(1.0).max(lmin);
        // Safety margins: Lanczos underestimates λmax slightly.
        let mut s = Self::new(a, 0.9 * lmin, 1.1 * lmax, steps);
        s.deflate_kernel = laplacian_kernel;
        s
    }

    /// Number of iteration steps (polynomial degree).
    pub fn steps(&self) -> usize {
        self.steps
    }
}

impl Preconditioner for ChebyshevSolver {
    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        if hicond_obs::enabled() {
            hicond_obs::counter_add("chebyshev/applies", 1);
            hicond_obs::counter_add("chebyshev/steps", self.steps as u64);
        }
        // Chebyshev acceleration (Saad, Iterative Methods, alg. 12.1) for
        // A x = r on [lambda_min, lambda_max], x0 = 0:
        //   d0 = r/theta;  rho0 = delta/theta
        //   x += d;  r -= A d
        //   rho_{k+1} = 1/(2·theta/delta − rho_k)
        //   d = rho_{k+1}·rho_k·d + (2·rho_{k+1}/delta)·r
        let n = self.dim();
        let theta = 0.5 * (self.lambda_max + self.lambda_min);
        let delta = 0.5 * (self.lambda_max - self.lambda_min).max(1e-300);
        let sigma = theta / delta;
        let mut res = r.to_vec();
        if self.deflate_kernel {
            deflate_constant(&mut res);
        }
        let mut x = vec![0.0; n];
        let mut d: Vec<f64> = res.iter().map(|v| v / theta).collect();
        let mut rho = 1.0 / sigma;
        let mut ad = vec![0.0; n];
        for k in 0..self.steps {
            for i in 0..n {
                x[i] += d[i];
            }
            if k + 1 == self.steps {
                break;
            }
            self.a.apply_into(&d, &mut ad);
            for i in 0..n {
                res[i] -= ad[i];
            }
            let rho_next = 1.0 / (2.0 * sigma - rho);
            for i in 0..n {
                d[i] = rho_next * rho * d[i] + (2.0 * rho_next / delta) * res[i];
            }
            rho = rho_next;
        }
        if self.deflate_kernel {
            deflate_constant(&mut x);
        }
        z.copy_from_slice(&x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::vector::{dot, norm2};

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn converges_on_spd() {
        let n = 50;
        let a = spd_tridiag(n);
        // Spectrum of 4 - 2cos: [2, 6].
        let cheb = ChebyshevSolver::new(&a, 2.0, 6.0, 30);
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.4).sin()).collect();
        let b = a.mul(&xtrue);
        let x = cheb.apply(&b);
        let err: f64 = x
            .iter()
            .zip(&xtrue)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-4 * norm2(&xtrue), "error {err}");
    }

    #[test]
    fn is_linear_operator() {
        // Chebyshev with fixed steps is linear: M(a·x + b·y) = a·Mx + b·My.
        let a = spd_tridiag(20);
        let cheb = ChebyshevSolver::new(&a, 2.0, 6.0, 7);
        let x: Vec<f64> = (0..20).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        let mix: Vec<f64> = x.iter().zip(&y).map(|(p, q)| 2.0 * p - 0.5 * q).collect();
        let m_mix = cheb.apply(&mix);
        let (mx, my) = (cheb.apply(&x), cheb.apply(&y));
        for i in 0..20 {
            assert!((m_mix[i] - (2.0 * mx[i] - 0.5 * my[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn symmetric_operator() {
        let a = spd_tridiag(25);
        let cheb = ChebyshevSolver::new(&a, 2.0, 6.0, 9);
        let x: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).sin()).collect();
        let y: Vec<f64> = (0..25).map(|i| (i as f64 * 1.3).cos()).collect();
        let (mx, my) = (cheb.apply(&x), cheb.apply(&y));
        let (l, r) = (dot(&y, &mx), dot(&x, &my));
        assert!((l - r).abs() < 1e-9 * l.abs().max(1.0));
    }

    #[test]
    fn estimated_spectrum_laplacian() {
        // Path Laplacian (singular): estimate spectrum off the kernel,
        // deflate, and solve a consistent system approximately.
        let n = 30;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n - 1 {
            b.push(i, i, 1.0);
            b.push(i + 1, i + 1, 1.0);
            b.push_sym(i, i + 1, -1.0);
        }
        let a = b.build();
        let cheb = ChebyshevSolver::with_estimated_spectrum(&a, 120, true);
        let mut rhs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).sin()).collect();
        deflate_constant(&mut rhs);
        let x = cheb.apply(&rhs);
        let ax = a.mul(&x);
        let mut diff: Vec<f64> = ax.iter().zip(&rhs).map(|(p, q)| p - q).collect();
        deflate_constant(&mut diff);
        // Path Laplacian is ill-conditioned; expect good but not exact.
        assert!(
            norm2(&diff) < 0.05 * norm2(&rhs),
            "residual {}",
            norm2(&diff) / norm2(&rhs)
        );
    }
}
