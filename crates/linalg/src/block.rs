//! Block (multi-right-hand-side) preconditioned conjugate gradients.
//!
//! The paper's economic argument — pay for one `[φ, ρ]` decomposition, then
//! amortize it across a *stream* of solves — extends one level down: when k
//! right-hand sides are in flight at once, the matrix and the preconditioner
//! hierarchy can be traversed **once per iteration for the whole block**
//! instead of once per column. [`block_pcg_solve`] runs k interleaved PCG
//! iterations over a column-major [`DenseBlock`], feeding every active
//! column from shared operator sweeps ([`crate::ops::LinearOperator::apply_block`],
//! [`crate::cg::Preconditioner::apply_block`]).
//!
//! # Masking
//!
//! Columns converge (or break down) independently. A finished column
//! **freezes**: it leaves the active set, its iterate and residual are never
//! touched again, and subsequent operator sweeps cover only the surviving
//! columns — the block shrinks instead of dragging converged work along.
//!
//! # Bitwise contract
//!
//! Every column of a block solve is **bitwise identical** to running
//! [`crate::cg::pcg_solve`] on that column alone, at any `HICOND_THREADS`
//! cap and jitter seed. This holds because the engine performs, per column,
//! exactly the fused solver's operation sequence on that column's contiguous
//! slice: the same kernels ([`dot_with_scratch`], [`fused_update_x_r`],
//! [`xpby`]) with the same length-only chunk geometry, and block operator
//! applies whose per-column output is contractually bitwise equal to the
//! single-vector apply. Interleaving columns reorders *between* columns,
//! never *within* one — no arithmetic crosses columns, so each column's
//! floating-point stream is unchanged. `tests/block_pcg.rs` holds the
//! engine to this.

use crate::cg::{CgOptions, CgResult, Preconditioner};
use crate::ops::LinearOperator;
use crate::vector::{dot_with_scratch, fused_update_x_r, norm2, scratch_len, xpby};

/// A dense multi-vector: k columns of length n, stored column-major so
/// every column is one contiguous `&[f64]` slice — the layout the
/// single-vector kernels (and their fixed chunk geometry) operate on
/// directly, which is what makes per-column bitwise equality to the
/// single-rhs solver structural rather than incidental.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBlock {
    n: usize,
    k: usize,
    data: Vec<f64>,
}

impl DenseBlock {
    /// An n×k block of zeros.
    pub fn new(n: usize, k: usize) -> DenseBlock {
        DenseBlock {
            n,
            k,
            data: vec![0.0; n * k],
        }
    }

    /// Builds a block from k equal-length columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns disagree in length.
    pub fn from_columns(cols: &[Vec<f64>]) -> DenseBlock {
        let n = cols.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols.len());
        for c in cols {
            assert_eq!(c.len(), n, "DenseBlock: ragged columns");
            data.extend_from_slice(c);
        }
        DenseBlock {
            n,
            k: cols.len(),
            data,
        }
    }

    /// Column length n.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Column count k.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.k, "DenseBlock: column {j} out of {}", self.k);
        &self.data[j * self.n..(j + 1) * self.n]
    }

    /// Column `j` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.k, "DenseBlock: column {j} out of {}", self.k);
        &mut self.data[j * self.n..(j + 1) * self.n]
    }

    /// Mutable slices for a sorted, unique subset of columns — the shape
    /// the block operator kernels consume (disjoint `&mut` column views
    /// extracted in one pass, no unsafe).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not strictly increasing or indexes past `k`.
    pub fn cols_mut_subset(&mut self, idx: &[usize]) -> Vec<&mut [f64]> {
        let mut out = Vec::with_capacity(idx.len());
        if self.n == 0 {
            for w in idx.windows(2) {
                assert!(w[0] < w[1], "DenseBlock: column subset must be sorted");
            }
            if let Some(&last) = idx.last() {
                assert!(last < self.k, "DenseBlock: column {last} out of {}", self.k);
            }
            out.resize_with(idx.len(), Default::default);
            return out;
        }
        let mut want = idx.iter().peekable();
        for (j, col) in self.data.chunks_mut(self.n).enumerate() {
            match want.peek() {
                Some(&&w) if w == j => {
                    out.push(col);
                    want.next();
                }
                Some(&&w) => assert!(w > j, "DenseBlock: column subset must be sorted"),
                None => break,
            }
        }
        assert!(
            want.peek().is_none(),
            "DenseBlock: column subset index out of range"
        );
        out
    }

    /// Consumes the block into its k columns.
    pub fn into_columns(mut self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            let rest = self.data.split_off(self.n.min(self.data.len()));
            out.push(std::mem::replace(&mut self.data, rest));
        }
        out
    }

    /// Copies column `j` of `src` into column `j` of `self`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `j` is out of range.
    pub fn copy_col_from(&mut self, j: usize, src: &DenseBlock) {
        assert_eq!(self.n, src.n, "DenseBlock: column length mismatch");
        self.col_mut(j).copy_from_slice(src.col(j));
    }
}

/// Block PCG for `A X = B`, k right-hand sides at once, starting from
/// `X = 0`. Returns one [`CgResult`] per column, index-aligned with the
/// columns of `b`.
///
/// Per iteration the engine performs **one** operator sweep
/// ([`LinearOperator::apply_block`]) and **one** preconditioner sweep
/// ([`Preconditioner::apply_block`]) over the active columns, then the
/// per-column scalar recurrences. Columns that converge, hit `max_iter`,
/// or break down numerically freeze and drop out of subsequent sweeps.
///
/// Every column's outputs (`x`, `iterations`, `converged`,
/// `final_rel_residual`, `residual_history`) are bitwise identical to a
/// solo [`crate::cg::pcg_solve`] on that column — see the module docs for
/// why — and therefore also deterministic across thread caps and jitter
/// seeds.
///
/// # Panics
///
/// Panics if the block shape or the preconditioner dimension disagrees
/// with the matrix.
pub fn block_pcg_solve<A: LinearOperator, M: Preconditioner>(
    a: &A,
    m: &M,
    b: &DenseBlock,
    opts: &CgOptions,
) -> Vec<CgResult> {
    let n = a.dim();
    let k = b.k();
    assert_eq!(b.n(), n, "block_pcg: rhs column length");
    assert_eq!(m.dim(), n, "block_pcg: preconditioner dim");
    let obs_on = hicond_obs::enabled();
    let _span = hicond_obs::span("block_pcg");
    if obs_on {
        hicond_obs::counter_add("cg/block_solves", 1);
        hicond_obs::counter_add("cg/block_columns", k as u64);
    }
    let mut bnorm = vec![0.0; k];
    let mut rz = vec![0.0; k];
    let mut iterations = vec![0usize; k];
    let mut converged = vec![false; k];
    let mut history: Vec<Vec<f64>> = vec![Vec::new(); k];
    // Zero columns are converged at iteration 0, exactly like the solo
    // solver's early return; they never enter the active set.
    let mut active: Vec<usize> = Vec::with_capacity(k);
    for j in 0..k {
        bnorm[j] = norm2(b.col(j));
        // exact: a norm is 0.0 iff the column is identically zero.
        if bnorm[j] == 0.0 {
            converged[j] = true;
        } else {
            active.push(j);
        }
    }
    let mut x = DenseBlock::new(n, k);
    let mut r = b.clone();
    let mut z = DenseBlock::new(n, k);
    let mut ap = DenseBlock::new(n, k);
    let mut partials = vec![0.0; scratch_len(n)];
    // Initial preconditioned residual: one block apply, then the solo
    // solver's rᵀz with the shared scratch kernel (the apply_dot_into
    // overrides are contractually bitwise equal to this split sequence).
    m.apply_block(&r, &mut z, &active);
    let mut p = DenseBlock::new(n, k);
    for &j in &active {
        rz[j] = dot_with_scratch(r.col(j), z.col(j), &mut partials);
        p.copy_col_from(j, &z);
        if opts.record_residuals {
            history[j].reserve(opts.max_iter + 2);
            history[j].push(norm2(r.col(j)));
        }
    }
    let mut it = 0;
    while it < opts.max_iter && !active.is_empty() {
        a.apply_block(&p, &mut ap, &active);
        // Per-column direction dot, fused x/r update, convergence check —
        // the solo loop's head, column-interleaved. Scanning `active` in
        // increasing column order keeps the schedule k-independent.
        let mut survivors = Vec::with_capacity(active.len());
        for &j in &active {
            let pap = dot_with_scratch(p.col(j), ap.col(j), &mut partials);
            if pap <= 0.0 {
                continue; // numerical kernel: freeze, not converged
            }
            let alpha = rz[j] / pap;
            if !alpha.is_finite() {
                continue; // breakdown: freeze
            }
            let rnorm = fused_update_x_r(
                alpha,
                p.col(j),
                ap.col(j),
                x.col_mut(j),
                r.col_mut(j),
                &mut partials,
            )
            .sqrt();
            iterations[j] += 1;
            if opts.record_residuals {
                history[j].push(rnorm);
            }
            if rnorm <= opts.rel_tol * bnorm[j] {
                converged[j] = true;
                continue; // done: freeze
            }
            if !rnorm.is_finite() {
                continue; // diverged: freeze
            }
            survivors.push(j);
        }
        it += 1;
        if survivors.is_empty() || it >= opts.max_iter {
            // The solo solver would run one more preconditioner apply here
            // before its loop condition fails; skipping it changes only
            // internal scratch (z, p), never a reported output.
            break;
        }
        // One preconditioner sweep for every surviving column, then the
        // solo loop's tail: rᵀz, breakdown test, β, direction update.
        m.apply_block(&r, &mut z, &survivors);
        let mut next = Vec::with_capacity(survivors.len());
        for &j in &survivors {
            let rz_new = dot_with_scratch(r.col(j), z.col(j), &mut partials);
            // β = rz_new/rz divides by this value; only an exact zero
            // (or non-finite) poisons it — exact compare, like the solo solver.
            if rz_new == 0.0 || !rz_new.is_finite() {
                continue; // stagnated: freeze
            }
            let beta = rz_new / rz[j];
            rz[j] = rz_new;
            xpby(z.col(j), beta, p.col_mut(j));
            next.push(j);
        }
        active = next;
    }
    if obs_on {
        hicond_obs::counter_add(
            "cg/block_iterations",
            iterations.iter().map(|&i| i as u64).sum(),
        );
    }
    let xs = x.into_columns();
    xs.into_iter()
        .enumerate()
        .map(|(j, xj)| CgResult {
            x: xj,
            iterations: iterations[j],
            // exact: zero-rhs columns report residual 0 by definition.
            final_rel_residual: if bnorm[j] == 0.0 {
                0.0
            } else {
                norm2(r.col(j)) / bnorm[j]
            },
            residual_history: std::mem::take(&mut history[j]),
            converged: converged[j],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{pcg_solve, IdentityPreconditioner, JacobiPreconditioner};
    use crate::csr::{CooBuilder, CsrMatrix};

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    fn rhs(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                ((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97) % 1000) as f64 / 500.0
                    - 1.0
            })
            .collect()
    }

    #[test]
    fn dense_block_shape_and_columns() {
        let cols = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut blk = DenseBlock::from_columns(&cols);
        assert_eq!((blk.n(), blk.k()), (2, 3));
        assert_eq!(blk.col(1), &[3.0, 4.0]);
        blk.col_mut(2)[0] = 9.0;
        let subset = blk.cols_mut_subset(&[0, 2]);
        assert_eq!(subset.len(), 2);
        assert_eq!(&*subset[1], &[9.0, 6.0]);
        assert_eq!(
            blk.into_columns(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![9.0, 6.0]]
        );
    }

    #[test]
    #[should_panic(expected = "column subset")]
    fn cols_mut_subset_rejects_unsorted() {
        let mut blk = DenseBlock::new(3, 3);
        let _ = blk.cols_mut_subset(&[2, 0]);
    }

    #[test]
    fn empty_column_block() {
        let mut blk = DenseBlock::new(0, 2);
        assert_eq!(blk.cols_mut_subset(&[0, 1]).len(), 2);
        assert_eq!(blk.into_columns(), vec![Vec::<f64>::new(); 2]);
    }

    #[test]
    fn block_matches_solo_bitwise_small() {
        let n = 120;
        let a = spd_tridiag(n);
        let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let cols: Vec<Vec<f64>> = (0..4).map(|s| rhs(n, s)).collect();
        let b = DenseBlock::from_columns(&cols);
        let opts = CgOptions::default();
        let block = block_pcg_solve(&a, &m, &b, &opts);
        for (j, col) in cols.iter().enumerate() {
            let solo = pcg_solve(&a, &m, col, &opts);
            assert_eq!(block[j].iterations, solo.iterations, "col {j}");
            assert_eq!(block[j].converged, solo.converged, "col {j}");
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&block[j].x), bits(&solo.x), "col {j} iterate");
            assert_eq!(
                bits(&block[j].residual_history),
                bits(&solo.residual_history),
                "col {j} residuals"
            );
        }
    }

    #[test]
    fn zero_column_converges_at_iteration_zero() {
        let n = 50;
        let a = spd_tridiag(n);
        let cols = vec![vec![0.0; n], rhs(n, 3)];
        let b = DenseBlock::from_columns(&cols);
        let res = block_pcg_solve(&a, &IdentityPreconditioner(n), &b, &CgOptions::default());
        assert!(res[0].converged);
        assert_eq!(res[0].iterations, 0);
        assert_eq!(res[0].final_rel_residual, 0.0);
        assert!(res[0].x.iter().all(|&v| v == 0.0));
        assert!(res[1].converged);
        assert!(res[1].iterations > 0);
    }

    #[test]
    fn single_column_block_is_a_solo_solve() {
        let n = 80;
        let a = spd_tridiag(n);
        let col = rhs(n, 11);
        let b = DenseBlock::from_columns(std::slice::from_ref(&col));
        let blk = block_pcg_solve(&a, &IdentityPreconditioner(n), &b, &CgOptions::default());
        let solo = pcg_solve(&a, &IdentityPreconditioner(n), &col, &CgOptions::default());
        assert_eq!(blk.len(), 1);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&blk[0].x), bits(&solo.x));
        assert_eq!(blk[0].iterations, solo.iterations);
    }

    #[test]
    fn mixed_difficulty_columns_freeze_independently() {
        let n = 200;
        let a = spd_tridiag(n);
        // Easy: an eigenvector-ish smooth rhs; hard: rough pseudorandom.
        let easy: Vec<f64> = {
            let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
            a.mul(&xt)
        };
        let hard = rhs(n, 7);
        let b = DenseBlock::from_columns(&[easy.clone(), hard.clone(), vec![0.0; n]]);
        let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
        let opts = CgOptions {
            rel_tol: 1e-10,
            ..Default::default()
        };
        let res = block_pcg_solve(&a, &m, &b, &opts);
        assert!(res.iter().all(|r| r.converged));
        assert_eq!(res[2].iterations, 0);
        // Each column still matches its solo run exactly.
        for (j, col) in [easy, hard].iter().enumerate() {
            let solo = pcg_solve(&a, &m, col, &opts);
            assert_eq!(res[j].iterations, solo.iterations, "col {j}");
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&res[j].x), bits(&solo.x), "col {j}");
        }
    }

    #[test]
    fn zero_width_block() {
        let a = spd_tridiag(10);
        let b = DenseBlock::new(10, 0);
        let res = block_pcg_solve(&a, &IdentityPreconditioner(10), &b, &CgOptions::default());
        assert!(res.is_empty());
    }
}
