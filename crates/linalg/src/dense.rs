//! Dense symmetric kernels: Cholesky, cyclic Jacobi eigensolver,
//! pseudo-inverse helpers.
//!
//! These serve two roles in the reproduction: (i) the *direct coarse solver*
//! at the bottom of the multilevel Steiner hierarchy, and (ii) the *exact
//! verifier* for support numbers σ(A,B), condition numbers κ(A,B) and the
//! spectral bounds of Theorem 4.1 on problems small enough for O(n³) work.

use crate::csr::CsrMatrix;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// From row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data` length is not `nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols);
        DenseMatrix { nrows, ncols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Entry `(r, c)`, or `None` when out of range — the total accessor
    /// for callers that cannot prove bounds (e.g. decode validation).
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r >= self.nrows || c >= self.ncols {
            return None;
        }
        self.data.get(r * self.ncols + c).copied()
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` length differs from the column count.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|r| crate::vector::dot(self.row(r), x))
            .collect()
    }

    /// Matrix product `A · B`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows);
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm of `A − B`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn frob_dist(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Symmetry check to tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                if !crate::approx_eq(self[(i, j)], self[(j, i)], tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Converts to CSR, dropping exact zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut b = crate::csr::CooBuilder::new(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                let v = self[(i, j)];
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &self.data[r * self.ncols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        &mut self.data[r * self.ncols + c]
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    pub(crate) n: usize,
    /// Lower-triangular factor, row-major, full storage.
    pub(crate) l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factors `a`; returns `None` if a non-positive pivot appears (matrix
    /// not positive definite to working precision).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &DenseMatrix) -> Option<Self> {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.nrows();
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 {
                return None;
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Some(CholeskyFactor { n, l })
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b` length differs from the factor dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let mut y = b.to_vec();
        // L y = b
        for i in 0..self.n {
            let mut v = y[i];
            for k in 0..i {
                v -= self.l[(i, k)] * y[k];
            }
            y[i] = v / self.l[(i, i)];
        }
        // Lᵀ x = y
        for i in (0..self.n).rev() {
            let mut v = y[i];
            for k in (i + 1)..self.n {
                v -= self.l[(k, i)] * y[k];
            }
            y[i] = v / self.l[(i, i)];
        }
        y
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }
}

/// Full symmetric eigendecomposition by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// eigenvectors as *columns* of the returned matrix (`V[:, k]` pairs with
/// `λ_k`, so `A V = V Λ`).
///
/// # Panics
///
/// Panics if the matrix is not symmetric.
pub fn jacobi_eigen(a: &DenseMatrix) -> (Vec<f64>, DenseMatrix) {
    assert!(a.is_symmetric(1e-8), "jacobi_eigen: matrix not symmetric");
    let n = a.nrows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        let scale: f64 = (0..n).map(|i| m[(i, i)].abs()).fold(1e-300, f64::max);
        if off.sqrt() <= 1e-14 * scale.max(1.0) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation on rows/cols p, q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| evals[i].total_cmp(&evals[j]));
    let sorted_vals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    let mut sorted_vecs = DenseMatrix::zeros(n, n);
    for (new, &old) in order.iter().enumerate() {
        for r in 0..n {
            sorted_vecs[(r, new)] = v[(r, old)];
        }
    }
    (sorted_vals, sorted_vecs)
}

/// Largest generalized eigenvalue `λ_max(A, B)` of a pencil of symmetric
/// PSD matrices sharing the (one-dimensional, constant-vector) nullspace —
/// the support number σ(A,B) of Lemma 5.3, computed exactly in O(n³).
///
/// Both matrices are projected onto the complement of `null_dir` (pass the
/// all-ones vector for connected Laplacians); the pencil is then solved via
/// `B^{-1/2} A B^{-1/2}` in the projected basis.
///
/// # Panics
///
/// Panics if the matrix shapes or the null-direction length disagree.
pub fn pencil_eigen_dense(a: &DenseMatrix, b: &DenseMatrix, null_dir: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    assert_eq!(b.nrows(), n);
    assert_eq!(null_dir.len(), n);
    // Orthonormal basis of the complement of null_dir: columns of P (n × n-1).
    let basis = complement_basis(null_dir);
    let pa = project(a, &basis);
    let pb = project(b, &basis);
    // pb should be PD on the complement. Factor pb = L Lᵀ, form L⁻¹ pa L⁻ᵀ.
    let chol = CholeskyFactor::factor(&pb)
        // audit: allow(panic-path) — PD off the nullspace is a documented precondition
        .expect("pencil_eigen_dense: B not positive definite off the nullspace");
    let m = pa.nrows();
    // eigvals(B⁻¹A) = eigvals(L⁻¹ A L⁻ᵀ); compute W = L⁻¹ PA L⁻ᵀ explicitly.
    // First Y = L⁻¹ PA  (solve L Y = PA column-wise on rows)
    let mut y = pa.clone();
    for col in 0..m {
        // forward substitution on column `col`
        for i in 0..m {
            let mut v = y[(i, col)];
            for k in 0..i {
                v -= chol.l[(i, k)] * y[(k, col)];
            }
            y[(i, col)] = v / chol.l[(i, i)];
        }
    }
    // Then W = Y L⁻ᵀ, i.e. solve Wᵀ from L Wᵀ = Yᵀ.
    let yt = y.transpose();
    let mut wt = yt.clone();
    for col in 0..m {
        for i in 0..m {
            let mut v = wt[(i, col)];
            for k in 0..i {
                v -= chol.l[(i, k)] * wt[(k, col)];
            }
            wt[(i, col)] = v / chol.l[(i, i)];
        }
    }
    let mut w = wt.transpose();
    // Numerical symmetrization before Jacobi.
    for i in 0..m {
        for j in (i + 1)..m {
            let s = 0.5 * (w[(i, j)] + w[(j, i)]);
            w[(i, j)] = s;
            w[(j, i)] = s;
        }
    }
    let (vals, _) = jacobi_eigen(&w);
    vals
}

/// Orthonormal basis (columns) of the orthogonal complement of `dir`.
fn complement_basis(dir: &[f64]) -> DenseMatrix {
    let n = dir.len();
    // Householder reflection mapping e_0 to dir/|dir|; the last n-1 columns
    // of the reflector span the complement.
    let mut v = dir.to_vec();
    let nrm = crate::vector::norm2(&v);
    assert!(nrm > 0.0, "complement_basis: zero direction");
    for x in &mut v {
        *x /= nrm;
    }
    // u = v - e0; H = I - 2uuᵀ/(uᵀu) maps e0 -> v.
    let mut u = v.clone();
    u[0] -= 1.0;
    let uu = crate::vector::dot(&u, &u);
    let mut h = DenseMatrix::identity(n);
    if uu > 1e-30 {
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] -= 2.0 * u[i] * u[j] / uu;
            }
        }
    }
    // Columns 1..n of H are the basis.
    let mut basis = DenseMatrix::zeros(n, n - 1);
    for i in 0..n {
        for j in 1..n {
            basis[(i, j - 1)] = h[(i, j)];
        }
    }
    basis
}

/// `Pᵀ A P` for a basis matrix `P` with orthonormal columns.
fn project(a: &DenseMatrix, basis: &DenseMatrix) -> DenseMatrix {
    basis.transpose().matmul(&a.matmul(basis))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_path(n: usize) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i)] += 1.0;
            a[(i + 1, i + 1)] += 1.0;
            a[(i, i + 1)] -= 1.0;
            a[(i + 1, i)] -= 1.0;
        }
        a
    }

    #[test]
    fn cholesky_solves_spd() {
        // A = [[4,2],[2,3]]
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let f = CholeskyFactor::factor(&a).unwrap();
        let x = f.solve(&[10.0, 8.0]);
        let ax = a.mul_vec(&x);
        assert!((ax[0] - 10.0).abs() < 1e-12);
        assert!((ax[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(CholeskyFactor::factor(&a).is_none());
    }

    #[test]
    fn jacobi_diagonal() {
        let a = DenseMatrix::from_rows(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, _) = jacobi_eigen(&a);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn jacobi_path_laplacian_spectrum() {
        // Path P3 Laplacian eigenvalues: 0, 1, 3.
        let a = laplacian_path(3);
        let (vals, vecs) = jacobi_eigen(&a);
        assert!(vals[0].abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        // Check A v = λ v for the second pair.
        let v1: Vec<f64> = (0..3).map(|r| vecs[(r, 1)]).collect();
        let av = a.mul_vec(&v1);
        for i in 0..3 {
            assert!((av[i] - vals[1] * v1[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn pencil_identity() {
        // λ(A, A) = 1 for all eigenvalues (off the nullspace).
        let a = laplacian_path(4);
        let ones = vec![1.0; 4];
        let vals = pencil_eigen_dense(&a, &a, &ones);
        for v in vals {
            assert!((v - 1.0).abs() < 1e-9, "got {v}");
        }
    }

    #[test]
    fn pencil_scaled() {
        // λmax(2A, A) = 2.
        let a = laplacian_path(5);
        let two_a = {
            let mut m = a.clone();
            for x in &mut m.data {
                *x *= 2.0;
            }
            m
        };
        let ones = vec![1.0; 5];
        let vals = pencil_eigen_dense(&two_a, &a, &ones);
        let max = vals.last().unwrap();
        assert!((max - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matmul_identity() {
        let a = laplacian_path(4);
        let i = DenseMatrix::identity(4);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn csr_dense_roundtrip() {
        let a = laplacian_path(4);
        let csr = a.to_csr();
        let back = csr.to_dense();
        assert!(a.frob_dist(&back) < 1e-14);
    }
}
