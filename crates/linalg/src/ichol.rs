//! Zero-fill incomplete Cholesky — IC(0).
//!
//! The classical algebraic preconditioner: factor `A ≈ L Lᵀ` keeping only
//! `A`'s own sparsity pattern. Provides the standard non-combinatorial
//! baseline for the preconditioner comparisons. For SDD Laplacians the
//! factorization is applied to the regularized `A + εI` (a Laplacian's
//! trailing pivot vanishes); the apply projects the constant out so the
//! operator stays symmetric positive definite on the complement.

use crate::cg::Preconditioner;
use crate::csr::CsrMatrix;
use crate::vector::deflate_constant;

/// IC(0) preconditioner.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    n: usize,
    /// Lower-triangular factor rows in CSR-like arrays (strictly-lower
    /// entries, columns ascending) plus the diagonal.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    diag: Vec<f64>,
    /// Project out the constant vector (singular Laplacian inputs).
    pub deflate_kernel: bool,
}

impl IncompleteCholesky {
    /// Factors `a` (symmetric) on its own pattern. `shift` is added to the
    /// diagonal before factoring (use ~1e-8·‖diag‖ₘₐₓ for singular
    /// Laplacians); pivots are clamped away from zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(a: &CsrMatrix, shift: f64) -> Self {
        let n = a.nrows();
        assert_eq!(n, a.ncols());
        // Collect the strictly-lower pattern of A.
        let mut row_ptr = vec![0usize; n + 1];
        for i in 0..n {
            row_ptr[i + 1] = row_ptr[i] + a.row(i).filter(|&(j, _)| j < i).count();
        }
        let nnz = row_ptr[n];
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![0.0; nnz];
        {
            let mut k = 0;
            for i in 0..n {
                for (j, v) in a.row(i) {
                    if j < i {
                        col_idx[k] = j as u32;
                        values[k] = v;
                        k += 1;
                    }
                }
            }
        }
        let mut diag: Vec<f64> = (0..n).map(|i| a.get(i, i) + shift).collect();
        // Up-looking IC(0): for each row i, update entries from previous
        // rows restricted to the pattern.
        // l_ij = (a_ij − Σ_{k<j, both patterns} l_ik l_jk) / d_j;
        // d_i = sqrt(a_ii − Σ_k l_ik²).
        for i in 0..n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            for idx in lo..hi {
                let j = col_idx[idx] as usize;
                // Dot of row i and row j over shared columns < j.
                let mut s = values[idx];
                let (jlo, jhi) = (row_ptr[j], row_ptr[j + 1]);
                let mut a_ptr = lo;
                let mut b_ptr = jlo;
                while a_ptr < idx && b_ptr < jhi {
                    let (ca, cb) = (col_idx[a_ptr], col_idx[b_ptr]);
                    match ca.cmp(&cb) {
                        std::cmp::Ordering::Less => a_ptr += 1,
                        std::cmp::Ordering::Greater => b_ptr += 1,
                        std::cmp::Ordering::Equal => {
                            s -= values[a_ptr] * values[b_ptr];
                            a_ptr += 1;
                            b_ptr += 1;
                        }
                    }
                }
                values[idx] = s / diag[j];
            }
            let mut d = diag[i];
            for idx in lo..hi {
                d -= values[idx] * values[idx];
            }
            // Clamp: IC(0) on non-M-matrices can break down; keep SPD.
            diag[i] = d.max(1e-12 * diag[i].abs().max(1e-12)).sqrt();
        }
        IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
            deflate_kernel: false,
        }
    }

    /// IC(0) for a graph Laplacian: adds a relative diagonal shift and
    /// deflates the constant vector on application.
    pub fn for_laplacian(a: &CsrMatrix) -> Self {
        let max_d = a.diagonal().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let mut ic = Self::new(a, 1e-8 * max_d.max(1.0));
        ic.deflate_kernel = true;
        ic
    }
}

impl Preconditioner for IncompleteCholesky {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        let mut y = r.to_vec();
        if self.deflate_kernel {
            deflate_constant(&mut y);
        }
        // Forward: L y' = y  (L has unit structure rows + diag).
        for i in 0..self.n {
            let mut v = y[i];
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                v -= self.values[idx] * y[self.col_idx[idx] as usize];
            }
            y[i] = v / self.diag[i];
        }
        // Backward: Lᵀ z = y'.
        for i in (0..self.n).rev() {
            let v = y[i] / self.diag[i];
            y[i] = v;
            for idx in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[idx] as usize] -= self.values[idx] * v;
            }
        }
        if self.deflate_kernel {
            deflate_constant(&mut y);
        }
        z.copy_from_slice(&y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg_solve, pcg_solve, CgOptions};
    use crate::csr::CooBuilder;
    use crate::vector::{dot, norm2};

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    #[test]
    fn exact_on_tridiagonal() {
        // Tridiagonal pattern has no fill, so IC(0) is the exact Cholesky:
        // one PCG iteration suffices.
        let a = spd_tridiag(40);
        let ic = IncompleteCholesky::new(&a, 0.0);
        let b: Vec<f64> = (0..40).map(|i| (i as f64).sin()).collect();
        let res = pcg_solve(
            &a,
            &ic,
            &b,
            &CgOptions {
                rel_tol: 1e-10,
                ..Default::default()
            },
        );
        assert!(res.converged);
        assert!(res.iterations <= 2, "{} iterations", res.iterations);
    }

    #[test]
    fn symmetric_positive() {
        let a = spd_tridiag(25);
        let ic = IncompleteCholesky::new(&a, 0.0);
        let x: Vec<f64> = (0..25).map(|i| (i as f64 * 0.9).sin()).collect();
        let y: Vec<f64> = (0..25).map(|i| (i as f64 * 0.4).cos()).collect();
        let (mx, my) = (ic.apply(&x), ic.apply(&y));
        assert!((dot(&y, &mx) - dot(&x, &my)).abs() < 1e-9 * dot(&y, &mx).abs().max(1.0));
        assert!(dot(&x, &mx) > 0.0);
    }

    #[test]
    fn accelerates_cg_on_grid_laplacian() {
        // 2D grid Laplacian via direct assembly.
        let (nx, ny) = (15, 15);
        let n = nx * ny;
        let mut b = CooBuilder::new(n, n);
        let idx = |x: usize, y: usize| x * ny + y;
        for x in 0..nx {
            for y in 0..ny {
                let u = idx(x, y);
                for (dx, dy) in [(1, 0), (0, 1)] {
                    if x + dx < nx && y + dy < ny {
                        let v = idx(x + dx, y + dy);
                        b.push(u, u, 1.0);
                        b.push(v, v, 1.0);
                        b.push_sym(u, v, -1.0);
                    }
                }
            }
        }
        let a = b.build();
        let mut rhs: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        deflate_constant(&mut rhs);
        let plain = cg_solve(&a, &rhs, &CgOptions::default());
        let ic = IncompleteCholesky::for_laplacian(&a);
        let pre = pcg_solve(&a, &ic, &rhs, &CgOptions::default());
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "ic {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        // Solution is a genuine solution.
        let ax = a.mul(&pre.x);
        let mut diff: Vec<f64> = ax.iter().zip(&rhs).map(|(p, q)| p - q).collect();
        deflate_constant(&mut diff);
        assert!(norm2(&diff) < 1e-6 * norm2(&rhs));
    }
}
