//! Symmetric successive over-relaxation (SSOR) preconditioning.
//!
//! A classical point preconditioner used as an additional baseline against
//! the combinatorial preconditioners:
//! `M = (D/ω + L) · (D/ω)⁻¹ · (D/ω + Lᵀ) · ω/(2−ω)` for the splitting
//! `A = D + L + Lᵀ`. Application is one forward and one backward
//! triangular sweep over the CSR structure. Symmetric positive definite
//! for `0 < ω < 2` on SPD (or SDD Laplacian) inputs.

use crate::cg::Preconditioner;
use crate::csr::CsrMatrix;

/// SSOR preconditioner over a symmetric CSR matrix.
#[derive(Debug, Clone)]
pub struct SsorPreconditioner {
    a: CsrMatrix,
    diag: Vec<f64>,
    omega: f64,
}

impl SsorPreconditioner {
    /// Builds from a symmetric matrix; `omega ∈ (0, 2)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < omega < 2` and the matrix is square.
    pub fn new(a: &CsrMatrix, omega: f64) -> Self {
        assert!(omega > 0.0 && omega < 2.0, "SSOR needs 0 < omega < 2");
        assert_eq!(a.nrows(), a.ncols());
        let diag = a.diagonal();
        SsorPreconditioner {
            a: a.clone(),
            diag,
            omega,
        }
    }
}

impl Preconditioner for SsorPreconditioner {
    fn dim(&self) -> usize {
        self.a.nrows()
    }

    fn apply_into(&self, r: &[f64], z: &mut [f64]) {
        let n = self.dim();
        let w = self.omega;
        // Forward sweep: (D/ω + L) y = r.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = r[i];
            for (j, v) in self.a.row(i) {
                if j < i {
                    acc -= v * y[j];
                }
            }
            let d = self.diag[i];
            y[i] = if d != 0.0 { acc * w / d } else { 0.0 };
        }
        // Scale: y ← (D/ω) y · (2−ω)/ω ... combined below with the
        // conventional form z = (D/ω + U)⁻¹ (D/ω) y, scaled by ω(2−ω).
        for i in 0..n {
            let d = self.diag[i];
            y[i] *= if d != 0.0 { d / w } else { 0.0 };
            y[i] *= (2.0 - w) / 1.0;
        }
        // Backward sweep: (D/ω + U) z = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, v) in self.a.row(i) {
                if j > i {
                    acc -= v * z[j];
                }
            }
            let d = self.diag[i];
            z[i] = if d != 0.0 { acc * w / d } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{cg_solve, pcg_solve, CgOptions};
    use crate::csr::CooBuilder;
    use crate::vector::{deflate_constant, dot};

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 4.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        b.build()
    }

    fn laplacian_path(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n - 1 {
            b.push(i, i, 1.0);
            b.push(i + 1, i + 1, 1.0);
            b.push_sym(i, i + 1, -1.0);
        }
        b.build()
    }

    #[test]
    fn symmetric_operator() {
        let a = spd_tridiag(30);
        let m = SsorPreconditioner::new(&a, 1.2);
        let x: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..30).map(|i| (i as f64 * 1.7).cos()).collect();
        let mx = m.apply(&x);
        let my = m.apply(&y);
        let (l, r) = (dot(&y, &mx), dot(&x, &my));
        assert!((l - r).abs() < 1e-10 * l.abs().max(1.0), "{l} vs {r}");
        assert!(dot(&x, &mx) > 0.0);
    }

    #[test]
    fn accelerates_cg_on_spd() {
        let n = 200;
        let a = spd_tridiag(n);
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let opts = CgOptions {
            rel_tol: 1e-10,
            ..Default::default()
        };
        let plain = cg_solve(&a, &b, &opts);
        let m = SsorPreconditioner::new(&a, 1.0);
        let pre = pcg_solve(&a, &m, &b, &opts);
        assert!(pre.converged);
        assert!(
            pre.iterations <= plain.iterations,
            "ssor {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn works_on_singular_laplacian() {
        let n = 40;
        let a = laplacian_path(n);
        let mut b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        deflate_constant(&mut b);
        let m = SsorPreconditioner::new(&a, 1.0);
        let res = pcg_solve(&a, &m, &b, &CgOptions::default());
        assert!(res.converged);
        let ax = a.mul(&res.x);
        let mut diff: Vec<f64> = ax.iter().zip(&b).map(|(x, y)| x - y).collect();
        deflate_constant(&mut diff);
        assert!(crate::vector::norm2(&diff) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "omega")]
    fn rejects_bad_omega() {
        let a = spd_tridiag(4);
        SsorPreconditioner::new(&a, 2.5);
    }
}
