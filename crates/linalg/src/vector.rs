//! Dense vector kernels with optional rayon parallelism.
//!
//! Vectors are plain `&[f64]` / `&mut [f64]` slices; the kernels here are the
//! BLAS-1 subset the iterative solvers need. Each has a sequential and a
//! parallel path selected by [`Parallelism`].
//!
//! # Chunk geometry and determinism
//!
//! Parallel kernels cut their vectors at [`chunk_len`] boundaries — a
//! size-adaptive geometry from `rayon::pool` that targets
//! `MIN_PAR_CHUNK`-sized chunks and clamps the chunk count, and that
//! deliberately never looks at the live thread count. Chunk partials are
//! written into fixed slots and combined with [`rayon::tree_sum`], whose
//! pairwise shape depends only on the slot count. Geometry and combine
//! shape are thus both pure functions of the vector length, which makes
//! every kernel here bitwise deterministic at any thread count and under
//! `HICOND_SCHED_JITTER`.

use rayon::pool::MIN_PAR_CHUNK;
use rayon::prelude::*;

/// Chunk length the parallel kernels use for vectors of length `n`
/// (re-exported geometry from `rayon::pool::chunk_len`).
fn chunk_len(n: usize) -> usize {
    rayon::pool::chunk_len(n)
}

/// Execution-policy switch threaded through the workspace.
///
/// `Sequential` pins deterministic single-threaded execution (used by tests
/// and as a baseline in the speedup experiments); `Parallel` uses rayon's
/// global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded, fully deterministic.
    Sequential,
    /// rayon global thread pool.
    #[default]
    Parallel,
}

impl Parallelism {
    /// True if this policy runs on the rayon pool.
    pub fn is_parallel(self) -> bool {
        matches!(self, Parallelism::Parallel)
    }
}

/// Dot product `xᵀy`. Panics if lengths differ.
///
/// # Panics
///
/// Panics if the vector lengths disagree.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Parallel dot product; chunk partials are combined along the fixed
/// pairwise tree of [`rayon::tree_sum`].
///
/// # Panics
///
/// Panics if the vector lengths disagree.
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() <= MIN_PAR_CHUNK {
        return dot(x, y);
    }
    let cl = chunk_len(x.len());
    x.par_chunks(cl)
        .zip(y.par_chunks(cl))
        .map(|(a, b)| dot(a, b))
        .tree_sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the vector lengths disagree.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel `y += alpha * x`.
///
/// # Panics
///
/// Panics if the vector lengths disagree.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "par_axpy: length mismatch");
    if x.len() <= MIN_PAR_CHUNK {
        return axpy(alpha, x, y);
    }
    let cl = chunk_len(x.len());
    y.par_chunks_mut(cl)
        .zip(x.par_chunks(cl))
        .for_each(|(yc, xc)| axpy(alpha, xc, yc));
}

/// Number of chunk partials the `*_with_scratch` kernels need for vectors
/// of length `n` (at least 1, so the scratch is never empty).
pub fn scratch_len(n: usize) -> usize {
    rayon::pool::num_chunks(n)
}

/// Allocation-free parallel dot product: chunk partials are written into
/// the caller-provided `partials` scratch (`≥ scratch_len(x.len())`) and
/// combined along the fixed pairwise tree of [`rayon::tree_sum`], so the
/// result is bitwise identical at any thread count.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length or `partials` is shorter than
/// `scratch_len(x.len())`.
pub fn dot_with_scratch(x: &[f64], y: &[f64], partials: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_with_scratch: length mismatch");
    if x.len() <= MIN_PAR_CHUNK {
        return dot(x, y);
    }
    let cl = chunk_len(x.len());
    let nchunks = scratch_len(x.len());
    let partials = &mut partials[..nchunks];
    partials
        .par_iter_mut()
        .zip(x.par_chunks(cl))
        .zip(y.par_chunks(cl))
        .for_each(|((out, xc), yc)| *out = dot(xc, yc));
    rayon::tree_sum(partials)
}

/// Fused allocation-free `y += alpha·x; return yᵀy`: one pass over the
/// data instead of an axpy followed by a norm. Chunk partials go into
/// `partials` (`≥ scratch_len(y.len())`) and are tree-combined (bitwise
/// deterministic at any thread count).
///
/// # Panics
///
/// Panics if `x` and `y` differ in length or `partials` is shorter than
/// `scratch_len(y.len())`.
pub fn fused_axpy_dot_self(alpha: f64, x: &[f64], y: &mut [f64], partials: &mut [f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "fused_axpy_dot_self: length mismatch");
    if y.len() <= MIN_PAR_CHUNK {
        let mut acc = 0.0;
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
            acc += *yi * *yi;
        }
        return acc;
    }
    let cl = chunk_len(y.len());
    let nchunks = scratch_len(y.len());
    let partials = &mut partials[..nchunks];
    partials
        .par_iter_mut()
        .zip(y.par_chunks_mut(cl))
        .zip(x.par_chunks(cl))
        .for_each(|((out, yc), xc)| {
            let mut acc = 0.0;
            for (yi, xi) in yc.iter_mut().zip(xc) {
                *yi += alpha * xi;
                acc += *yi * *yi;
            }
            *out = acc;
        });
    rayon::tree_sum(partials)
}

/// Fused CG iterate/residual update: `x += alpha·p`, `r -= alpha·ap`, and
/// `‖r‖²` accumulated — one traversal over four vectors instead of a
/// `par_axpy` followed by [`fused_axpy_dot_self`].
///
/// The per-element arithmetic is exactly `x_i += alpha * p_i;
/// r_i += (-alpha) * ap_i; acc += r_i * r_i` and the chunk geometry is
/// shared with the unfused kernels, so the result (and every updated
/// element) is bitwise identical to the two-kernel sequence at any thread
/// count — the property the bench divergence gate asserts.
///
/// # Panics
///
/// Panics if the four vectors differ in length or `partials` is shorter
/// than `scratch_len(x.len())`.
pub fn fused_update_x_r(
    alpha: f64,
    p: &[f64],
    ap: &[f64],
    x: &mut [f64],
    r: &mut [f64],
    partials: &mut [f64],
) -> f64 {
    let n = x.len();
    assert_eq!(p.len(), n, "fused_update_x_r: p length mismatch");
    assert_eq!(ap.len(), n, "fused_update_x_r: ap length mismatch");
    assert_eq!(r.len(), n, "fused_update_x_r: r length mismatch");
    let nalpha = -alpha;
    let body = |pc: &[f64], apc: &[f64], xc: &mut [f64], rc: &mut [f64]| -> f64 {
        let mut acc = 0.0;
        for (((xi, ri), pi), api) in xc.iter_mut().zip(rc.iter_mut()).zip(pc).zip(apc) {
            *xi += alpha * pi;
            *ri += nalpha * api;
            acc += *ri * *ri;
        }
        acc
    };
    if n <= MIN_PAR_CHUNK {
        return body(p, ap, x, r);
    }
    let cl = chunk_len(n);
    let nchunks = scratch_len(n);
    let partials = &mut partials[..nchunks];
    partials
        .par_iter_mut()
        .zip(x.par_chunks_mut(cl))
        .zip(r.par_chunks_mut(cl))
        .zip(p.par_chunks(cl))
        .zip(ap.par_chunks(cl))
        .for_each(|((((out, xc), rc), pc), apc)| *out = body(pc, apc, xc, rc));
    rayon::tree_sum(partials)
}

/// Fused diagonal-preconditioner apply + dot: `z = r ⊙ s` and `rᵀz`
/// accumulated in the same traversal (the Jacobi `z = M⁻¹r` fused with
/// the PCG `rᵀz`), eliminating one full read sweep per iteration.
///
/// Per-element arithmetic is exactly `z_i = r_i * s_i; acc += r_i * z_i`
/// with the shared chunk geometry, so the result is bitwise identical to
/// `hadamard_into` followed by [`dot_with_scratch`].
///
/// # Panics
///
/// Panics if `r`, `s`, and `z` differ in length or `partials` is shorter
/// than `scratch_len(r.len())`.
pub fn fused_scale_dot(s: &[f64], r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
    let n = r.len();
    assert_eq!(s.len(), n, "fused_scale_dot: scale length mismatch");
    assert_eq!(z.len(), n, "fused_scale_dot: output length mismatch");
    let body = |sc: &[f64], rc: &[f64], zc: &mut [f64]| -> f64 {
        let mut acc = 0.0;
        for ((zi, ri), si) in zc.iter_mut().zip(rc).zip(sc) {
            *zi = ri * si;
            acc += ri * *zi;
        }
        acc
    };
    if n <= MIN_PAR_CHUNK {
        return body(s, r, z);
    }
    let cl = chunk_len(n);
    let nchunks = scratch_len(n);
    let partials = &mut partials[..nchunks];
    partials
        .par_iter_mut()
        .zip(z.par_chunks_mut(cl))
        .zip(r.par_chunks(cl))
        .zip(s.par_chunks(cl))
        .for_each(|(((out, zc), rc), sc)| *out = body(sc, rc, zc));
    rayon::tree_sum(partials)
}

/// Fused copy + dot: `z = r` and `rᵀz = rᵀr` in one traversal (the
/// identity-preconditioner apply fused with the PCG `rᵀz`). Bitwise
/// identical to `copy_from_slice` followed by [`dot_with_scratch`].
///
/// # Panics
///
/// Panics if `r` and `z` differ in length or `partials` is shorter than
/// `scratch_len(r.len())`.
pub fn fused_copy_dot(r: &[f64], z: &mut [f64], partials: &mut [f64]) -> f64 {
    let n = r.len();
    assert_eq!(z.len(), n, "fused_copy_dot: length mismatch");
    let body = |rc: &[f64], zc: &mut [f64]| -> f64 {
        let mut acc = 0.0;
        for (zi, ri) in zc.iter_mut().zip(rc) {
            *zi = *ri;
            acc += ri * *zi;
        }
        acc
    };
    if n <= MIN_PAR_CHUNK {
        return body(r, z);
    }
    let cl = chunk_len(n);
    let nchunks = scratch_len(n);
    let partials = &mut partials[..nchunks];
    partials
        .par_iter_mut()
        .zip(z.par_chunks_mut(cl))
        .zip(r.par_chunks(cl))
        .for_each(|((out, zc), rc)| *out = body(rc, zc));
    rayon::tree_sum(partials)
}

/// `p = z + beta·p` (the CG search-direction update), parallel above the
/// chunk crossover, allocation-free.
///
/// # Panics
///
/// Panics if `z` and `p` differ in length.
pub fn xpby(z: &[f64], beta: f64, p: &mut [f64]) {
    assert_eq!(z.len(), p.len(), "xpby: length mismatch");
    let body = |zc: &[f64], pc: &mut [f64]| {
        for (pi, zi) in pc.iter_mut().zip(zc) {
            *pi = zi + beta * *pi;
        }
    };
    if p.len() <= MIN_PAR_CHUNK {
        return body(z, p);
    }
    let cl = chunk_len(p.len());
    p.par_chunks_mut(cl)
        .zip(z.par_chunks(cl))
        .for_each(|(pc, zc)| body(zc, pc));
}

/// `y = alpha·y + beta·x` in place (the shifted-operator update),
/// parallel above the chunk crossover, allocation-free.
///
/// # Panics
///
/// Panics if `x` and `y` differ in length.
pub fn axpby_inplace(alpha: f64, beta: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby_inplace: length mismatch");
    let body = |xc: &[f64], yc: &mut [f64]| {
        for (yi, xi) in yc.iter_mut().zip(xc) {
            *yi = alpha * *yi + beta * xi;
        }
    };
    if y.len() <= MIN_PAR_CHUNK {
        return body(x, y);
    }
    let cl = chunk_len(y.len());
    y.par_chunks_mut(cl)
        .zip(x.par_chunks(cl))
        .for_each(|(yc, xc)| body(xc, yc));
}

/// `out = x ⊙ s` (elementwise product), parallel above the chunk
/// crossover.
///
/// # Panics
///
/// Panics if `x`, `s`, and `out` do not all share one length.
pub fn hadamard_into(x: &[f64], s: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), s.len(), "hadamard_into: length mismatch");
    assert_eq!(x.len(), out.len(), "hadamard_into: output length mismatch");
    let body = |xc: &[f64], sc: &[f64], oc: &mut [f64]| {
        for ((oi, xi), si) in oc.iter_mut().zip(xc).zip(sc) {
            *oi = xi * si;
        }
    };
    if x.len() <= MIN_PAR_CHUNK {
        return body(x, s, out);
    }
    let cl = chunk_len(x.len());
    out.par_chunks_mut(cl)
        .zip(x.par_chunks(cl))
        .zip(s.par_chunks(cl))
        .for_each(|((oc, xc), sc)| body(xc, sc, oc));
}

/// `y ⊙= s` in place, parallel above the chunk crossover.
///
/// # Panics
///
/// Panics if `y` and `s` differ in length.
pub fn hadamard_inplace(y: &mut [f64], s: &[f64]) {
    assert_eq!(y.len(), s.len(), "hadamard_inplace: length mismatch");
    if y.len() <= MIN_PAR_CHUNK {
        for (yi, si) in y.iter_mut().zip(s) {
            *yi *= si;
        }
        return;
    }
    let cl = chunk_len(y.len());
    y.par_chunks_mut(cl)
        .zip(s.par_chunks(cl))
        .for_each(|(yc, sc)| {
            for (yi, si) in yc.iter_mut().zip(sc) {
                *yi *= si;
            }
        });
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `‖x − y‖₂`.
///
/// # Panics
///
/// Panics if the vector lengths disagree.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Subtracts the mean from `x`, projecting it orthogonal to the constant
/// vector — the natural domain for Laplacian pencils, whose kernel is the
/// constant vector on each connected component.
pub fn deflate_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

/// Subtracts from `x` its component along the *weighted* constant direction
/// `d^{1/2}` (with `dsqrt[i] = sqrt(d_i)`), the kernel direction of a
/// normalized Laplacian `D^{-1/2} A D^{-1/2}`.
///
/// # Panics
///
/// Panics if `x` and `dsqrt` lengths disagree.
pub fn deflate_weighted_constant(x: &mut [f64], dsqrt: &[f64]) {
    assert_eq!(x.len(), dsqrt.len());
    let denom = dot(dsqrt, dsqrt);
    if denom == 0.0 {
        return;
    }
    let coeff = dot(x, dsqrt) / denom;
    for (xi, di) in x.iter_mut().zip(dsqrt) {
        *xi -= coeff * di;
    }
}

/// Normalizes `x` to unit Euclidean norm; returns the prior norm.
/// Leaves a zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn par_dot_matches_dot() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let s = dot(&x, &y);
        let p = par_dot(&x, &y);
        assert!((s - p).abs() < 1e-8 * s.abs().max(1.0));
    }

    #[test]
    fn axpy_updates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn par_axpy_matches() {
        let n = 70_000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1 = vec![1.0; n];
        let mut y2 = vec![1.0; n];
        axpy(0.5, &x, &mut y1);
        par_axpy(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn deflation_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0];
        deflate_constant(&mut x);
        assert!((x.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn weighted_deflation_orthogonal() {
        let dsqrt = vec![1.0, 2.0, 3.0];
        let mut x = vec![5.0, -1.0, 2.0];
        deflate_weighted_constant(&mut x, &dsqrt);
        assert!(dot(&x, &dsqrt).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-14);
        let mut z = vec![0.0; 4];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dot_with_scratch_matches_par_dot() {
        let n = 70_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut partials = vec![0.0; scratch_len(n)];
        let a = dot_with_scratch(&x, &y, &mut partials);
        let b = par_dot(&x, &y);
        assert_eq!(a.to_bits(), b.to_bits());
        // Small input takes the plain path.
        let c = dot_with_scratch(&x[..100], &y[..100], &mut partials);
        assert_eq!(c.to_bits(), dot(&x[..100], &y[..100]).to_bits());
    }

    #[test]
    fn fused_axpy_dot_self_matches_two_pass() {
        for n in [100usize, 70_000] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut y1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
            let mut y2 = y1.clone();
            let mut partials = vec![0.0; scratch_len(n)];
            let fused = fused_axpy_dot_self(-0.25, &x, &mut y1, &mut partials);
            axpy(-0.25, &x, &mut y2);
            assert_eq!(y1, y2, "n={n}");
            let two_pass = dot_with_scratch(&y2, &y2, &mut partials);
            assert_eq!(fused.to_bits(), two_pass.to_bits(), "n={n}");
        }
    }

    #[test]
    fn fused_update_x_r_matches_unfused_sequence() {
        for n in [100usize, 70_000] {
            let p: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let ap: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos()).collect();
            let mut x1: Vec<f64> = (0..n).map(|i| (i % 23) as f64 * 0.1).collect();
            let mut r1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07).sin()).collect();
            let mut x2 = x1.clone();
            let mut r2 = r1.clone();
            let mut partials = vec![0.0; scratch_len(n)];
            let alpha = 0.625;
            let fused = fused_update_x_r(alpha, &p, &ap, &mut x1, &mut r1, &mut partials);
            par_axpy(alpha, &p, &mut x2);
            let unfused = fused_axpy_dot_self(-alpha, &ap, &mut r2, &mut partials);
            assert_eq!(x1, x2, "n={n}");
            assert_eq!(r1, r2, "n={n}");
            assert_eq!(fused.to_bits(), unfused.to_bits(), "n={n}");
        }
    }

    #[test]
    fn fused_scale_dot_matches_unfused_sequence() {
        for n in [64usize, 70_000] {
            let s: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 9) as f64)).collect();
            let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
            let mut z1 = vec![0.0; n];
            let mut z2 = vec![0.0; n];
            let mut partials = vec![0.0; scratch_len(n)];
            let fused = fused_scale_dot(&s, &r, &mut z1, &mut partials);
            hadamard_into(&r, &s, &mut z2);
            let unfused = dot_with_scratch(&r, &z2, &mut partials);
            assert_eq!(z1, z2, "n={n}");
            assert_eq!(fused.to_bits(), unfused.to_bits(), "n={n}");
        }
    }

    #[test]
    fn fused_copy_dot_matches_unfused_sequence() {
        for n in [33usize, 70_000] {
            let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).cos()).collect();
            let mut z1 = vec![0.0; n];
            let mut z2 = vec![0.0; n];
            let mut partials = vec![0.0; scratch_len(n)];
            let fused = fused_copy_dot(&r, &mut z1, &mut partials);
            z2.copy_from_slice(&r);
            let unfused = dot_with_scratch(&r, &z2, &mut partials);
            assert_eq!(z1, z2, "n={n}");
            assert_eq!(fused.to_bits(), unfused.to_bits(), "n={n}");
        }
    }

    #[test]
    fn scratch_len_tracks_pool_geometry() {
        for n in [0usize, 1, 4096, 4097, 102_400, 10_000_000] {
            assert_eq!(scratch_len(n), rayon::pool::num_chunks(n));
            assert!(scratch_len(n) >= 1);
            assert!(scratch_len(n) <= rayon::pool::MAX_PAR_CHUNKS);
        }
    }

    #[test]
    fn xpby_matches_scalar_loop() {
        for n in [64usize, 70_000] {
            let z: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut p1: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
            let mut p2 = p1.clone();
            xpby(&z, 0.75, &mut p1);
            for (pi, zi) in p2.iter_mut().zip(&z) {
                *pi = zi + 0.75 * *pi;
            }
            assert_eq!(p1, p2, "n={n}");
        }
    }

    #[test]
    fn elementwise_kernels_match() {
        for n in [33usize, 70_000] {
            let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 9) as f64).collect();
            let s: Vec<f64> = (0..n).map(|i| 0.5 + (i % 4) as f64).collect();
            let mut y1: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
            let mut y2 = y1.clone();
            axpby_inplace(2.0, -1.0, &x, &mut y1);
            for (yi, xi) in y2.iter_mut().zip(&x) {
                *yi = 2.0 * *yi - xi;
            }
            assert_eq!(y1, y2, "axpby n={n}");

            let mut out = vec![0.0; n];
            hadamard_into(&x, &s, &mut out);
            let mut inplace = x.clone();
            hadamard_inplace(&mut inplace, &s);
            for i in 0..n {
                assert_eq!(out[i], x[i] * s[i]);
                assert_eq!(inplace[i], x[i] * s[i]);
            }
        }
    }
}
