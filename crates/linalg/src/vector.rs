//! Dense vector kernels with optional rayon parallelism.
//!
//! Vectors are plain `&[f64]` / `&mut [f64]` slices; the kernels here are the
//! BLAS-1 subset the iterative solvers need. Each has a sequential and a
//! parallel path selected by [`Parallelism`]; the parallel paths use fixed
//! chunking so results are deterministic up to floating-point reassociation
//! of the chunk partials.

use rayon::prelude::*;

/// Chunk size for parallel BLAS-1 kernels; large enough to amortize task
/// overhead, small enough to load-balance on typical core counts.
const PAR_CHUNK: usize = 1 << 14;

/// Execution-policy switch threaded through the workspace.
///
/// `Sequential` pins deterministic single-threaded execution (used by tests
/// and as a baseline in the speedup experiments); `Parallel` uses rayon's
/// global pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded, fully deterministic.
    Sequential,
    /// rayon global thread pool.
    #[default]
    Parallel,
}

impl Parallelism {
    /// True if this policy runs on the rayon pool.
    pub fn is_parallel(self) -> bool {
        matches!(self, Parallelism::Parallel)
    }
}

/// Dot product `xᵀy`. Panics if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Parallel dot product; chunk partials are summed in chunk order.
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() < PAR_CHUNK {
        return dot(x, y);
    }
    x.par_chunks(PAR_CHUNK)
        .zip(y.par_chunks(PAR_CHUNK))
        .map(|(a, b)| dot(a, b))
        .sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel `y += alpha * x`.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "par_axpy: length mismatch");
    if x.len() < PAR_CHUNK {
        return axpy(alpha, x, y);
    }
    y.par_chunks_mut(PAR_CHUNK)
        .zip(x.par_chunks(PAR_CHUNK))
        .for_each(|(yc, xc)| axpy(alpha, xc, yc));
}

/// `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `‖x − y‖₂`.
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Subtracts the mean from `x`, projecting it orthogonal to the constant
/// vector — the natural domain for Laplacian pencils, whose kernel is the
/// constant vector on each connected component.
pub fn deflate_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

/// Subtracts from `x` its component along the *weighted* constant direction
/// `d^{1/2}` (with `dsqrt[i] = sqrt(d_i)`), the kernel direction of a
/// normalized Laplacian `D^{-1/2} A D^{-1/2}`.
pub fn deflate_weighted_constant(x: &mut [f64], dsqrt: &[f64]) {
    assert_eq!(x.len(), dsqrt.len());
    let denom = dot(dsqrt, dsqrt);
    if denom == 0.0 {
        return;
    }
    let coeff = dot(x, dsqrt) / denom;
    for (xi, di) in x.iter_mut().zip(dsqrt) {
        *xi -= coeff * di;
    }
}

/// Normalizes `x` to unit Euclidean norm; returns the prior norm.
/// Leaves a zero vector untouched and returns 0.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let x = vec![3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
    }

    #[test]
    fn par_dot_matches_dot() {
        let n = 100_000;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let s = dot(&x, &y);
        let p = par_dot(&x, &y);
        assert!((s - p).abs() < 1e-8 * s.abs().max(1.0));
    }

    #[test]
    fn axpy_updates() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
    }

    #[test]
    fn par_axpy_matches() {
        let n = 70_000;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1 = vec![1.0; n];
        let mut y2 = vec![1.0; n];
        axpy(0.5, &x, &mut y1);
        par_axpy(0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn deflation_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0];
        deflate_constant(&mut x);
        assert!((x.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn weighted_deflation_orthogonal() {
        let dsqrt = vec![1.0, 2.0, 3.0];
        let mut x = vec![5.0, -1.0, 2.0];
        deflate_weighted_constant(&mut x, &dsqrt);
        assert!(dot(&x, &dsqrt).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-14);
        let mut z = vec![0.0; 4];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn dist2_basic() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }
}
