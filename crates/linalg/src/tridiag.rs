//! Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts).
//!
//! Used by the Lanczos driver in [`crate::lanczos`] to diagonalize the
//! projected tridiagonal matrix `T_k` and recover Ritz pairs.

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `diag` and off-diagonal `off` (`off.len() == diag.len() - 1`).
///
/// Returns `(eigenvalues, z)` with eigenvalues ascending and `z` the
/// row-major `n × n` matrix whose *columns* are eigenvectors.
///
/// # Panics
///
/// Panics if `diag` is empty or `off` length is not one less.
pub fn tridiag_eigen(diag: &[f64], off: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = diag.len();
    assert!(n > 0);
    assert_eq!(off.len(), n.saturating_sub(1));
    let mut d = diag.to_vec();
    // e is padded with a trailing zero like the classic tql2 routine.
    let mut e = Vec::with_capacity(n);
    e.extend_from_slice(off);
    e.push(0.0);
    // z starts as identity; accumulates rotations.
    let mut z = vec![0.0; n * n];
    for i in 0..n {
        z[i * n + i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find small subdiagonal element.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiag_eigen: no convergence");
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r } else { -r };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate eigenvector rotations.
                for k in 0..n {
                    f = z[k * n + i + 1];
                    z[k * n + i + 1] = s * z[k * n + i] + c * f;
                    z[k * n + i] = c * z[k * n + i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let vals: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vecs = vec![0.0; n * n];
    for (new, &old) in order.iter().enumerate() {
        for r in 0..n {
            vecs[r * n + new] = z[r * n + old];
        }
    }
    (vals, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        let (vals, vecs) = tridiag_eigen(&[7.0], &[]);
        assert_eq!(vals, vec![7.0]);
        assert_eq!(vecs, vec![1.0]);
    }

    #[test]
    fn two_by_two() {
        // [[2, 1], [1, 2]] -> eigenvalues 1, 3
        let (vals, _) = tridiag_eigen(&[2.0, 2.0], &[1.0]);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_laplacian_known_spectrum() {
        // Tridiagonal Laplacian of path P_n: λ_k = 2 - 2 cos(kπ/n), k=0..n-1
        let n = 8;
        let mut diag = vec![2.0; n];
        diag[0] = 1.0;
        diag[n - 1] = 1.0;
        let off = vec![-1.0; n - 1];
        let (vals, vecs) = tridiag_eigen(&diag, &off);
        for k in 0..n {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!(
                (vals[k] - expect).abs() < 1e-10,
                "k={k}: {} vs {expect}",
                vals[k]
            );
        }
        // Verify an eigenpair residual: T v = λ v for k = 1.
        let k = 1;
        let v: Vec<f64> = (0..n).map(|r| vecs[r * n + k]).collect();
        for i in 0..n {
            let mut tv = diag[i] * v[i];
            if i > 0 {
                tv += off[i - 1] * v[i - 1];
            }
            if i + 1 < n {
                tv += off[i] * v[i + 1];
            }
            assert!((tv - vals[k] * v[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let n = 6;
        let diag: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let off = vec![0.5; n - 1];
        let (_, vecs) = tridiag_eigen(&diag, &off);
        for a in 0..n {
            for b in 0..n {
                let mut dot = 0.0;
                for r in 0..n {
                    dot += vecs[r * n + a] * vecs[r * n + b];
                }
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({a},{b}): {dot}");
            }
        }
    }
}
