//! Artifact [`Encode`]/[`Decode`] impls for linalg types.
//!
//! Values travel by bit pattern (the codec writes `f64::to_bits`), so a
//! decoded matrix is *bitwise* identical to the encoded one — the property
//! the preconditioner artifacts need to reproduce PCG trajectories exactly.
//! Decoding treats the input as untrusted: structure is validated through
//! [`CsrMatrix::try_from_parts`] / explicit shape checks and failures come
//! back as [`ArtifactError::Malformed`], never a panic.

use crate::csr::CsrMatrix;
use crate::dense::{CholeskyFactor, DenseMatrix};
use hicond_artifact::{ArtifactError, Decode, Decoder, Encode, Encoder};

impl Encode for CsrMatrix {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.nrows());
        enc.put_usize(self.ncols());
        enc.put_usize_slice(self.row_ptr());
        enc.put_u32_slice(self.col_idx());
        enc.put_f64_slice(self.values());
    }
}

impl Decode for CsrMatrix {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let nrows = dec.usize_()?;
        let ncols = dec.usize_()?;
        let row_ptr = dec.usize_vec()?;
        let col_idx = dec.u32_vec()?;
        let values = dec.f64_vec()?;
        CsrMatrix::try_from_parts(nrows, ncols, row_ptr, col_idx, values)
            .map_err(|v| ArtifactError::Malformed(format!("CsrMatrix: {v}")))
    }
}

impl Encode for DenseMatrix {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.nrows());
        enc.put_usize(self.ncols());
        enc.put_f64_slice(self.data());
    }
}

impl Decode for DenseMatrix {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let nrows = dec.usize_()?;
        let ncols = dec.usize_()?;
        let data = dec.f64_vec()?;
        let expect = nrows.checked_mul(ncols).ok_or_else(|| {
            ArtifactError::Malformed(format!("DenseMatrix: {nrows}x{ncols} overflows"))
        })?;
        if data.len() != expect {
            return Err(ArtifactError::Malformed(format!(
                "DenseMatrix: {nrows}x{ncols} needs {expect} entries, got {}",
                data.len()
            )));
        }
        // reach: trusted(data length equals nrows * ncols — checked just above — so the from_rows shape assertion cannot fire)
        Ok(DenseMatrix::from_rows(nrows, ncols, data))
    }
}

impl Encode for CholeskyFactor {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        self.l.encode(enc);
    }
}

impl Decode for CholeskyFactor {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, ArtifactError> {
        let n = dec.usize_()?;
        let l = DenseMatrix::decode(dec)?;
        if l.nrows() != n || l.ncols() != n {
            return Err(ArtifactError::Malformed(format!(
                "CholeskyFactor: factor is {}x{}, expected {n}x{n}",
                l.nrows(),
                l.ncols()
            )));
        }
        // solve() divides by the diagonal; require it finite and nonzero so
        // a decoded factor cannot poison downstream numerics silently.
        for i in 0..n {
            let d = l.get(i, i).unwrap_or(f64::NAN);
            // exact: reject the literal zero bit pattern; any nonzero divides
            if !d.is_finite() || d == 0.0 {
                return Err(ArtifactError::Malformed(format!(
                    "CholeskyFactor: diagonal entry {i} is {d}"
                )));
            }
        }
        Ok(CholeskyFactor { n, l })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hicond_artifact::{decode_exact, encode_to_vec};

    fn path_laplacian_csr(n: usize) -> CsrMatrix {
        let mut b = crate::csr::CooBuilder::new(n, n);
        for i in 0..n - 1 {
            b.push(i, i, 1.0);
            b.push(i + 1, i + 1, 1.0);
            b.push(i, i + 1, -1.0);
            b.push(i + 1, i, -1.0);
        }
        b.build()
    }

    #[test]
    fn csr_roundtrips_bitwise() {
        let m = path_laplacian_csr(9);
        let bytes = encode_to_vec(&m);
        let back: CsrMatrix = decode_exact(&bytes).unwrap();
        assert_eq!(m, back);
        assert_eq!(
            m.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            back.values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_csr_structure_is_malformed_not_panic() {
        let m = path_laplacian_csr(5);
        let bytes = encode_to_vec(&m);
        // Overwrite the ncols field (second u64) with a tiny value so the
        // column indices go out of range.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            decode_exact::<CsrMatrix>(&bad),
            Err(ArtifactError::Malformed(_))
        ));
        // Truncations never panic either.
        for cut in 0..bytes.len() {
            assert!(decode_exact::<CsrMatrix>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn dense_and_cholesky_roundtrip() {
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let back: DenseMatrix = decode_exact(&encode_to_vec(&a)).unwrap();
        assert_eq!(a, back);

        let f = CholeskyFactor::factor(&a).unwrap();
        let f2: CholeskyFactor = decode_exact(&encode_to_vec(&f)).unwrap();
        let b = [10.0, 8.0];
        let x1 = f.solve(&b);
        let x2 = f2.solve(&b);
        assert_eq!(
            x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dense_shape_mismatch_rejected() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0; 6]);
        let mut bytes = encode_to_vec(&a);
        // Claim 3 rows; data length no longer matches.
        bytes[0..8].copy_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            decode_exact::<DenseMatrix>(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn cholesky_zero_diagonal_rejected() {
        let l = DenseMatrix::from_rows(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let fake = CholeskyFactor { n: 2, l };
        let bytes = encode_to_vec(&fake);
        assert!(matches!(
            decode_exact::<CholeskyFactor>(&bytes),
            Err(ArtifactError::Malformed(_))
        ));
    }
}
