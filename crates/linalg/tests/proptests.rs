//! Property-based tests for the linear-algebra kernels.

use hicond_linalg::dense::{jacobi_eigen, CholeskyFactor, DenseMatrix};
use hicond_linalg::schur::schur_complement;
use hicond_linalg::tridiag::tridiag_eigen;
use hicond_linalg::{cg_solve, CgOptions, CooBuilder, CsrMatrix};
use proptest::prelude::*;

/// Random triplet list on an `n × n` matrix.
fn triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..n, 0..n, -5.0..5.0f64).prop_map(|(r, c, v)| (r, c, v)),
        0..60,
    )
}

/// Laplacian of a random connected weighted graph on `n` vertices:
/// random-tree backbone plus extra random edges.
fn random_laplacian(n: usize) -> impl Strategy<Value = CsrMatrix> {
    let tree_w = prop::collection::vec(0.1..10.0f64, n - 1);
    let extras = prop::collection::vec((0..n, 0..n, 0.1..10.0f64), 0..2 * n);
    (tree_w, extras).prop_map(move |(tw, ex)| {
        let mut b = CooBuilder::new(n, n);
        let add = |u: usize, v: usize, w: f64, b: &mut CooBuilder| {
            if u != v {
                b.push(u, u, w);
                b.push(v, v, w);
                b.push_sym(u, v, -w);
            }
        };
        for (i, &w) in tw.iter().enumerate() {
            let child = i + 1;
            let parent = (i * 7 + 3) % child.max(1);
            add(parent, child, w, &mut b);
        }
        for (u, v, w) in ex {
            add(u, v, w, &mut b);
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_matvec_matches_naive(trips in triplets(8)) {
        let mut b = CooBuilder::new(8, 8);
        for &(r, c, v) in &trips {
            b.push(r, c, v);
        }
        let a = b.build();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).sin()).collect();
        let fast = a.mul(&x);
        // Naive: sum over raw triplets.
        let mut slow = vec![0.0; 8];
        for &(r, c, v) in &trips {
            slow[r] += v * x[c];
        }
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-10);
        }
    }

    #[test]
    fn transpose_is_involution(trips in triplets(7)) {
        let mut b = CooBuilder::new(7, 7);
        for &(r, c, v) in &trips {
            b.push(r, c, v);
        }
        let a = b.build();
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_distributes_over_matvec(t1 in triplets(6), t2 in triplets(6)) {
        let build = |trips: &[(usize, usize, f64)]| {
            let mut b = CooBuilder::new(6, 6);
            for &(r, c, v) in trips {
                b.push(r, c, v);
            }
            b.build()
        };
        let a = build(&t1);
        let c = build(&t2);
        let x: Vec<f64> = (0..6).map(|i| 1.0 - i as f64 * 0.2).collect();
        let lhs = a.add(&c).mul(&x);
        let (ax, cx) = (a.mul(&x), c.mul(&x));
        for i in 0..6 {
            prop_assert!((lhs[i] - (ax[i] + cx[i])).abs() < 1e-10);
        }
    }

    #[test]
    fn dense_roundtrip(trips in triplets(6)) {
        let mut b = CooBuilder::new(6, 6);
        for &(r, c, v) in &trips {
            b.push(r, c, v);
        }
        let a = b.build();
        let back = a.to_dense().to_csr();
        let x: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let (y1, y2) = (a.mul(&x), back.mul(&x));
        for i in 0..6 {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn cg_solves_spd_systems(diag in prop::collection::vec(1.0..20.0f64, 10)) {
        // Tridiagonal SPD: diag dominant.
        let n = diag.len();
        let mut b = CooBuilder::new(n, n);
        for (i, &d) in diag.iter().enumerate() {
            b.push(i, i, d + 2.0);
            if i + 1 < n {
                b.push_sym(i, i + 1, -1.0);
            }
        }
        let a = b.build();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let rhs = a.mul(&xtrue);
        let res = cg_solve(&a, &rhs, &CgOptions { rel_tol: 1e-12, ..Default::default() });
        prop_assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&xtrue) {
            prop_assert!((xi - ti).abs() < 1e-7);
        }
    }

    #[test]
    fn schur_preserves_laplacian_structure(lap in random_laplacian(9)) {
        // Eliminating any subset of a Laplacian yields a Laplacian:
        // symmetric, zero row sums, nonpositive off-diagonals.
        let (s, kept) = schur_complement(&lap, &[0, 4]);
        prop_assert_eq!(kept.len(), 7);
        prop_assert!(s.is_symmetric(1e-9));
        for r in 0..7 {
            let row_sum: f64 = s.row(r).map(|(_, v)| v).sum();
            prop_assert!(row_sum.abs() < 1e-8, "row sum {row_sum}");
            for (c, v) in s.row(r) {
                if c != r {
                    prop_assert!(v <= 1e-10, "positive off-diagonal {v}");
                }
            }
        }
    }

    #[test]
    fn schur_quadratic_form_is_minimum(lap in random_laplacian(7)) {
        // xᵀBx = min_y [x;y]ᵀ L [x;y] where y ranges over eliminated
        // coordinates; check B's form is ≤ the form with y = x-average.
        let elim = vec![6];
        let (b, kept) = schur_complement(&lap, &elim);
        let x: Vec<f64> = (0..6).map(|i| (i as f64) - 2.5).collect();
        let bx = b.mul(&x);
        let quad_b: f64 = x.iter().zip(&bx).map(|(a, c)| a * c).sum();
        // Any completion gives an upper bound on xᵀBx.
        let mut full = vec![0.0; 7];
        for (i, &v) in kept.iter().enumerate() {
            full[v] = x[i];
        }
        full[6] = x.iter().sum::<f64>() / 6.0;
        let lf = lap.mul(&full);
        let quad_full: f64 = full.iter().zip(&lf).map(|(a, c)| a * c).sum();
        prop_assert!(quad_b <= quad_full + 1e-8, "{quad_b} > {quad_full}");
        prop_assert!(quad_b >= -1e-9);
    }

    #[test]
    fn tridiag_reconstructs(diag in prop::collection::vec(-3.0..3.0f64, 6),
                            off in prop::collection::vec(-2.0..2.0f64, 5)) {
        let (vals, vecs) = tridiag_eigen(&diag, &off);
        let n = 6;
        // T = Z Λ Zᵀ entrywise.
        for i in 0..n {
            for j in 0..n {
                let mut recon = 0.0;
                for k in 0..n {
                    recon += vecs[i * n + k] * vals[k] * vecs[j * n + k];
                }
                let expect = if i == j {
                    diag[i]
                } else if j == i + 1 {
                    off[i]
                } else if i == j + 1 {
                    off[j]
                } else {
                    0.0
                };
                prop_assert!((recon - expect).abs() < 1e-8, "({i},{j}): {recon} vs {expect}");
            }
        }
    }

    #[test]
    fn jacobi_eigen_reconstructs(vals_in in prop::collection::vec(-4.0..4.0f64, 5)) {
        // Build A = Q D Qᵀ from a random-ish orthogonal Q (Householder),
        // recover spectrum.
        let n = vals_in.len();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = vals_in[i];
        }
        // Similarity by a fixed rotation mix to make it non-diagonal.
        let mut rot = DenseMatrix::identity(n);
        let (c, s) = (0.8, 0.6);
        rot[(0, 0)] = c;
        rot[(0, 1)] = -s;
        rot[(1, 0)] = s;
        rot[(1, 1)] = c;
        let m = rot.matmul(&a).matmul(&rot.transpose());
        let (got, _) = jacobi_eigen(&m);
        let mut want = vals_in.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-8, "{g} vs {w}");
        }
    }

    #[test]
    fn cholesky_solve_residual(diag in prop::collection::vec(0.5..5.0f64, 6)) {
        let n = diag.len();
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i] + 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let f = CholeskyFactor::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = f.solve(&b);
        let ax = a.mul_vec(&x);
        for i in 0..n {
            prop_assert!((ax[i] - b[i]).abs() < 1e-9);
        }
    }
}
