//! Proves the PCG iteration loop is allocation-free: all scratch (r, z,
//! p, ap, chunk partials, residual history) is preallocated before the
//! loop, so the *number of heap allocations is independent of the
//! iteration count*. A counting global allocator runs the same system for
//! 30 and for 60 fixed iterations and asserts the totals are equal — any
//! per-iteration allocation would show up as a nonzero difference.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a zero-sized pass-through wrapper (no fields) — every method
// delegates to `System` verbatim, so `System`'s GlobalAlloc contract
// (layout fitting, pointer validity) is preserved unchanged; the counter
// bump has no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller handed us.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by the matching `System.alloc` above.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded to System.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` pair is the caller's live allocation.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

use hicond_linalg::cg::{pcg_solve, CgOptions, JacobiPreconditioner};
use hicond_linalg::csr::{CooBuilder, CsrMatrix};

fn spd_tridiag(n: usize) -> CsrMatrix {
    let mut b = CooBuilder::new(n, n);
    for i in 0..n {
        b.push(i, i, 4.0);
        if i + 1 < n {
            b.push_sym(i, i + 1, -1.0);
        }
    }
    b.build()
}

fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let out = f();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    (out, after - before)
}

#[test]
fn pcg_iteration_loop_is_allocation_free() {
    // Above the 2^14 BLAS-1 chunk crossover so every parallel kernel
    // (dot_with_scratch, fused_axpy_dot_self, xpby, par_axpy, par SpMV)
    // takes its dispatching path.
    let n = 20_000;
    let a = spd_tridiag(n);
    let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
    let m = JacobiPreconditioner::from_diagonal(&a.diagonal());
    let opts = |iters: usize| CgOptions {
        rel_tol: 0.0, // never met: run exactly `iters` iterations
        max_iter: iters,
        record_residuals: true,
    };

    // Exercise under a real multi-thread cap so pool dispatch runs; the
    // warmup spawns the workers and pays all one-time setup allocations.
    rayon::pool::with_thread_cap(4, || {
        let _warmup = pcg_solve(&a, &m, &b, &opts(5));

        let (r30, a30) = allocs_during(|| pcg_solve(&a, &m, &b, &opts(30)));
        let (r60, a60) = allocs_during(|| pcg_solve(&a, &m, &b, &opts(60)));
        assert_eq!(r30.iterations, 30);
        assert_eq!(r60.iterations, 60);
        assert_eq!(
            a30, a60,
            "doubling the iteration count changed the allocation count: \
             the PCG loop allocated per iteration ({a30} vs {a60})"
        );
    });
}
