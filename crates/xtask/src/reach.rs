//! Panic-reachability certification of the untrusted-input surface
//! (`cargo run -p xtask -- reach`).
//!
//! The artifact store and the `hicond serve` line protocol parse bytes
//! that may arrive from another machine: any reachable panic is a remote
//! crash of a long-lived service, and any attacker-sized allocation is a
//! memory-amplification vector. This pass makes "the decode/serve surface
//! cannot panic or over-allocate on any input" a CI-enforced invariant
//! rather than a proptest-supported hope:
//!
//! 1. A declared table of **untrusted entry points** ([`ENTRY_POINTS`]):
//!    container parsing, every `Decode` impl, the graph text readers, the
//!    cache read path, and the serve request handler. The pass fails when
//!    an entry no longer resolves to a workspace function, so the
//!    inventory cannot rot silently.
//! 2. An interprocedural **call graph** over [`crate::scanner`] function
//!    extents and call sites, resolved syntactically: path qualifiers map
//!    through `hicond_<unit>::` / `<unit>::` / `crate`; `Type::method`
//!    maps through the unit declaring `Type`
//!    ([`crate::scanner::declared_types`]); a single-uppercase-letter
//!    qualifier (`T::decode`) models generic trait dispatch and fans out
//!    to every unit defining the method; `self.method()` stays in-unit;
//!    other method calls fan out to defining units unless the name is a
//!    std collision ([`COMMON_STD_NAMES`]). Calls written inside closures
//!    attribute to the enclosing function (the closure runs on the same
//!    surface); dispatch *through* closure-typed parameters is not
//!    modeled — the decode surface does not use it.
//! 3. Four sink rules over every line of every *reachable* function:
//!    `reach-panic` (`unwrap`/`expect`/`panic!`/`assert!`/…; `debug_assert!`
//!    is compiled out of release service builds and exempt),
//!    `reach-index` (slice or array indexing `x[..]`), `reach-arith`
//!    (unchecked `+ - *` on a tainted length/offset-named operand), and
//!    `reach-alloc` (`with_capacity` / `.reserve(` / `vec![_; n]` sized
//!    by a tainted value without clamp evidence). Taint is the
//!    per-function parameter-derivation summary from [`crate::taint`].
//!
//! Two escape hatches, both rendered into the committed certificate
//! (`REACHABILITY.md`, staleness-checked exactly like `UNSAFETY.md`):
//! `// reach: allow(<rule>, <reason>)` accepts one sink line with a
//! bounds argument, and `// reach: trusted(<reason>)` cuts the outgoing
//! call edges of one line — an explicit, reviewable assertion that every
//! value crossing the call was validated first, which is what keeps
//! trusted compute (the solver numerics) out of the untrusted closure.
//! Residual findings are pinned in `reach.ratchet` (shared mechanics with
//! the other ratchets); the goal state, enforced in CI, is **zero**
//! unannotated findings.

use crate::lexer::{comment_context, has_allow, ScannedFile};
use crate::ratchet::Ratchet;
use crate::scanner::{
    call_sites_in, declared_types, enclosing_function, parse, receiver_token, Function, ParsedFile,
};
use crate::taint::{clamped_before, ident_tokens, taint_summary, TaintSummary};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Name of the reach ratchet file at the repo root.
pub const REACH_RATCHET_FILE: &str = "reach.ratchet";

/// Name of the generated certificate at the repo root.
pub const REACHABILITY_FILE: &str = "REACHABILITY.md";

/// All reach rules, in reporting order.
pub const REACH_RULES: [&str; 4] = ["reach-panic", "reach-index", "reach-arith", "reach-alloc"];

/// One declared untrusted entry point.
#[derive(Debug)]
pub struct EntryPoint {
    /// Owning unit (crate dir name, or `hicond` for the root package).
    pub unit: &'static str,
    /// Bare function name (same-named functions in the unit merge).
    pub func: &'static str,
    /// Why this function receives undecoded input.
    pub why: &'static str,
}

const fn entry(unit: &'static str, func: &'static str, why: &'static str) -> EntryPoint {
    EntryPoint { unit, func, why }
}

/// The certified inventory: every function that receives bytes or text
/// not yet validated by this workspace. Adding an input surface without
/// extending this table leaves it uncovered — reviewers look here first.
pub const ENTRY_POINTS: &[EntryPoint] = &[
    entry(
        "artifact",
        "parse",
        "container bytes read from disk or a peer",
    ),
    entry(
        "artifact",
        "decode",
        "`Decode` impls for primitives and collections",
    ),
    entry(
        "artifact",
        "decode_exact",
        "top-level decode of an untrusted byte buffer",
    ),
    entry(
        "artifact",
        "decode_section",
        "tagged section decode inside a container",
    ),
    entry(
        "artifact",
        "load",
        "cache entry bytes from the store directory",
    ),
    entry(
        "artifact",
        "verify",
        "store-wide verification walk over on-disk entries",
    ),
    entry("graph", "decode", "graph / partition artifact payloads"),
    entry("graph", "read_edge_list", "edge-list text from the CLI"),
    entry("graph", "read_metis", "METIS text from the CLI"),
    entry("graph", "read_dimacs", "DIMACS text from the CLI"),
    entry("linalg", "decode", "matrix / factor artifact payloads"),
    entry(
        "core",
        "decode",
        "decomposition / hierarchy artifact payloads",
    ),
    entry("precond", "decode", "preconditioner artifact payloads"),
    entry("precond", "decode_solver", "full solver artifact container"),
    entry("hicond", "respond", "one `hicond serve` request line"),
    entry(
        "hicond",
        "respond_batched",
        "one request line routed through the serve batch queue",
    ),
    entry(
        "hicond",
        "read_bounded_line",
        "raw bytes from a serve peer (stdin or TCP)",
    ),
];

/// Method names whose unqualified `.name(..)` form is overwhelmingly a
/// std-library call. Resolving these to same-named workspace functions
/// would fabricate edges (`.push(` on the decode surface is `Vec::push`,
/// not a builder method elsewhere in the workspace). Calls the
/// certificate must follow use `self.`, a path qualifier, or a
/// non-colliding name — the resolution rules in the module docs.
pub const COMMON_STD_NAMES: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_str",
    "ceil",
    "chain",
    "chunks",
    "clear",
    "clone",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "count",
    "default",
    "drain",
    "entry",
    "ends_with",
    "enumerate",
    "eq",
    "extend",
    "filter",
    "find",
    "first",
    "floor",
    "flush",
    "fold",
    "fmt",
    "from",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "metadata",
    "min",
    "next",
    "parse",
    "path",
    "pop",
    "position",
    "push",
    "read",
    "remove",
    "reserve",
    "resize",
    "retain",
    "rev",
    "reverse",
    "round",
    "skip",
    "sort",
    "sort_unstable",
    "split",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "transpose",
    "trim",
    "truncate",
    "values",
    "windows",
    "with_capacity",
    "write",
    "zip",
];

/// Result of a reach run.
#[derive(Debug)]
pub struct ReachOutcome {
    /// Human-readable report (always printable).
    pub report: String,
    /// Number of (unit, rule) pairs whose count rose above the pin.
    pub regressions: usize,
    /// Number of (unit, rule) pairs now below their pin.
    pub improvements: usize,
    /// True when `REACHABILITY.md` on disk does not match the regenerated
    /// certificate (run with `--write-reachability` to refresh).
    pub certificate_stale: bool,
    /// Declared entry points that resolve to no workspace function.
    pub missing_entries: usize,
}

impl ReachOutcome {
    /// True when the reach pass should exit successfully.
    pub fn passed(&self) -> bool {
        self.regressions == 0 && !self.certificate_stale && self.missing_entries == 0
    }
}

/// One unannotated finding on the untrusted surface.
#[derive(Debug)]
struct Finding {
    unit: String,
    rel_path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

/// One `reach: allow`-annotated sink (rendered into the certificate).
#[derive(Debug)]
struct AllowedSite {
    rel_path: String,
    line: usize,
    rule: &'static str,
    reason: String,
}

/// One `reach: trusted` call-edge cut (rendered into the certificate).
#[derive(Debug)]
struct TrustBoundary {
    rel_path: String,
    line: usize,
    reason: String,
}

/// A parsed workspace source file.
struct SourceFile {
    unit: String,
    rel_path: String,
    parsed: ParsedFile,
}

/// Everything one reach analysis produces; shared by the ratchet driver
/// and `--explain`.
struct Analysis {
    files: Vec<SourceFile>,
    /// Nodes reachable from the resolved entry points.
    reachable: BTreeSet<String>,
    /// BFS predecessor: node → (pred node, call rel_path, call line).
    pred: BTreeMap<String, (String, String, usize)>,
    /// `unit::func` entries that resolve to no function.
    missing_entries: Vec<String>,
    /// Reachable-node count per entry (by table order).
    entry_reach: Vec<usize>,
    findings: Vec<Finding>,
    allowed: Vec<AllowedSite>,
    boundaries: Vec<TrustBoundary>,
    /// Syntactic sink sites examined per rule (matched before allow).
    sinks_examined: BTreeMap<&'static str, usize>,
    /// Total function-group nodes in scope.
    node_count: usize,
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for e in entries {
        let e = e.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        paths.push(e.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan roots: `crates/*/src` plus the root package `src/`. Tests and
/// examples are out of scope (they are not the service surface), and
/// `vendor/` is out of scope (the decode path never calls into it — a
/// resolution that did would be a finding worth surfacing by name
/// collision anyway).
fn scan_roots(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut roots: Vec<(String, PathBuf)> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut subdirs: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let name = sub
                .file_name()
                .and_then(|f| f.to_str())
                .ok_or_else(|| format!("non-UTF-8 dir under {}", crates.display()))?
                .to_string();
            let src = sub.join("src");
            if src.is_dir() {
                roots.push((name, src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        roots.push(("hicond".to_string(), root_src));
    }
    Ok(roots)
}

fn collect_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    for (unit, dir) in scan_roots(root)? {
        let mut files = Vec::new();
        collect_rs_files(&dir, &mut files)?;
        for file in files {
            let source = std::fs::read_to_string(&file)
                .map_err(|e| format!("reading {}: {e}", file.display()))?;
            let rel_path = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            out.push(SourceFile {
                unit: unit.clone(),
                rel_path,
                parsed: parse(&source),
            });
        }
    }
    Ok(out)
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// True when the line's comment carries a `reach: trusted(..)` marker.
fn has_trusted(ctx: &str) -> bool {
    ctx.contains("reach: trusted(")
}

/// Reason text inside `reach: trusted(<reason>)`.
fn trusted_reason(ctx: &str) -> String {
    marker_reason(ctx, "reach: trusted(", "")
}

/// Reason text inside `reach: allow(<rule>, <reason>)`.
fn allow_reason(ctx: &str, rule: &str) -> String {
    marker_reason(ctx, "reach: allow(", rule)
}

fn marker_reason(ctx: &str, prefix: &str, rule: &str) -> String {
    let Some(pos) = ctx.find(prefix) else {
        return "(no reason given)".to_string();
    };
    let rest = ctx.get(pos + prefix.len()..).unwrap_or("");
    let rest = rest.strip_prefix(rule).unwrap_or(rest);
    let rest = rest.trim_start().trim_start_matches(',').trim_start();
    let upto = rest.find(')').unwrap_or(rest.len());
    let reason = rest.get(..upto).unwrap_or("").trim();
    if reason.is_empty() {
        "(no reason given)".to_string()
    } else {
        reason.to_string()
    }
}

// ---------------------------------------------------------------------
// Call-graph construction and resolution
// ---------------------------------------------------------------------

/// Node id for the `name` definitions in file `i`. Nodes are file-scoped
/// so that same-named functions in different files (every `new`, every
/// `decode`) stay distinct and a `Type::method` call lands only in the
/// file declaring `Type`.
fn node_id(files: &[SourceFile], i: usize, name: &str) -> String {
    format!("{}::{}@{}", files[i].unit, name, files[i].rel_path)
}

/// Resolves one call site to the set of files whose `name` definitions it
/// may dispatch to. See the module docs for the rule table; proximity
/// wins — same file, then same unit, then every definer.
#[allow(clippy::too_many_arguments)]
fn resolve_files(
    caller: usize,
    callee: &str,
    qualifier: Option<&str>,
    is_method: bool,
    receiver: &str,
    files: &[SourceFile],
    defined: &BTreeMap<String, BTreeSet<usize>>,
    type_files: &BTreeMap<String, BTreeSet<usize>>,
    units: &BTreeSet<String>,
) -> Vec<usize> {
    let Some(defs) = defined.get(callee) else {
        return Vec::new();
    };
    let unit = &files[caller].unit;
    let all = || defs.iter().copied().collect::<Vec<usize>>();
    let in_unit = |q: &str| {
        defs.iter()
            .copied()
            .filter(|&i| files[i].unit == q)
            .collect::<Vec<usize>>()
    };
    let same_file_else_unit = || {
        if defs.contains(&caller) {
            vec![caller]
        } else {
            in_unit(unit)
        }
    };
    match qualifier {
        Some("crate") => in_unit(unit),
        Some("self") | Some("Self") => same_file_else_unit(),
        Some(q) => {
            if units.contains(q) {
                in_unit(q)
            } else if let Some(stripped) = q.strip_prefix("hicond_") {
                if units.contains(stripped) {
                    in_unit(stripped)
                } else {
                    Vec::new()
                }
            } else if q.len() == 1 && q.chars().all(|c| c.is_ascii_uppercase()) {
                // Generic parameter: trait dispatch, any impl can run.
                all()
            } else if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                match type_files.get(q) {
                    Some(owners) => {
                        let hit: Vec<usize> = defs
                            .iter()
                            .copied()
                            .filter(|i| owners.contains(i))
                            .collect();
                        if !hit.is_empty() {
                            return hit;
                        }
                        // Trait default method or cross-file impl: stay
                        // inside the units that declare the type.
                        let owner_units: BTreeSet<&String> =
                            owners.iter().map(|&i| &files[i].unit).collect();
                        let unit_hit: Vec<usize> = defs
                            .iter()
                            .copied()
                            .filter(|&i| owner_units.contains(&files[i].unit))
                            .collect();
                        if !unit_hit.is_empty() {
                            unit_hit
                        } else {
                            all()
                        }
                    }
                    // `String::`, `Vec::`, … — a std type, external.
                    None => Vec::new(),
                }
            } else {
                // `std::`, `io::`, … — external.
                Vec::new()
            }
        }
        None if is_method => {
            if receiver == "self" {
                same_file_else_unit()
            } else if COMMON_STD_NAMES.contains(&callee) {
                Vec::new()
            } else {
                // A bare method call is most likely on a locally-defined
                // type: prefer the calling unit's definitions, fan out to
                // every definer only for genuinely imported methods.
                let s = in_unit(unit);
                if !s.is_empty() {
                    s
                } else {
                    all()
                }
            }
        }
        None => {
            // Unqualified free call: proximity wins; a use-imported
            // cross-unit function falls back to all definers.
            let s = same_file_else_unit();
            if !s.is_empty() {
                s
            } else {
                all()
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sink rules
// ---------------------------------------------------------------------

const PANIC_SINKS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
    "assert!(",
    "assert_eq!(",
    "assert_ne!(",
];

/// Finds `tok` in `code` requiring a non-identifier character before it
/// (so `assert!(` does not match inside `debug_assert!(`).
fn find_sink_token(code: &str, tok: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code.get(from..).and_then(|s| s.find(tok)) {
        let abs = from + pos;
        if abs == 0 || !is_ident_char(bytes[abs.saturating_sub(1)]) {
            return Some(abs);
        }
        from = abs + tok.len();
    }
    None
}

/// First panic-capable token on the line, if any.
fn panic_sink(code: &str) -> Option<&'static str> {
    PANIC_SINKS
        .iter()
        .find(|tok| find_sink_token(code, tok).is_some())
        .copied()
}

/// True when the line contains slice/array indexing `expr[..]`: a `[`
/// directly preceded by an identifier char, `)`, `]`, or `?`. Attribute
/// lines (`#[..]`) and macro brackets (`vec![`) do not match.
fn has_index_sink(code: &str) -> bool {
    if code.trim_start().starts_with("#[") {
        return false;
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i.saturating_sub(1)];
        if is_ident_char(prev) || prev == b')' || prev == b']' || prev == b'?' {
            return true;
        }
    }
    false
}

/// Name fragments marking an identifier as a length/offset/size value.
const SIZEY_FRAGMENTS: &[&str] = &[
    "len", "size", "count", "offset", "cursor", "pos", "cap", "need", "total",
];

fn is_sizey(ident: &str) -> bool {
    let lower = ident.to_lowercase();
    SIZEY_FRAGMENTS.iter().any(|f| lower.contains(f))
}

/// Walks a dotted chain (`self.buf.len`) left from byte `end` (exclusive)
/// and returns (leaf ident, root ident).
fn dotted_chain_left(bytes: &[u8], end: usize) -> (String, String) {
    let mut seg_end = end;
    let mut leaf = String::new();
    let mut root = String::new();
    loop {
        let mut start = seg_end;
        while start > 0 && is_ident_char(bytes[start.saturating_sub(1)]) {
            start = start.saturating_sub(1);
        }
        let seg: String = bytes
            .get(start..seg_end)
            .unwrap_or(&[])
            .iter()
            .map(|&b| char::from(b))
            .collect();
        if seg.is_empty() {
            break;
        }
        if leaf.is_empty() {
            leaf = seg.clone();
        }
        root = seg;
        if start == 0 || bytes[start.saturating_sub(1)] != b'.' {
            break;
        }
        seg_end = start.saturating_sub(1);
    }
    (leaf, root)
}

/// Unchecked-arithmetic sink: a `+`, `-`, or `*` whose adjacent operand
/// is a tainted, length-named identifier, on a line with no checked /
/// saturating / clamping arithmetic.
fn arith_sink(code: &str, taint: &TaintSummary) -> Option<String> {
    for guard in ["checked_", "saturating_", "wrapping_", ".min(", ".clamp("] {
        if code.contains(guard) {
            return None;
        }
    }
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'+' && b != b'-' && b != b'*' {
            continue;
        }
        // `->`, `=>`-adjacent, unary context, `**` doc stars.
        if bytes.get(i + 1) == Some(&b'>') || (i > 0 && bytes[i.saturating_sub(1)] == b'<') {
            continue;
        }
        // Left operand: skip spaces, then require an identifier chain.
        let mut l = i;
        while l > 0 && bytes[l.saturating_sub(1)] == b' ' {
            l = l.saturating_sub(1);
        }
        let mut candidates: Vec<(String, String)> = Vec::new();
        if l > 0 && is_ident_char(bytes[l.saturating_sub(1)]) {
            candidates.push(dotted_chain_left(bytes, l));
        } else if l == i && b != b'-' {
            // No spacing and non-ident left for `+`/`*`: not a binary op
            // we can name; `-` may still be unary either way.
        }
        // Right operand: skip compound `=` and spaces, take the ident.
        let mut r = i + 1;
        if bytes.get(r) == Some(&b'=') {
            r += 1;
        }
        while bytes.get(r) == Some(&b' ') {
            r += 1;
        }
        let mut rend = r;
        while rend < bytes.len() && is_ident_char(bytes[rend]) {
            rend += 1;
        }
        if rend > r && !bytes[r].is_ascii_digit() {
            let ident: String = bytes
                .get(r..rend)
                .unwrap_or(&[])
                .iter()
                .map(|&b| char::from(b))
                .collect();
            candidates.push((ident.clone(), ident));
        }
        for (leaf, chain_root) in candidates {
            let operand_tainted = taint.is_tainted(&chain_root) || taint.is_tainted(&leaf);
            if operand_tainted && is_sizey(&leaf) {
                let op = char::from(b);
                return Some(format!(
                    "unchecked `{op}` on tainted length-like operand `{leaf}`"
                ));
            }
        }
    }
    None
}

/// Extracts the argument text of the first `pat` occurrence: balanced
/// parens for calls, the repeat-count arm for `vec![x; n]`.
fn sink_arg_text(code: &str, pat: &str) -> Option<String> {
    let pos = code.find(pat)?;
    let open_is_bracket = pat.ends_with('[');
    let (open, close) = if open_is_bracket {
        ('[', ']')
    } else {
        ('(', ')')
    };
    let rest = code.get(pos + pat.len()..)?;
    let mut depth = 1i32;
    let mut arg = String::new();
    for c in rest.chars() {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        arg.push(c);
    }
    if open_is_bracket {
        // `vec![elem; n]` — the size expression after the top-level `;`.
        let cut = arg.rfind(';')?;
        return arg.get(cut + 1..).map(|s| s.to_string());
    }
    Some(arg)
}

/// Allocation-amplification sink: a capacity request sized by a tainted
/// identifier with no clamp evidence on the line or earlier in the
/// function.
fn alloc_sink(
    file: &ScannedFile,
    func: &Function,
    taint: &TaintSummary,
    idx: usize,
) -> Option<String> {
    let code = &file.lines[idx].code;
    for pat in ["with_capacity(", ".reserve(", "vec!["] {
        // A `fn with_capacity(n: usize)` declaration is not a call site.
        if let Some(pos) = code.find(pat) {
            if code
                .get(..pos)
                .is_some_and(|before| before.ends_with("fn "))
            {
                continue;
            }
        }
        let Some(arg) = sink_arg_text(code, pat) else {
            continue;
        };
        for ident in ident_tokens(&arg) {
            if !taint.is_tainted(&ident) {
                continue;
            }
            if clamped_before(file, func, &ident, idx) {
                continue;
            }
            return Some(format!(
                "capacity `{}` sized by tainted `{ident}` with no clamp evidence",
                pat.trim_end_matches(['(', '['])
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------

fn analyze_workspace(root: &Path, entries: &[EntryPoint]) -> Result<Analysis, String> {
    let files = collect_workspace(root)?;
    let units: BTreeSet<String> = files.iter().map(|f| f.unit.clone()).collect();

    // fn name → defining files; type name → declaring files.
    let mut defined: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut type_files: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    for (i, sf) in files.iter().enumerate() {
        for t in declared_types(&sf.parsed.scanned) {
            type_files.entry(t).or_default().insert(i);
        }
        for func in &sf.parsed.functions {
            if func.in_test_code {
                continue;
            }
            defined.entry(func.name.clone()).or_default().insert(i);
        }
    }

    // Edges + trust boundaries.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut edge_site: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut boundaries: Vec<TrustBoundary> = Vec::new();
    let mut node_set: BTreeSet<String> = BTreeSet::new();
    for (fi, sf) in files.iter().enumerate() {
        let file = &sf.parsed.scanned;
        for func in &sf.parsed.functions {
            if func.in_test_code {
                continue;
            }
            let from = node_id(&files, fi, &func.name);
            node_set.insert(from.clone());
            let mut trusted_lines: BTreeMap<usize, bool> = BTreeMap::new();
            for site in call_sites_in(file, func) {
                let ctx_trusted = *trusted_lines.entry(site.line_idx).or_insert_with(|| {
                    let ctx = comment_context(file, site.line_idx);
                    if has_trusted(&ctx) {
                        boundaries.push(TrustBoundary {
                            rel_path: sf.rel_path.clone(),
                            line: file.lines[site.line_idx].number,
                            reason: trusted_reason(&ctx),
                        });
                        true
                    } else {
                        false
                    }
                });
                if ctx_trusted {
                    continue;
                }
                let receiver = if site.is_method && site.col > 0 {
                    receiver_token(&file.lines[site.line_idx].code, site.col.saturating_sub(1))
                        .to_string()
                } else {
                    String::new()
                };
                let targets = resolve_files(
                    fi,
                    &site.callee,
                    site.qualifier.as_deref(),
                    site.is_method,
                    &receiver,
                    &files,
                    &defined,
                    &type_files,
                    &units,
                );
                for ti in targets {
                    let to = node_id(&files, ti, &site.callee);
                    if to == from {
                        continue;
                    }
                    edges.entry(from.clone()).or_default().insert(to.clone());
                    edge_site
                        .entry((from.clone(), to))
                        .or_insert_with(|| (sf.rel_path.clone(), file.lines[site.line_idx].number));
                }
            }
        }
    }

    // Entry seeds: every file of the entry's unit defining the function.
    let entry_seeds = |e: &EntryPoint| -> Vec<String> {
        defined
            .get(e.func)
            .map(|set| {
                set.iter()
                    .copied()
                    .filter(|&i| files[i].unit == e.unit)
                    .map(|i| node_id(&files, i, e.func))
                    .collect()
            })
            .unwrap_or_default()
    };

    // BFS from the resolved entry points.
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut pred: BTreeMap<String, (String, String, usize)> = BTreeMap::new();
    let mut missing_entries: Vec<String> = Vec::new();
    let mut queue: VecDeque<String> = VecDeque::new();
    for e in entries {
        let seeds = entry_seeds(e);
        if seeds.is_empty() {
            missing_entries.push(format!("{}::{}", e.unit, e.func));
            continue;
        }
        for node in seeds {
            if reachable.insert(node.clone()) {
                queue.push_back(node);
            }
        }
    }
    while let Some(cur) = queue.pop_front() {
        if let Some(tos) = edges.get(&cur) {
            for to in tos {
                if reachable.insert(to.clone()) {
                    if let Some((p, l)) = edge_site.get(&(cur.clone(), to.clone())) {
                        pred.insert(to.clone(), (cur.clone(), p.clone(), *l));
                    }
                    queue.push_back(to.clone());
                }
            }
        }
    }

    // Per-entry reachable counts (small graph; a BFS per entry is cheap).
    let mut entry_reach: Vec<usize> = Vec::new();
    for e in entries {
        let seeds = entry_seeds(e);
        if seeds.is_empty() {
            entry_reach.push(0);
            continue;
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut q: VecDeque<String> = VecDeque::new();
        for node in seeds {
            if seen.insert(node.clone()) {
                q.push_back(node);
            }
        }
        while let Some(cur) = q.pop_front() {
            if let Some(tos) = edges.get(&cur) {
                for to in tos {
                    if seen.insert(to.clone()) {
                        q.push_back(to.clone());
                    }
                }
            }
        }
        entry_reach.push(seen.len());
    }

    // Sink rules over reachable function bodies.
    let mut findings: Vec<Finding> = Vec::new();
    let mut allowed: Vec<AllowedSite> = Vec::new();
    let mut sinks_examined: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rule in REACH_RULES {
        sinks_examined.insert(rule, 0);
    }
    for (fi, sf) in files.iter().enumerate() {
        let file = &sf.parsed.scanned;
        for func in &sf.parsed.functions {
            if func.in_test_code {
                continue;
            }
            let node = node_id(&files, fi, &func.name);
            if !reachable.contains(&node) {
                continue;
            }
            let taint = taint_summary(file, func);
            let body_end = func.end.min(file.lines.len());
            for idx in func.start..body_end {
                let line = &file.lines[idx];
                // Skip lines owned by a nested fn item (they get their
                // own Function entry) — the innermost function wins.
                if enclosing_function(&sf.parsed.functions, idx)
                    .is_some_and(|f| f.start != func.start)
                {
                    continue;
                }
                let mut hits: Vec<(&'static str, String)> = Vec::new();
                if let Some(tok) = panic_sink(&line.code) {
                    hits.push((
                        "reach-panic",
                        format!(
                            "`{}` reachable from the untrusted surface",
                            tok.trim_start_matches('.')
                        ),
                    ));
                }
                if has_index_sink(&line.code) {
                    hits.push((
                        "reach-index",
                        "slice/array indexing reachable from the untrusted surface".to_string(),
                    ));
                }
                if let Some(msg) = arith_sink(&line.code, &taint) {
                    hits.push(("reach-arith", msg));
                }
                if let Some(msg) = alloc_sink(file, func, &taint, idx) {
                    hits.push(("reach-alloc", msg));
                }
                if hits.is_empty() {
                    continue;
                }
                let ctx = comment_context(file, idx);
                for (rule, message) in hits {
                    if let Some(n) = sinks_examined.get_mut(rule) {
                        *n = n.saturating_add(1);
                    }
                    if has_allow(&ctx, rule) {
                        allowed.push(AllowedSite {
                            rel_path: sf.rel_path.clone(),
                            line: line.number,
                            rule,
                            reason: allow_reason(&ctx, rule),
                        });
                    } else {
                        findings.push(Finding {
                            unit: sf.unit.clone(),
                            rel_path: sf.rel_path.clone(),
                            line: line.number,
                            rule,
                            message,
                        });
                    }
                }
            }
        }
    }

    // Deterministic ordering for rendering and diffs.
    boundaries.sort_by(|a, b| (&a.rel_path, a.line).cmp(&(&b.rel_path, b.line)));
    boundaries.dedup_by(|a, b| a.rel_path == b.rel_path && a.line == b.line);
    allowed.sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));
    findings.sort_by(|a, b| (&a.rel_path, a.line, a.rule).cmp(&(&b.rel_path, b.line, b.rule)));

    Ok(Analysis {
        node_count: node_set.len(),
        files,
        reachable,
        pred,
        missing_entries,
        entry_reach,
        findings,
        allowed,
        boundaries,
        sinks_examined,
    })
}

// ---------------------------------------------------------------------
// Certificate rendering
// ---------------------------------------------------------------------

fn render_certificate(a: &Analysis, entries: &[EntryPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Panic-reachability certificate");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Generated by `cargo run -p xtask -- reach --write-reachability`. Do not\n\
         edit by hand: `xtask reach` fails when this file is stale."
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Certified invariant: starting from the untrusted entry points below,\n\
         every reachable panic-capable operation is either removed or carries a\n\
         reviewed `reach: allow(rule, reason)` bounds argument, and every\n\
         input-sized allocation is clamped. Unannotated findings are pinned in\n\
         `reach.ratchet` (goal and current pin: zero); counts above the pin\n\
         fail CI."
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Untrusted entry points");
    let _ = writeln!(out);
    for (i, e) in entries.iter().enumerate() {
        let reach_n = a.entry_reach.get(i).copied().unwrap_or(0);
        let node = format!("{}::{}", e.unit, e.func);
        if a.missing_entries.contains(&node) {
            let _ = writeln!(
                out,
                "- `{node}` — {} — **MISSING** (no such function)",
                e.why
            );
        } else {
            let _ = writeln!(
                out,
                "- `{node}` — {} — reaches {reach_n} function group(s)",
                e.why
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Trust boundaries");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Call sites where validated data crosses into trusted compute\n\
         (`reach: trusted(reason)` cuts the outgoing call edges; the reason is\n\
         the validation argument):"
    );
    let _ = writeln!(out);
    if a.boundaries.is_empty() {
        let _ = writeln!(out, "(none)");
    }
    for b in &a.boundaries {
        let _ = writeln!(out, "- `{}:{}` — {}", b.rel_path, b.line, b.reason);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Accepted sinks");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Panic-capable operations on the surface annotated\n\
         `reach: allow(rule, reason)` with a bounds argument:"
    );
    let _ = writeln!(out);
    if a.allowed.is_empty() {
        let _ = writeln!(out, "(none)");
    }
    for s in &a.allowed {
        let _ = writeln!(
            out,
            "- `{}:{}` `{}` — {}",
            s.rel_path, s.line, s.rule, s.reason
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "## Summary");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "- {} function group(s) in scope, {} reachable from the untrusted surface",
        a.node_count,
        a.reachable.len()
    );
    let examined: Vec<String> = REACH_RULES
        .iter()
        .map(|r| {
            format!(
                "{} {}",
                a.sinks_examined.get(r).copied().unwrap_or(0),
                r.trim_start_matches("reach-")
            )
        })
        .collect();
    let _ = writeln!(out, "- sinks examined: {}", examined.join(", "));
    let _ = writeln!(
        out,
        "- accepted sinks: {}, trust boundaries: {}",
        a.allowed.len(),
        a.boundaries.len()
    );
    let _ = writeln!(
        out,
        "- unannotated findings: {} (pinned in `reach.ratchet`)",
        a.findings.len()
    );
    out
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// Runs the reach pass over the workspace at `root` against the declared
/// [`ENTRY_POINTS`].
///
/// With `write_ratchet`, measured counts become the new `reach.ratchet`
/// baseline; with `write_reachability`, the regenerated certificate is
/// written to `REACHABILITY.md`. Otherwise counts are compared against
/// the pins and the on-disk certificate must match the regenerated one.
pub fn run_reach(
    root: &Path,
    write_ratchet: bool,
    write_reachability: bool,
) -> Result<ReachOutcome, String> {
    run_reach_with(root, ENTRY_POINTS, write_ratchet, write_reachability)
}

/// [`run_reach`] with an explicit entry table (exposed for the unit
/// tests, which build throwaway workspaces with their own entries).
pub fn run_reach_with(
    root: &Path,
    entries: &[EntryPoint],
    write_ratchet: bool,
    write_reachability: bool,
) -> Result<ReachOutcome, String> {
    let a = analyze_workspace(root, entries)?;
    let mut report = String::new();

    for node in &a.missing_entries {
        let _ = writeln!(
            report,
            "MISSING ENTRY `{node}`: declared in the reach inventory but resolves to no \
             workspace function (update reach::ENTRY_POINTS)"
        );
    }

    let certificate = render_certificate(&a, entries);
    let certificate_path = root.join(REACHABILITY_FILE);
    let mut certificate_stale = false;
    if write_reachability {
        std::fs::write(&certificate_path, &certificate)
            .map_err(|e| format!("writing {}: {e}", certificate_path.display()))?;
        let _ = writeln!(report, "wrote {}", certificate_path.display());
    } else {
        let on_disk = std::fs::read_to_string(&certificate_path).unwrap_or_default();
        if on_disk != certificate {
            certificate_stale = true;
            let _ = writeln!(
                report,
                "STALE {}: regenerate with `cargo run -p xtask -- reach --write-reachability`",
                certificate_path.display()
            );
        }
    }

    // Ratchet mechanics (shared with audit/analyze).
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for f in &a.findings {
        *counts
            .entry((f.unit.clone(), f.rule.to_string()))
            .or_insert(0) += 1;
    }
    let ratchet_path = root.join(REACH_RATCHET_FILE);
    let mut regressions = 0usize;
    let mut improvements = 0usize;

    if write_ratchet {
        let r = Ratchet::from_counts(&counts);
        std::fs::write(&ratchet_path, r.serialize_titled("reach", "finding"))
            .map_err(|e| format!("writing {}: {e}", ratchet_path.display()))?;
        let total: usize = counts.values().sum();
        let _ = writeln!(
            report,
            "reach: scanned {} files, pinned {total} finding(s) in {}",
            a.files.len(),
            ratchet_path.display()
        );
        return Ok(ReachOutcome {
            report,
            regressions: 0,
            improvements: 0,
            certificate_stale,
            missing_entries: a.missing_entries.len(),
        });
    }

    let pinned = Ratchet::load(&ratchet_path)?;
    let mut keys: BTreeSet<(String, String)> = counts.keys().cloned().collect();
    let units: BTreeSet<String> = a.files.iter().map(|f| f.unit.clone()).collect();
    for unit in &units {
        for rule in REACH_RULES {
            keys.insert((unit.clone(), rule.to_string()));
        }
    }
    for (unit, rule) in &keys {
        let found = counts
            .get(&(unit.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        let pin = pinned.pinned(unit, rule);
        if found > pin {
            regressions += 1;
            let _ = writeln!(
                report,
                "REGRESSION [{unit}/{rule}]: {found} finding(s) (ratchet pins {pin})"
            );
            for f in a
                .findings
                .iter()
                .filter(|f| f.unit == *unit && f.rule == *rule)
            {
                let _ = writeln!(
                    report,
                    "  {rule} {}:{} {} [explain: cargo run -p xtask -- reach --explain {}:{}]",
                    f.rel_path, f.line, f.message, f.rel_path, f.line
                );
            }
        } else if found < pin {
            improvements += 1;
            let _ = writeln!(
                report,
                "improved [{unit}/{rule}]: {found} finding(s) (ratchet pins {pin}) — \
                 run `cargo run -p xtask -- reach --write-ratchet` to lock in"
            );
        }
    }

    let total: usize = counts.values().sum();
    let _ = writeln!(
        report,
        "reach: scanned {} files, {} entry point(s), {} reachable function group(s), \
         {} accepted sink(s), {total} ratcheted finding(s), {regressions} regression(s), \
         {improvements} improvement(s)",
        a.files.len(),
        entries.len(),
        a.reachable.len(),
        a.allowed.len(),
    );

    Ok(ReachOutcome {
        report,
        regressions,
        improvements,
        certificate_stale,
        missing_entries: a.missing_entries.len(),
    })
}

/// Prints the entry-point-to-sink call chain for a finding id of the form
/// `[rule@]<rel_path>:<line>` (the form the regression report prints).
pub fn explain(root: &Path, id: &str) -> Result<String, String> {
    explain_with(root, ENTRY_POINTS, id)
}

/// [`explain`] with an explicit entry table (for the unit tests).
pub fn explain_with(root: &Path, entries: &[EntryPoint], id: &str) -> Result<String, String> {
    let spec = id.split('@').next_back().unwrap_or(id);
    let Some((path_part, line_part)) = spec.rsplit_once(':') else {
        return Err(format!("bad finding id `{id}` (want [rule@]path:line)"));
    };
    let line_no: usize = line_part
        .parse()
        .map_err(|_| format!("bad line number in `{id}`"))?;
    let a = analyze_workspace(root, entries)?;
    let Some(sf) = a
        .files
        .iter()
        .find(|f| f.rel_path == path_part || f.rel_path.ends_with(path_part))
    else {
        return Err(format!("no scanned file matches `{path_part}`"));
    };
    let idx = line_no.saturating_sub(1);
    let Some(func) = enclosing_function(&sf.parsed.functions, idx) else {
        return Err(format!(
            "{}:{line_no} is not inside a function body",
            sf.rel_path
        ));
    };
    let node = format!("{}::{}@{}", sf.unit, func.name, sf.rel_path);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "site {}:{line_no} — fn `{}` (node `{node}`)",
        sf.rel_path, func.name
    );
    for f in a
        .findings
        .iter()
        .filter(|f| f.rel_path == sf.rel_path && f.line == line_no)
    {
        let _ = writeln!(out, "  finding: {} — {}", f.rule, f.message);
    }
    for s in a
        .allowed
        .iter()
        .filter(|s| s.rel_path == sf.rel_path && s.line == line_no)
    {
        let _ = writeln!(out, "  accepted: {} — {}", s.rule, s.reason);
    }
    if !a.reachable.contains(&node) {
        let _ = writeln!(
            out,
            "  NOT reachable from any declared untrusted entry point"
        );
        return Ok(out);
    }
    // Walk predecessors back to an entry, then print forward.
    let mut chain: Vec<(String, Option<(String, usize)>)> = Vec::new();
    let mut cur = node;
    let mut hops = 0usize;
    while let Some((p, site_path, site_line)) = a.pred.get(&cur) {
        chain.push((cur.clone(), Some((site_path.clone(), *site_line))));
        cur = p.clone();
        hops = hops.saturating_add(1);
        if hops > a.reachable.len() {
            break; // defensive: predecessor maps cannot cycle, but cap anyway
        }
    }
    chain.push((cur, None));
    chain.reverse();
    for (i, (n, via)) in chain.iter().enumerate() {
        match via {
            None => {
                let why = entries
                    .iter()
                    .find(|e| n.starts_with(&format!("{}::{}@", e.unit, e.func)))
                    .map(|e| e.why)
                    .unwrap_or("(entry)");
                let _ = writeln!(out, "  entry `{n}` — {why}");
            }
            Some((p, l)) => {
                let indent = "  ".repeat(i.min(8));
                let _ = writeln!(out, "  {indent}-> `{n}` (call at {p}:{l})");
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway mini-workspace under the system temp dir.
    struct TempWorkspace {
        root: PathBuf,
    }

    impl TempWorkspace {
        fn new(tag: &str) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-reach-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(root.join("crates/demo/src")).unwrap();
            Self { root }
        }

        fn write(&self, rel: &str, content: &str) {
            let path = self.root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, content).unwrap();
        }
    }

    impl Drop for TempWorkspace {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    const ENTRIES: &[EntryPoint] = &[entry("demo", "decode", "test bytes")];

    fn run(ws: &TempWorkspace) -> ReachOutcome {
        run_reach_with(&ws.root, ENTRIES, false, false).unwrap()
    }

    fn run_written(ws: &TempWorkspace) -> ReachOutcome {
        run_reach_with(&ws.root, ENTRIES, true, true).unwrap();
        run(ws)
    }

    #[test]
    fn panic_in_entry_point_flagged() {
        let ws = TempWorkspace::new("panic");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    b.first().copied().unwrap()\n}\n",
        );
        let out = run(&ws);
        assert!(!out.passed());
        assert!(out.report.contains("reach-panic"), "{}", out.report);
        assert!(out.report.contains("lib.rs:2"), "{}", out.report);
    }

    #[test]
    fn panic_behind_call_chain_flagged() {
        let ws = TempWorkspace::new("chain");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    helper(b)\n}\nfn helper(b: &[u8]) -> u8 {\n    b[0]\n}\n",
        );
        let out = run(&ws);
        assert!(out.report.contains("reach-index"), "{}", out.report);
        assert!(out.report.contains("lib.rs:5"), "{}", out.report);
    }

    #[test]
    fn unreachable_panic_not_flagged() {
        let ws = TempWorkspace::new("unreach");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    b.len()\n}\npub fn other() {\n    panic!(\"not on the surface\");\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
    }

    #[test]
    fn cross_unit_qualified_call_followed() {
        let ws = TempWorkspace::new("crossunit");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    hicond_util::pick(b)\n}\n",
        );
        ws.write(
            "crates/util/src/lib.rs",
            "pub fn pick(b: &[u8]) -> u8 {\n    b[1]\n}\n",
        );
        let out = run(&ws);
        assert!(
            out.report.contains("REGRESSION [util/reach-index]"),
            "{}",
            out.report
        );
    }

    #[test]
    fn generic_dispatch_fans_out() {
        let ws = TempWorkspace::new("generic");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    T::extract(b)\n}\n",
        );
        ws.write(
            "crates/util/src/lib.rs",
            "pub fn extract(b: &[u8]) -> u8 {\n    b[2]\n}\n",
        );
        let out = run(&ws);
        assert!(
            out.report.contains("REGRESSION [util/reach-index]"),
            "generic qualifier must fan out: {}",
            out.report
        );
    }

    #[test]
    fn common_std_method_not_followed() {
        let ws = TempWorkspace::new("stdname");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    let mut v = Vec::new();\n    v.push(b.len());\n    v.len()\n}\n",
        );
        ws.write(
            "crates/util/src/lib.rs",
            "pub struct B;\nimpl B {\n    pub fn push(&mut self, x: usize) {\n        panic!(\"{x}\");\n    }\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "`.push(` must stay std: {}", out.report);
    }

    #[test]
    fn trusted_marker_cuts_edges() {
        let ws = TempWorkspace::new("trusted");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    // reach: trusted(b validated non-empty above)\n    compute(b)\n}\nfn compute(b: &[u8]) -> u8 {\n    b[0]\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
        let md = std::fs::read_to_string(ws.root.join(REACHABILITY_FILE)).unwrap();
        assert!(md.contains("b validated non-empty above"), "{md}");
    }

    #[test]
    fn allow_marker_accepts_and_renders() {
        let ws = TempWorkspace::new("allow");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    // reach: allow(reach-index, first byte checked by caller contract)\n    b[0]\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
        let md = std::fs::read_to_string(ws.root.join(REACHABILITY_FILE)).unwrap();
        assert!(md.contains("first byte checked by caller contract"), "{md}");
        assert!(md.contains("reach-index"), "{md}");
    }

    #[test]
    fn alloc_without_clamp_flagged_with_clamp_passes() {
        let ws = TempWorkspace::new("alloc");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> Vec<u8> {\n    let len = b.len() * 256;\n    Vec::with_capacity(len)\n}\n",
        );
        let out = run(&ws);
        assert!(out.report.contains("reach-alloc"), "{}", out.report);
        ws.write(
            "crates/demo/src/lib.rs",
            "const MAX_HINT: usize = 1024;\npub fn decode(b: &[u8]) -> Vec<u8> {\n    let len = b.len().min(MAX_HINT);\n    Vec::with_capacity(len)\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
    }

    #[test]
    fn arith_on_tainted_length_flagged_checked_passes() {
        let ws = TempWorkspace::new("arith");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(count: usize) -> usize {\n    let table_len = count * 16;\n    table_len\n}\n",
        );
        let out = run(&ws);
        assert!(out.report.contains("reach-arith"), "{}", out.report);
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(count: usize) -> Option<usize> {\n    let table_len = count.checked_mul(16)?;\n    Some(table_len)\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
    }

    #[test]
    fn debug_assert_is_not_a_panic_sink() {
        let ws = TempWorkspace::new("dbgassert");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    debug_assert!(!b.is_empty());\n    b.len()\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
    }

    #[test]
    fn missing_entry_fails() {
        let ws = TempWorkspace::new("missingentry");
        ws.write("crates/demo/src/lib.rs", "pub fn other() {}\n");
        let out = run(&ws);
        assert!(!out.passed());
        assert_eq!(out.missing_entries, 1);
        assert!(out.report.contains("MISSING ENTRY"), "{}", out.report);
    }

    #[test]
    fn stale_certificate_fails() {
        let ws = TempWorkspace::new("stalecert");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    b.len()\n}\n",
        );
        run_reach_with(&ws.root, ENTRIES, true, true).unwrap();
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    // reach: allow(reach-index, never out of bounds in test)\n    b[0] as usize\n}\n",
        );
        let out = run(&ws);
        assert!(out.certificate_stale);
        assert!(!out.passed());
    }

    #[test]
    fn ratchet_pins_and_regresses() {
        let ws = TempWorkspace::new("ratchet");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    b[0]\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "pinned finding passes: {}", out.report);
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    b[0] + b[1]\n}\n",
        );
        let out = run_reach_with(&ws.root, ENTRIES, false, true).unwrap();
        // Still one line of indexing — no index regression — and the
        // certificate was refreshed; the pass stays green.
        assert!(out.passed(), "{}", out.report);
    }

    #[test]
    fn explain_prints_chain() {
        let ws = TempWorkspace::new("explain");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> u8 {\n    helper(b)\n}\nfn helper(b: &[u8]) -> u8 {\n    b[0]\n}\n",
        );
        let text = explain_with(&ws.root, ENTRIES, "crates/demo/src/lib.rs:5").unwrap();
        assert!(text.contains("entry `demo::decode@"), "{text}");
        assert!(text.contains("-> `demo::helper@"), "{text}");
        assert!(text.contains("finding: reach-index"), "{text}");
        let off = explain_with(&ws.root, ENTRIES, "crates/demo/src/lib.rs:1");
        assert!(off.is_ok());
    }

    #[test]
    fn test_code_out_of_scope() {
        let ws = TempWorkspace::new("testcode");
        ws.write(
            "crates/demo/src/lib.rs",
            "pub fn decode(b: &[u8]) -> usize {\n    b.len()\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        super::decode(&[1]).to_string().parse::<usize>().unwrap();\n    }\n}\n",
        );
        let out = run_written(&ws);
        assert!(out.passed(), "{}", out.report);
    }
}
